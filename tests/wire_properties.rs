//! Property-based tests on the wire format: arbitrary messages round-trip
//! exactly; arbitrary bytes never panic the decoder.

use allpairs_overlay::linkstate::{
    LinkEntry, LinkStateMsg, Message, ProbeMsg, ProbeReplyMsg, RecEntry, RecFormat,
    RecommendationMsg,
};
use allpairs_overlay::quorum::NodeId;
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = LinkEntry> {
    (any::<u16>(), any::<bool>(), 0u8..=127).prop_map(|(lat, alive, loss_q)| {
        if alive {
            LinkEntry::live(lat.min(u16::MAX - 1), f32::from(loss_q) / 200.0)
        } else {
            LinkEntry::dead()
        }
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    let probe = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(f, t, v, s, ts)| {
            Message::Probe(ProbeMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                seq: s,
                sent_ms: ts,
            })
        });
    let reply = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(f, t, v, s, ts)| {
            Message::ProbeReply(ProbeReplyMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                seq: s,
                echo_sent_ms: ts,
            })
        });
    let linkstate = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(arb_entry(), 0..300),
    )
        .prop_map(|(f, t, v, r, b, entries)| {
            Message::LinkState(LinkStateMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                round: r,
                basis_ms: b,
                entries,
            })
        });
    let recs = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 0..80),
    )
        .prop_map(|(f, t, v, r, b, with_cost, entries)| {
            let format = if with_cost {
                RecFormat::WithCost
            } else {
                RecFormat::Compact
            };
            Message::Recommendations(RecommendationMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                round: r,
                basis_ms: b,
                format,
                recs: entries
                    .into_iter()
                    .map(|(d, h, c)| RecEntry {
                        dst: NodeId(d),
                        hop: NodeId(h),
                        cost_ms: if format == RecFormat::Compact {
                            u16::MAX
                        } else {
                            c
                        },
                    })
                    .collect(),
            })
        });
    let join = (any::<u16>(), any::<u16>()).prop_map(|(f, t)| Message::Join {
        from: NodeId(f),
        to: NodeId(t),
    });
    let view = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        prop::collection::vec(any::<u16>(), 0..200),
    )
        .prop_map(|(f, t, v, members)| {
            Message::View(allpairs_overlay::linkstate::wire::ViewMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                members: members.into_iter().map(NodeId).collect(),
            })
        });
    prop_oneof![probe, reply, linkstate, recs, join, view]
}

proptest! {
    /// encode → decode is the identity on every representable message.
    #[test]
    fn roundtrip_identity(msg in arb_message()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size());
        let decoded = Message::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder never panics on arbitrary input, and any accepted
    /// message re-encodes to semantically identical bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(msg) = Message::decode(&bytes) {
            // Whatever was accepted must round-trip stably from its own
            // canonical encoding (not necessarily the original bytes:
            // unknown flag bits are dropped).
            let canon = msg.encode();
            prop_assert_eq!(Message::decode(&canon).unwrap(), msg);
        }
    }

    /// Truncating any valid message always fails cleanly.
    #[test]
    fn truncation_always_detected(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let cut = cut.clamp(0, bytes.len() - 1);
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
        }
    }
}
