//! Property-based tests on the wire format: arbitrary messages round-trip
//! exactly; arbitrary bytes never panic the decoder; the seqno +
//! retraction trailer is strictly additive (flagless frames stay
//! bit-identical to the pre-versioning format).

use allpairs_overlay::linkstate::{
    ls_trailer_size, LinkEntry, LinkStateMsg, Message, ProbeMsg, ProbeReplyMsg, RecEntry,
    RecFormat, RecommendationMsg, SparseLinkStateMsg, LINKSTATE_HEADER_SIZE,
    SPARSE_LINKSTATE_HEADER_SIZE,
};
use allpairs_overlay::quorum::NodeId;
use proptest::prelude::*;

fn arb_entry() -> impl Strategy<Value = LinkEntry> {
    (any::<u16>(), any::<bool>(), 0u8..=127).prop_map(|(lat, alive, loss_q)| {
        if alive {
            LinkEntry::live(lat.min(u16::MAX - 1), f32::from(loss_q) / 200.0)
        } else {
            LinkEntry::dead()
        }
    })
}

/// Reduce raw picks to a canonical retraction lane: strictly ascending,
/// every destination `< width`. An empty width forces an empty lane.
fn canonical_retractions(raw: &[u16], width: usize) -> Vec<u16> {
    if width == 0 {
        return Vec::new();
    }
    #[allow(clippy::cast_possible_truncation)]
    let mut lane: Vec<u16> = raw.iter().map(|&r| r % width as u16).collect();
    lane.sort_unstable();
    lane.dedup();
    lane
}

/// Raw material for the versioned trailer: a seqno and unreduced
/// retraction picks (canonicalized against the row width in `prop_map`).
fn arb_trailer_raw() -> impl Strategy<Value = (u16, Vec<u16>)> {
    (any::<u16>(), prop::collection::vec(any::<u16>(), 0..8))
}

fn arb_message() -> impl Strategy<Value = Message> {
    let probe = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(f, t, v, s, ts)| {
            Message::Probe(ProbeMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                seq: s,
                sent_ms: ts,
            })
        });
    let reply = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(f, t, v, s, ts)| {
            Message::ProbeReply(ProbeReplyMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                seq: s,
                echo_sent_ms: ts,
            })
        });
    let linkstate = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec(arb_entry(), 0..300),
        arb_trailer_raw(),
    )
        .prop_map(|(f, t, v, r, b, entries, (seqno, raw))| {
            let retractions = canonical_retractions(&raw, entries.len());
            Message::LinkState(LinkStateMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                round: r,
                basis_ms: b,
                entries,
                seqno,
                retractions,
            })
        });
    let sparse = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        1u16..300,
        prop::collection::vec((any::<u16>(), arb_entry()), 0..40),
        arb_trailer_raw(),
    )
        .prop_map(|(f, t, v, r, b, width, raw_entries, (seqno, raw))| {
            // Sparse rows demand strictly ascending in-range dsts.
            let mut entries: Vec<(u16, LinkEntry)> = raw_entries
                .into_iter()
                .map(|(d, e)| (d % width, e))
                .collect();
            entries.sort_unstable_by_key(|&(d, _)| d);
            entries.dedup_by_key(|&mut (d, _)| d);
            let retractions = canonical_retractions(&raw, usize::from(width));
            Message::LinkStateSparse(SparseLinkStateMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                round: r,
                basis_ms: b,
                width,
                entries,
                seqno,
                retractions,
            })
        });
    let recs = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<bool>(),
        prop::collection::vec((any::<u16>(), any::<u16>(), any::<u16>()), 0..80),
    )
        .prop_map(|(f, t, v, r, b, with_cost, entries)| {
            let format = if with_cost {
                RecFormat::WithCost
            } else {
                RecFormat::Compact
            };
            Message::Recommendations(RecommendationMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                round: r,
                basis_ms: b,
                format,
                recs: entries
                    .into_iter()
                    .map(|(d, h, c)| RecEntry {
                        dst: NodeId(d),
                        hop: NodeId(h),
                        cost_ms: if format == RecFormat::Compact {
                            u16::MAX
                        } else {
                            c
                        },
                    })
                    .collect(),
            })
        });
    let join = (any::<u16>(), any::<u16>()).prop_map(|(f, t)| Message::Join {
        from: NodeId(f),
        to: NodeId(t),
    });
    let view = (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        prop::collection::vec(any::<u16>(), 0..200),
    )
        .prop_map(|(f, t, v, members)| {
            Message::View(allpairs_overlay::linkstate::wire::ViewMsg {
                from: NodeId(f),
                to: NodeId(t),
                view: v,
                members: members.into_iter().map(NodeId).collect(),
            })
        });
    prop_oneof![probe, reply, linkstate, sparse, recs, join, view]
}

/// Strip a versioned link-state frame down to its flagless twin: same
/// message, seqno 0, nothing retracted.
fn flagless_twin(msg: &Message) -> Option<(Message, usize)> {
    match msg {
        Message::LinkState(m) => {
            let mut twin = m.clone();
            twin.seqno = 0;
            twin.retractions.clear();
            Some((Message::LinkState(twin), LINKSTATE_HEADER_SIZE))
        }
        Message::LinkStateSparse(m) => {
            let mut twin = m.clone();
            twin.seqno = 0;
            twin.retractions.clear();
            Some((Message::LinkStateSparse(twin), SPARSE_LINKSTATE_HEADER_SIZE))
        }
        _ => None,
    }
}

proptest! {
    /// encode → decode is the identity on every representable message.
    #[test]
    fn roundtrip_identity(msg in arb_message()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size());
        let decoded = Message::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder never panics on arbitrary input, and any accepted
    /// message re-encodes to semantically identical bytes.
    #[test]
    fn decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        if let Ok(msg) = Message::decode(&bytes) {
            // Whatever was accepted must round-trip stably from its own
            // canonical encoding (not necessarily the original bytes:
            // unknown flag bits are dropped).
            let canon = msg.encode();
            prop_assert_eq!(Message::decode(&canon).unwrap(), msg);
        }
    }

    /// Truncating any valid message always fails cleanly.
    #[test]
    fn truncation_always_detected(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let bytes = msg.encode();
        if bytes.len() > 1 {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            let cut = cut.clamp(0, bytes.len() - 1);
            prop_assert!(Message::decode(&bytes[..cut]).is_err());
        }
    }

    /// The route-discipline trailer is strictly additive: zeroing the
    /// seqno and retraction lane of any link-state frame changes only
    /// the flags word and drops exactly the trailer bytes. Seqno-free
    /// frames therefore stay bit-identical to the pre-versioning
    /// format — old captures parse unchanged and pay nothing.
    #[test]
    fn flagless_frames_bit_identical(msg in arb_message()) {
        if let Some((twin, header)) = flagless_twin(&msg) {
            let versioned = msg.encode();
            let flagless = twin.encode();
            let (seqno, retractions) = match &msg {
                Message::LinkState(m) => (m.seqno, m.retractions.as_slice()),
                Message::LinkStateSparse(m) => (m.seqno, m.retractions.as_slice()),
                _ => unreachable!(),
            };
            let trailer = ls_trailer_size(seqno, retractions);
            prop_assert_eq!(versioned.len(), flagless.len() + trailer);
            // Bytes agree everywhere but the 2-byte flags word that
            // closes the header.
            let fo = header - 2;
            prop_assert_eq!(&versioned[..fo], &flagless[..fo]);
            prop_assert_eq!(&flagless[fo..header], &[0u8, 0u8][..]);
            prop_assert_eq!(&versioned[header..flagless.len()], &flagless[header..]);
            if trailer == 0 {
                prop_assert_eq!(&versioned[..], &flagless[..]);
            }
        }
    }
}
