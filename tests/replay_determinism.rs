//! The idle-aware (coalesced) scheduler must be a pure *scheduling*
//! change: with a deterministic network (no jitter, no loss) the overlay
//! must end up with bit-identical routing state whether its periodic
//! work runs off 0.5 s/0.25 s fixed polling ticks or off precise
//! `next_wake` coalesced timers — while processing strictly fewer
//! simulator events, which is the entire point of the redesign.

use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig, Scheduling};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::routing::RoutingAlgorithm;
use allpairs_overlay::topology::{FailureParams, LatencyMatrix};

const N: usize = 32;
const HORIZON_S: f64 = 600.0;

/// A varied but fully deterministic symmetric latency matrix: distinct
/// RTTs so best hops are non-trivial, zero loss so no RNG is consumed
/// by the network model (RNG draws are the one way event *order* could
/// leak into protocol state).
fn varied_matrix() -> LatencyMatrix {
    let mut m = LatencyMatrix::uniform(N, 40.0);
    for i in 0..N {
        for j in (i + 1)..N {
            let rtt = 20.0 + ((i * 7 + j * 13) % 80) as f64;
            m.set_rtt(i, j, rtt);
        }
    }
    m
}

fn run(scheduling: Scheduling) -> (Simulator, u64) {
    let cfg = allpairs_overlay::netsim::SimulatorConfig {
        seed: 42,
        jitter_frac: 0.0,
        ..overlay_sim_config()
    };
    let mut sim = Simulator::new(varied_matrix(), FailureParams::none(N, 1e6), cfg);
    let members: Vec<NodeId> = (0..N as u16).map(NodeId).collect();
    populate(&mut sim, N, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
            .with_scheduling(scheduling)
    });
    sim.run_until(HORIZON_S);
    let events = sim.events_processed();
    (sim, events)
}

#[test]
fn coalesced_replays_fixed_tick_bit_identically() {
    let (fixed, fixed_events) = run(Scheduling::FixedTick);
    let (coalesced, coalesced_events) = run(Scheduling::Coalesced);

    for i in 0..N {
        let f = overlay_at(&fixed, i);
        let c = overlay_at(&coalesced, i);

        // Identical link-state tables, down to the f64 bits of the row
        // timestamps and every wire-quantized entry.
        let fr = f.quorum_router().expect("quorum node").export_rows();
        let cr = c.quorum_router().expect("quorum node").export_rows();
        assert_eq!(fr.len(), cr.len(), "node {i}: row count");
        for ((fo, ft, fe), (co, ct, ce)) in fr.iter().zip(cr.iter()) {
            assert_eq!(fo, co, "node {i}: row origin");
            assert_eq!(
                ft.to_bits(),
                ct.to_bits(),
                "node {i}: row {fo} timestamp ({ft} vs {ct})"
            );
            assert_eq!(fe, ce, "node {i}: row {fo} entries");
        }

        // Identical routing decisions for every destination.
        for dst in 0..N {
            if dst == i {
                continue;
            }
            let d = NodeId(dst as u16);
            assert_eq!(
                f.best_hop(d, HORIZON_S),
                c.best_hop(d, HORIZON_S),
                "node {i} → {dst}: best hop"
            );
            assert_eq!(
                f.route_age(d, HORIZON_S).map(f64::to_bits),
                c.route_age(d, HORIZON_S).map(f64::to_bits),
                "node {i} → {dst}: route age"
            );
        }

        // Identical link measurements.
        for dst in 0..N {
            let d = NodeId(dst as u16);
            assert_eq!(
                f.measured_latency_ms(d).map(f64::to_bits),
                c.measured_latency_ms(d).map(f64::to_bits),
                "node {i} → {dst}: measured latency"
            );
        }
    }

    // The idle-aware scheduler must do the same work with strictly
    // fewer simulator events. Packet deliveries dominate at n=32 (full
    // mesh probing), so the saving shows up as a solid margin rather
    // than an order of magnitude — the 0.5 s/0.25 s polling ticks are
    // what disappears.
    assert!(
        coalesced_events * 10 < fixed_events * 9,
        "coalesced {coalesced_events} vs fixed {fixed_events}: \
         expected >10% fewer events"
    );
}
