//! Section 4.1's failure scenarios, with their recovery-time bounds.
//!
//! The paper bounds recovery (time until Src again holds a usable best-hop
//! recommendation for Dst) after failure *detection*:
//!
//! * scenario 1 — direct + best-hop failure: ≤ 2r
//! * scenario 2 — proximal rendezvous ×2 + direct failure: ≤ 2r
//! * scenario 3 — proximal + remote rendezvous + direct failure: ≤ 3r
//!
//! Detection itself takes up to one probing interval `p` (rapid re-probe),
//! and remote rendezvous failures take up to an extra routing interval to
//! notice. We assert end-to-end bounds of `p + k·r` with one interval of
//! slack for message-loss jitter.

use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::{Grid, NodeId};
use allpairs_overlay::topology::{
    FailureParams, FailureSchedule, LatencyMatrix, LinkOutage, NodeOutage,
};

const N: usize = 25;
const KILL: f64 = 400.0; // failures begin (probing is settled by then)
const P: f64 = 30.0; // probing interval
const R: f64 = 15.0; // quorum routing interval

/// Run a 25-node uniform overlay with the given injected outages; return
/// the simulator plus the ground-truth matrix.
fn run_with_outages(
    link_outages: Vec<LinkOutage>,
    node_outages: Vec<NodeOutage>,
    until_s: f64,
) -> Simulator {
    let mut params = FailureParams::with_n(N);
    params.median_concurrent = 1e-9;
    params.duration_s = until_s + 100.0;
    params.link_outages = link_outages;
    params.node_outages = node_outages;
    let schedule = FailureSchedule::generate(&params);
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(N, 60.0),
        schedule,
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..N as u16).map(NodeId).collect();
    populate(&mut sim, N, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });
    sim
}

fn outage(a: usize, b: usize, until_s: f64) -> LinkOutage {
    LinkOutage {
        a,
        b,
        start_s: KILL,
        end_s: until_s,
    }
}

/// Earliest time ≥ `from` at which `src` holds a *usable, live* route to
/// `dst`: a fresh recommendation whose hop avoids every dead link.
fn recovery_time(
    sim: &mut Simulator,
    src: usize,
    dst: usize,
    dead: &[(usize, usize)],
    from: f64,
    until: f64,
) -> Option<f64> {
    let is_dead = |a: usize, b: usize| dead.contains(&(a, b)) || dead.contains(&(b, a));
    let mut t = from;
    while t <= until {
        sim.run_until(t);
        let node = overlay_at(sim, src);
        if let Some(hop) = node.best_hop(NodeId(dst as u16), t) {
            let h = hop.index();
            let usable = if h == dst {
                !is_dead(src, dst)
            } else {
                !is_dead(src, h) && !is_dead(h, dst)
            };
            // Require the route to be *fresh* information (received after
            // the failures began), not a stale pre-failure recommendation.
            let fresh = node
                .route_age(NodeId(dst as u16), t)
                .is_some_and(|age| t - age >= KILL);
            if usable && fresh {
                return Some(t);
            }
        }
        t += 1.0;
    }
    None
}

/// Scenario 1 (figure 4a): the direct link Src–Dst and the link to the
/// current best hop fail. Both rendezvous stay healthy ⇒ recovery within
/// one probing interval (detection) + 2 routing intervals.
#[test]
fn scenario_1_direct_and_best_hop_failure() {
    let (src, dst) = (0usize, 24usize);
    // With uniform latency, make node 1 the attractive hop by keeping it;
    // kill direct and one arbitrary relay — the bound is about the
    // recommendation refresh, not which relay dies.
    let dead = vec![(src, dst), (src, 1)];
    let outages = dead.iter().map(|&(a, b)| outage(a, b, 2000.0)).collect();
    let mut sim = run_with_outages(outages, vec![], 2000.0);
    let recovered =
        recovery_time(&mut sim, src, dst, &dead, KILL, KILL + 200.0).expect("must recover");
    let bound = P + 2.0 * R + R; // detection + 2r, plus one interval slack
    assert!(
        recovered - KILL <= bound,
        "scenario 1 took {:.0}s > {:.0}s",
        recovered - KILL,
        bound
    );
}

/// Scenario 2 (figure 4b): proximal failures to *both* default rendezvous
/// plus the direct link. Src fails over to one of Dst's other rendezvous
/// ⇒ still ≤ detection + 2r.
#[test]
fn scenario_2_proximal_rendezvous_failures() {
    let (src, dst) = (0usize, 24usize);
    let grid = Grid::new(N);
    let pair = grid.default_rendezvous_pair(src, dst);
    assert_eq!(pair.len(), 2, "uniform grid has two default rendezvous");
    let mut dead: Vec<(usize, usize)> = pair.iter().map(|&s| (src, s)).collect();
    dead.push((src, dst));
    let outages = dead.iter().map(|&(a, b)| outage(a, b, 2000.0)).collect();
    let mut sim = run_with_outages(outages, vec![], 2000.0);
    let recovered =
        recovery_time(&mut sim, src, dst, &dead, KILL, KILL + 300.0).expect("must recover");
    let bound = P + 2.0 * R + 2.0 * R; // detection + 2r + slack
    assert!(
        recovered - KILL <= bound,
        "scenario 2 took {:.0}s > {:.0}s",
        recovered - KILL,
        bound
    );
}

/// Scenario 3 (figure 4c): one proximal and one *remote* rendezvous
/// failure plus the direct link. The remote failure needs an extra routing
/// interval to detect ⇒ ≤ detection + 3r.
#[test]
fn scenario_3_remote_rendezvous_failure() {
    let (src, dst) = (0usize, 24usize);
    let grid = Grid::new(N);
    let pair = grid.default_rendezvous_pair(src, dst); // {4, 20}
    let (r1, r2) = (pair[0], pair[1]);
    // Proximal: src loses its link to r1. Remote: r2 loses its link to
    // dst (so r2 stops recommending dst, but src still reaches r2).
    let dead = vec![(src, r1), (r2, dst), (src, dst)];
    let outages = dead.iter().map(|&(a, b)| outage(a, b, 2000.0)).collect();
    let mut sim = run_with_outages(outages, vec![], 2000.0);
    let recovered =
        recovery_time(&mut sim, src, dst, &dead, KILL, KILL + 300.0).expect("must recover");
    // Remote detection adds up to remote_failure_intervals (2.5r) on top
    // of scenario 2's bound.
    let bound = P + 3.0 * R + 2.5 * R + R;
    assert!(
        recovered - KILL <= bound,
        "scenario 3 took {:.0}s > {:.0}s",
        recovered - KILL,
        bound
    );
}

/// A dead destination must not cause unbounded failover churn, and nodes
/// must stop claiming routes to it once information expires.
#[test]
fn dead_destination_converges_to_no_route() {
    let (src, dst) = (0usize, 24usize);
    let node_outages = vec![NodeOutage {
        node: dst,
        start_s: KILL,
        end_s: 4000.0,
    }];
    let mut sim = run_with_outages(vec![], node_outages, 4000.0);
    sim.run_until(KILL + 400.0);
    let node = overlay_at(&sim, src);
    // All information about dst has expired: no route is claimed.
    assert_eq!(
        node.best_hop(NodeId(dst as u16), sim.now()),
        None,
        "route to a dead node must eventually disappear"
    );
    // Failover attempts were bounded (dead-destination suppression).
    // The exact count depends on how probe phases align with the
    // staleness window — each routing tick before the last row expires
    // may select one more candidate — so the guard allows a little more
    // than one pass over the 2(√n−1) grid candidates. Unbounded churn
    // would keep selecting forever (the count is flat from here on).
    let failovers = node
        .quorum_router()
        .map_or(0, |r| r.metrics().failovers_selected);
    assert!(
        failovers <= 12,
        "unbounded failover churn towards a dead node: {failovers}"
    );
}

/// After the failed links heal, the overlay reverts to default rendezvous
/// and direct routes.
#[test]
fn full_recovery_after_healing() {
    let (src, dst) = (0usize, 24usize);
    let grid = Grid::new(N);
    let pair = grid.default_rendezvous_pair(src, dst);
    let heal = KILL + 300.0;
    let mut dead: Vec<(usize, usize)> = pair.iter().map(|&s| (src, s)).collect();
    dead.push((src, dst));
    let outages = dead
        .iter()
        .map(|&(a, b)| LinkOutage {
            a,
            b,
            start_s: KILL,
            end_s: heal,
        })
        .collect();
    let mut sim = run_with_outages(outages, vec![], heal + 400.0);
    sim.run_until(heal + 300.0);
    let node = overlay_at(&sim, src);
    // Direct link is best again in a uniform world.
    assert_eq!(
        node.best_hop(NodeId(dst as u16), sim.now()),
        Some(NodeId(dst as u16)),
        "should revert to the direct route"
    );
    assert_eq!(
        node.quorum_router().and_then(|r| r.active_failover(dst)),
        None,
        "failover rendezvous must be dropped after reversion"
    );
    assert_eq!(node.double_rendezvous_failures(sim.now()), 0);
}
