//! Bandwidth-scaling integration tests: the paper's core quantitative
//! claims, measured end-to-end through the simulator.

use allpairs_overlay::analysis::theory;
use allpairs_overlay::netsim::{Simulator, SimulatorConfig, TrafficClass};
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, PlanetLabParams, Topology};

fn routing_bps(n: usize, algorithm: Algorithm, seed: u64) -> f64 {
    let topo = Topology::generate(&PlanetLabParams {
        n,
        seed,
        ..Default::default()
    });
    let mut sim = Simulator::new(
        topo.latency,
        FailureParams::none(n, 400.0),
        SimulatorConfig {
            seed,
            ..overlay_sim_config()
        },
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), algorithm).with_static_members(members.clone())
    });
    sim.run_until(300.0);
    sim.stats()
        .fleet_mean_bps(&[TrafficClass::Routing], 60.0, 300.0)
}

/// Quorum routing grows ~n^1.5: quadrupling n should scale traffic by ~8,
/// not ~16.
#[test]
fn quorum_scaling_exponent() {
    let b36 = routing_bps(36, Algorithm::Quorum, 1);
    let b144 = routing_bps(144, Algorithm::Quorum, 1);
    let ratio = b144 / b36;
    // n^1.5 predicts 8; headers push it slightly below. n² would be 16.
    assert!(
        (5.0..11.0).contains(&ratio),
        "quorum scaling {b36:.0} → {b144:.0} bps, ratio {ratio:.1}"
    );
}

/// Full-mesh routing grows ~n²: quadrupling n scales traffic ~14–16×.
#[test]
fn fullmesh_scaling_exponent() {
    let b36 = routing_bps(36, Algorithm::FullMesh, 2);
    let b144 = routing_bps(144, Algorithm::FullMesh, 2);
    let ratio = b144 / b36;
    assert!(
        (11.0..18.0).contains(&ratio),
        "full-mesh scaling {b36:.0} → {b144:.0} bps, ratio {ratio:.1}"
    );
}

/// The headline: at n = 144 (≈ the paper's 140), quorum routing costs
/// less than half of full-mesh, and both track the closed-form theory.
#[test]
fn headline_claim_at_140_nodes() {
    let n = 144;
    let full = routing_bps(n, Algorithm::FullMesh, 3);
    let quorum = routing_bps(n, Algorithm::Quorum, 3);
    assert!(
        quorum < 0.55 * full,
        "quorum {quorum:.0} bps vs full-mesh {full:.0} bps — less than the paper's ~2.3× saving"
    );
    let full_theory = theory::ron_routing_bps(n as f64);
    let quorum_theory = theory::quorum_routing_bps(n as f64);
    assert!(
        (full - full_theory).abs() / full_theory < 0.15,
        "full-mesh {full:.0} vs theory {full_theory:.0}"
    );
    assert!(
        (quorum - quorum_theory).abs() / quorum_theory < 0.15,
        "quorum {quorum:.0} vs theory {quorum_theory:.0}"
    );
}

/// Under the calibrated failure schedule, no node's worst 1-minute window
/// may wildly exceed its mean — the paper saw at most ~30 % inflation plus
/// bounded absolute ceilings (17 Kbps worst window at n = 140).
#[test]
fn failure_load_stays_balanced() {
    let n = 49;
    let topo = Topology::generate(&PlanetLabParams {
        n,
        seed: 77,
        ..Default::default()
    });
    let schedule = allpairs_overlay::topology::FailureSchedule::generate(
        &FailureParams::with_n(n).with_seed(0xBAD),
    );
    let mut sim = Simulator::new(topo.latency, schedule, overlay_sim_config());
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });
    sim.run_until(900.0);
    let stats = sim.stats();
    let routing = [TrafficClass::Routing];
    let fleet_mean = stats.fleet_mean_bps(&routing, 120.0, 900.0);
    let worst_window = (0..n)
        .map(|i| stats.max_bucket_bps(i, &routing, 120.0, 900.0))
        .fold(0.0f64, f64::max);
    assert!(fleet_mean > 0.0);
    // The paper: max-over-mean stayed within ~2× even under severe
    // failures ("no node used more than 17 Kbps" vs 13 Kbps average
    // — and the worst *increase* was under 30 % for the affected nodes).
    assert!(
        worst_window < 3.0 * fleet_mean,
        "worst 1-min window {worst_window:.0} bps vs fleet mean {fleet_mean:.0} bps"
    );
}

/// Probing traffic is algorithm-independent and linear in n.
#[test]
fn probing_is_linear_and_algorithm_independent() {
    let topo = |n: usize| {
        Topology::generate(&PlanetLabParams {
            n,
            seed: 4,
            ..Default::default()
        })
    };
    let probe_bps = |n: usize, algo: Algorithm| {
        let mut sim = Simulator::new(
            topo(n).latency,
            FailureParams::none(n, 400.0),
            overlay_sim_config(),
        );
        let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        populate(&mut sim, n, 5.0, move |i| {
            NodeConfig::new(NodeId(i as u16), NodeId(0), algo).with_static_members(members.clone())
        });
        sim.run_until(300.0);
        sim.stats()
            .fleet_mean_bps(&[TrafficClass::Probing], 60.0, 300.0)
    };
    let q = probe_bps(49, Algorithm::Quorum);
    let f = probe_bps(49, Algorithm::FullMesh);
    assert!(
        (q - f).abs() / f < 0.05,
        "probing differs across algorithms: {q:.0} vs {f:.0}"
    );
    let small = probe_bps(25, Algorithm::Quorum);
    let ratio = q / small;
    assert!(
        (1.6..2.4).contains(&ratio),
        "probing not ~linear: 25→49 nodes gave ×{ratio:.2}"
    );
}
