//! Membership dynamics: joins, leaves and view reconfiguration while the
//! overlay keeps routing — exercised against **both** membership planes
//! ([`MembershipMode::Centralized`] and [`MembershipMode::Swim`]).

use allpairs_overlay::membership::SwimConfig;
use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, MembershipMode, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, FailureSchedule, LatencyMatrix, NodeOutage};

/// A node config in the requested membership mode (node 0 acts as
/// coordinator / introducer).
fn mode_config(i: usize, mode: MembershipMode) -> NodeConfig {
    let cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum);
    match mode {
        MembershipMode::Centralized => cfg,
        MembershipMode::Swim => cfg.with_swim(),
    }
}

/// Nodes joining at staggered times — through the coordinator or by
/// gossiping via the introducer — end with one consistent view and
/// working routes.
fn staggered_joins_converge_in(mode: MembershipMode) {
    let n = 12;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 40.0),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    // No static membership: everyone joins via node 0.
    populate(&mut sim, n, 60.0, move |i| mode_config(i, mode));
    sim.run_until(300.0);
    let v0 = overlay_at(&sim, 0)
        .view()
        .expect("node 0 has a view")
        .clone();
    assert_eq!(v0.len(), n, "node 0 misses members in {mode:?}");
    for i in 0..n {
        let node = overlay_at(&sim, i);
        assert!(node.is_member(), "node {i} not a member in {mode:?}");
        assert_eq!(node.view().unwrap(), &v0, "node {i} diverges in {mode:?}");
    }
    // Routing works across the final view.
    let node3 = overlay_at(&sim, 3);
    for dst in 0..n as u16 {
        if dst == 3 {
            continue;
        }
        assert!(
            node3.best_hop(NodeId(dst), sim.now()).is_some(),
            "no route 3→{dst} after convergence in {mode:?}"
        );
    }
}

#[test]
fn staggered_joins_converge() {
    staggered_joins_converge_in(MembershipMode::Centralized);
}

#[test]
fn staggered_joins_converge_swim() {
    staggered_joins_converge_in(MembershipMode::Swim);
}

/// SWIM failure detection end-to-end under the seeded simulator: a
/// crashed node is confirmed faulty and removed from **every** live
/// node's installed view within the protocol's detection budget, and
/// the surviving views agree exactly (same version, same member list).
#[test]
fn swim_removes_crashed_node_within_budget() {
    let n = 10;
    let dead = 3usize;
    let kill_at = 60.0;
    let swim = SwimConfig::default();
    let budget = swim.detection_budget_s(n);
    let mut params = FailureParams::with_n(n);
    params.median_concurrent = 1e-12; // no background link failures
    params.duration_s = 1e9;
    params.node_outages = vec![NodeOutage {
        node: dead,
        start_s: kill_at,
        end_s: 1e9,
    }];
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 40.0),
        FailureSchedule::generate(&params),
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    let swim_cfg = swim.clone();
    populate(&mut sim, n, 2.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
            .with_swim_config(swim_cfg.clone())
    });
    // Sanity: before the crash everyone holds the full bootstrap view.
    sim.run_until(kill_at);
    for i in 0..n {
        assert_eq!(overlay_at(&sim, i).view().unwrap().len(), n);
    }
    sim.run_until(kill_at + budget);
    let reference = overlay_at(&sim, 0).view().unwrap().clone();
    assert_eq!(reference.len(), n - 1, "dead node still in view");
    assert!(!reference.contains(NodeId(dead as u16)));
    for i in 0..n {
        if i == dead {
            continue;
        }
        let view = overlay_at(&sim, i).view().unwrap();
        assert_eq!(
            view, &reference,
            "survivor {i} disagrees: {view:?} vs {reference:?}"
        );
    }
}

/// The coordinator-free payoff: with SWIM, killing node 0 — which the
/// centralized design depends on for every membership change — leaves a
/// cluster that still detects the loss, agrees on the shrunken view and
/// keeps routing.
#[test]
fn swim_survives_introducer_loss() {
    let n = 9;
    let kill_at = 50.0;
    let swim = SwimConfig::default();
    let budget = swim.detection_budget_s(n);
    let mut params = FailureParams::with_n(n);
    params.median_concurrent = 1e-12;
    params.duration_s = 1e9;
    params.node_outages = vec![NodeOutage {
        node: 0,
        start_s: kill_at,
        end_s: 1e9,
    }];
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 30.0),
        FailureSchedule::generate(&params),
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 2.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
            .with_swim()
    });
    sim.run_until(kill_at + budget + 60.0);
    let reference = overlay_at(&sim, 1).view().unwrap().clone();
    assert_eq!(reference.len(), n - 1);
    assert!(!reference.contains(NodeId(0)));
    for i in 1..n {
        let node = overlay_at(&sim, i);
        assert_eq!(node.view().unwrap(), &reference, "survivor {i} diverges");
        assert!(node.is_member());
    }
    // Routing still functions across the survivors' agreed view.
    let node1 = overlay_at(&sim, 1);
    for dst in 2..n as u16 {
        assert!(
            node1.best_hop(NodeId(dst), sim.now()).is_some(),
            "no route 1→{dst} after introducer loss"
        );
    }
}

/// A late joiner triggers a view bump; established nodes keep their
/// latency estimates across the reconfiguration (estimator carry-over).
#[test]
fn late_join_preserves_measurements() {
    let n = 10;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 80.0),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    // Nodes 0..9 join immediately; node 9 joins two minutes in.
    for i in 0..n {
        let cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum);
        let start = if i == n - 1 { 120.0 } else { 1.0 };
        sim.add_node(
            Box::new(allpairs_overlay::overlay::simnode::SimNode::new(
                allpairs_overlay::overlay::node::OverlayNode::new(cfg),
            )),
            start,
        );
    }
    sim.run_until(110.0);
    // Before the join: node 1 has measured node 2.
    let before = overlay_at(&sim, 1)
        .measured_latency_ms(NodeId(2))
        .expect("measured before join");
    sim.run_until(140.0);
    // Just after the view change: the estimate survives (carry-over), it
    // is not reset to None.
    let node1 = overlay_at(&sim, 1);
    assert_eq!(
        node1.view().unwrap().len(),
        n,
        "view should now include the joiner"
    );
    let after = node1
        .measured_latency_ms(NodeId(2))
        .expect("estimator state must survive the view change");
    assert!((after - before).abs() < 10.0, "{before} vs {after}");
    // And the newcomer becomes routable soon after.
    sim.run_until(260.0);
    assert!(
        overlay_at(&sim, 1)
            .best_hop(NodeId((n - 1) as u16), sim.now())
            .is_some(),
        "no route to the late joiner"
    );
}

/// An explicit leave shrinks the view everywhere.
#[test]
fn leave_shrinks_view() {
    use allpairs_overlay::linkstate::Message;
    let n = 6;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 30.0),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
    });
    sim.run_until(120.0);
    assert_eq!(overlay_at(&sim, 0).view().unwrap().len(), n);

    // Node 5 announces a leave by sending the coordinator a Leave message
    // through the overlay's own wire format. We inject it as a behavior
    // would: encode and deliver via a helper node. The public API drives
    // leaves through the coordinator, so emulate the datagram directly.
    let leave = Message::Leave {
        from: NodeId(5),
        to: NodeId(0),
    };
    // Use the simulator to deliver: easiest is a one-off behavior; but the
    // membership layer is also directly testable, so assert through the
    // coordinator-side state after injecting via on_packet.
    // (Direct state inspection: the sim owns the nodes, so we go through a
    // fresh node instance to validate the protocol logic.)
    let mut coord = allpairs_overlay::overlay::node::OverlayNode::new(NodeConfig::new(
        NodeId(0),
        NodeId(0),
        Algorithm::Quorum,
    ));
    let mut out = allpairs_overlay::overlay::node::Outbox::default();
    coord.on_start(0.0, &mut out);
    // Two joins…
    for id in [NodeId(5), NodeId(9)] {
        let join = Message::Join {
            from: id,
            to: NodeId(0),
        };
        let mut out = allpairs_overlay::overlay::node::Outbox::default();
        coord.on_packet(1.0, &join.encode(), &mut out);
    }
    assert_eq!(coord.view().unwrap().len(), 3);
    // …then node 5 leaves.
    let mut out2 = allpairs_overlay::overlay::node::Outbox::default();
    coord.on_packet(2.0, &leave.encode(), &mut out2);
    let v = coord.view().unwrap();
    assert_eq!(v.len(), 2);
    assert!(!v.contains(NodeId(5)));
    // The view broadcast went out to the remaining member.
    assert!(
        out2.sends.iter().any(|(to, _, _)| *to == NodeId(9)),
        "view change must be broadcast"
    );
}
