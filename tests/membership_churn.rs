//! Membership dynamics: joins, leaves and view reconfiguration while the
//! overlay keeps routing.

use allpairs_overlay::netsim::{Simulator, SimulatorConfig};
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, LatencyMatrix};

/// Nodes joining through the coordinator at staggered times end with one
/// consistent view and working routes.
#[test]
fn staggered_joins_converge() {
    let n = 12;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 40.0),
        FailureParams::none(n, 1e9),
        SimulatorConfig::default(),
    );
    // No static membership: everyone joins via node 0.
    populate(&mut sim, n, 60.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
    });
    sim.run_until(300.0);
    let v0 = overlay_at(&sim, 0).view().expect("coordinator has a view").clone();
    assert_eq!(v0.len(), n, "coordinator misses members");
    for i in 0..n {
        let node = overlay_at(&sim, i);
        assert!(node.is_member(), "node {i} not a member");
        assert_eq!(node.view().unwrap(), &v0, "node {i} has a divergent view");
    }
    // Routing works across the final view.
    let node3 = overlay_at(&sim, 3);
    for dst in 0..n as u16 {
        if dst == 3 {
            continue;
        }
        assert!(
            node3.best_hop(NodeId(dst), sim.now()).is_some(),
            "no route 3→{dst} after convergence"
        );
    }
}

/// A late joiner triggers a view bump; established nodes keep their
/// latency estimates across the reconfiguration (estimator carry-over).
#[test]
fn late_join_preserves_measurements() {
    let n = 10;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 80.0),
        FailureParams::none(n, 1e9),
        SimulatorConfig::default(),
    );
    // Nodes 0..9 join immediately; node 9 joins two minutes in.
    for i in 0..n {
        let cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum);
        let start = if i == n - 1 { 120.0 } else { 1.0 };
        sim.add_node(
            Box::new(allpairs_overlay::overlay::simnode::SimNode::new(
                allpairs_overlay::overlay::node::OverlayNode::new(cfg),
            )),
            start,
        );
    }
    sim.run_until(110.0);
    // Before the join: node 1 has measured node 2.
    let before = overlay_at(&sim, 1)
        .measured_latency_ms(NodeId(2))
        .expect("measured before join");
    sim.run_until(140.0);
    // Just after the view change: the estimate survives (carry-over), it
    // is not reset to None.
    let node1 = overlay_at(&sim, 1);
    assert_eq!(node1.view().unwrap().len(), n, "view should now include the joiner");
    let after = node1
        .measured_latency_ms(NodeId(2))
        .expect("estimator state must survive the view change");
    assert!((after - before).abs() < 10.0, "{before} vs {after}");
    // And the newcomer becomes routable soon after.
    sim.run_until(260.0);
    assert!(
        overlay_at(&sim, 1)
            .best_hop(NodeId((n - 1) as u16), sim.now())
            .is_some(),
        "no route to the late joiner"
    );
}

/// An explicit leave shrinks the view everywhere.
#[test]
fn leave_shrinks_view() {
    use allpairs_overlay::linkstate::Message;
    let n = 6;
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 30.0),
        FailureParams::none(n, 1e9),
        SimulatorConfig::default(),
    );
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
    });
    sim.run_until(120.0);
    assert_eq!(overlay_at(&sim, 0).view().unwrap().len(), n);

    // Node 5 announces a leave by sending the coordinator a Leave message
    // through the overlay's own wire format. We inject it as a behavior
    // would: encode and deliver via a helper node. The public API drives
    // leaves through the coordinator, so emulate the datagram directly.
    let leave = Message::Leave {
        from: NodeId(5),
        to: NodeId(0),
    };
    // Use the simulator to deliver: easiest is a one-off behavior; but the
    // membership layer is also directly testable, so assert through the
    // coordinator-side state after injecting via on_packet.
    // (Direct state inspection: the sim owns the nodes, so we go through a
    // fresh node instance to validate the protocol logic.)
    let mut coord = allpairs_overlay::overlay::node::OverlayNode::new(NodeConfig::new(
        NodeId(0),
        NodeId(0),
        Algorithm::Quorum,
    ));
    let mut out = allpairs_overlay::overlay::node::Outbox::default();
    coord.on_start(0.0, &mut out);
    // Two joins…
    for id in [NodeId(5), NodeId(9)] {
        let join = Message::Join {
            from: id,
            to: NodeId(0),
        };
        let mut out = allpairs_overlay::overlay::node::Outbox::default();
        coord.on_packet(1.0, &join.encode(), &mut out);
    }
    assert_eq!(coord.view().unwrap().len(), 3);
    // …then node 5 leaves.
    let mut out2 = allpairs_overlay::overlay::node::Outbox::default();
    coord.on_packet(2.0, &leave.encode(), &mut out2);
    let v = coord.view().unwrap();
    assert_eq!(v.len(), 2);
    assert!(!v.contains(NodeId(5)));
    // The view broadcast went out to the remaining member.
    assert!(
        out2.sends.iter().any(|(to, _, _)| *to == NodeId(9)),
        "view change must be broadcast"
    );
}
