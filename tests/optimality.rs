//! End-to-end optimality: Theorem 1 made operational.
//!
//! A healthy simulated overlay running the quorum algorithm must converge,
//! within two routing intervals of probing settling, to the *provably
//! optimal* one-hop route for every ordered pair — and agree with the
//! full-mesh baseline, which trivially computes the same optimum from
//! complete information.

use allpairs_overlay::netsim::{Simulator, SimulatorConfig};
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, LatencyMatrix, PlanetLabParams, Topology};

fn run_overlay(matrix: LatencyMatrix, algorithm: Algorithm, until_s: f64, seed: u64) -> Simulator {
    let n = matrix.len();
    let mut sim = Simulator::new(
        matrix,
        FailureParams::none(n, until_s + 100.0),
        SimulatorConfig {
            seed,
            ..overlay_sim_config()
        },
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), algorithm).with_static_members(members.clone())
    });
    sim.run_until(until_s);
    sim
}

/// The cost of routing `src → dst` through the overlay's chosen first hop,
/// under ground truth.
fn chosen_cost(sim: &Simulator, truth: &LatencyMatrix, src: usize, dst: usize) -> Option<f64> {
    let node = overlay_at(sim, src);
    let hop = node.best_hop(NodeId(dst as u16), sim.now())?;
    Some(if hop.index() == dst {
        truth.rtt(src, dst)
    } else {
        truth.rtt(src, hop.index()) + truth.rtt(hop.index(), dst)
    })
}

#[test]
fn quorum_overlay_converges_to_optimal_one_hops() {
    // A zero-loss topology so measured == ground truth (modulo 1 ms wire
    // quantization and EWMA smoothing of simulator jitter).
    let mut topo = Topology::generate(&PlanetLabParams {
        n: 36,
        seed: 42,
        loss_median: 1e-6,
        loss_sigma: 0.01,
        ..Default::default()
    });
    // Remove loss entirely for exactness.
    let n = topo.len();
    for i in 0..n {
        for j in (i + 1)..n {
            topo.latency.set_loss(i, j, 0.0);
        }
    }
    let truth = topo.latency.clone();
    let sim = run_overlay(topo.latency, Algorithm::Quorum, 150.0, 1);

    let mut suboptimal = 0;
    let mut worst_excess: f64 = 0.0;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let optimal = truth.best_path_with_one_hop(src, dst);
            let chosen = chosen_cost(&sim, &truth, src, dst)
                .unwrap_or_else(|| panic!("{src}→{dst} unrouted"));
            // Tolerance: wire quantization (1 ms per leg) plus EWMA jitter
            // (±3 % per leg).
            let tolerance = 0.08 * optimal + 3.0;
            if chosen > optimal + tolerance {
                suboptimal += 1;
                worst_excess = worst_excess.max(chosen - optimal);
            }
        }
    }
    assert_eq!(
        suboptimal, 0,
        "{suboptimal} pairs route suboptimally (worst excess {worst_excess:.1} ms)"
    );
}

#[test]
fn quorum_and_fullmesh_agree_on_routes() {
    let topo = Topology::generate(&PlanetLabParams {
        n: 25,
        seed: 99,
        loss_median: 1e-6,
        loss_sigma: 0.01,
        ..Default::default()
    });
    let truth = topo.latency.clone();
    let n = truth.len();
    let quorum = run_overlay(truth.clone(), Algorithm::Quorum, 150.0, 2);
    let fullmesh = run_overlay(truth.clone(), Algorithm::FullMesh, 150.0, 2);

    let mut disagreements = 0;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let a = chosen_cost(&quorum, &truth, src, dst).expect("quorum routed");
            let b = chosen_cost(&fullmesh, &truth, src, dst).expect("fullmesh routed");
            // The chosen hops may differ on near-ties; the achieved costs
            // must agree within measurement tolerance.
            if (a - b).abs() > 0.08 * b.min(a) + 3.0 {
                disagreements += 1;
            }
        }
    }
    assert_eq!(
        disagreements, 0,
        "quorum and full-mesh disagree on {disagreements} pairs"
    );
}

#[test]
fn every_node_learns_every_destination() {
    // Freshness: in a healthy overlay every (src, dst) pair has received a
    // recommendation within ~1 routing interval (paper: typically 8 s).
    let topo = Topology::generate(&PlanetLabParams {
        n: 49,
        seed: 5,
        ..Default::default()
    });
    let sim = run_overlay(topo.latency, Algorithm::Quorum, 200.0, 3);
    let now = sim.now();
    let mut worst = 0.0f64;
    for src in 0..49 {
        let node = overlay_at(&sim, src);
        for dst in 0..49 {
            if src == dst {
                continue;
            }
            let age = node
                .route_age(NodeId(dst as u16), now)
                .unwrap_or_else(|| panic!("{src} never heard about {dst}"));
            worst = worst.max(age);
        }
    }
    // Bounded by the routing interval plus a couple of lost-message slacks
    // (loss exists in this topology).
    assert!(worst < 60.0, "worst route age {worst:.1} s");
}

#[test]
fn deterministic_end_to_end() {
    let topo = Topology::generate(&PlanetLabParams {
        n: 16,
        seed: 8,
        ..Default::default()
    });
    let routes = |seed: u64| -> Vec<Option<NodeId>> {
        let sim = run_overlay(topo.latency.clone(), Algorithm::Quorum, 120.0, seed);
        let mut out = Vec::new();
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    out.push(overlay_at(&sim, src).best_hop(NodeId(dst as u16), 120.0));
                }
            }
        }
        out
    };
    assert_eq!(routes(7), routes(7), "same seed must give identical runs");
}
