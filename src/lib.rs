//! # allpairs-overlay
//!
//! Facade crate for the reproduction of *Scaling All-Pairs Overlay Routing*
//! (Sontag et al., CoNEXT 2009). Re-exports the workspace crates:
//!
//! * [`quorum`] — grid-quorum construction (section 3)
//! * [`topology`] — synthetic Internet latency & failure models
//! * [`linkstate`] — link-state tables, probing state, wire codec (section 5)
//! * [`membership`] — decentralized SWIM gossip membership (beyond the
//!   paper: replaces the centralized coordinator)
//! * [`netsim`] — deterministic discrete-event network simulator
//! * [`routing`] — sans-io routing protocol cores (sections 3–4)
//! * [`overlay`] — the RON-like overlay node, sim & tokio drivers (section 5)
//! * [`analysis`] — metrics, CDFs, and the experiment toolkit (section 6)

#![forbid(unsafe_code)]

pub use apor_analysis as analysis;
pub use apor_linkstate as linkstate;
pub use apor_membership as membership;
pub use apor_netsim as netsim;
pub use apor_overlay as overlay;
pub use apor_quorum as quorum;
pub use apor_routing as routing;
pub use apor_topology as topology;
