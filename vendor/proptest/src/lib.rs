//! Offline property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses.
//!
//! The real proptest generates random values from composable
//! [`Strategy`] objects and shrinks failures; with no crates.io access
//! this stand-in keeps the *generation* side — seeded, deterministic,
//! case-count configurable — and forgoes shrinking (a failing case
//! prints its inputs via the assertion message instead). The macro
//! surface (`proptest!`, `prop_assert!`, `prop_assume!`, `prop_oneof!`,
//! `any`, `prop::collection::vec`, `prop::bool::weighted`, `prop_map`)
//! matches upstream, so swapping the real crate back in is a manifest
//! change only.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// A fixed-seed generator: every `cargo test` run sees the same
    /// cases (no shrinking ⇒ reproducibility matters more than novelty).
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng(ChaCha8Rng::seed_from_u64(0x5EED_F00D_CA5E_5EED))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Test-runner knobs (subset of the real struct).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; `prop_assume` rejections just skip.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            max_global_rejects: 1024,
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, for type-erased strategies.
trait DynStrategy {
    type Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_gen(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_gen(rng)
    }
}

/// Uniform choice between type-erased alternatives — the engine behind
/// [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over the given alternatives.
    ///
    /// # Panics
    /// Panics when `alternatives` is empty.
    #[must_use]
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].gen_value(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.gen_value(rng))
    }
}

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uniform {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, spanning sign and magnitude; NaN/inf excluded like the
        // real crate's default.
        let unit: f64 = rng.gen();
        (unit - 0.5) * 2.0e9
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::Range;

        /// Lengths accepted by [`vec`]: a `usize` (exact) or a range.
        pub trait IntoLenRange {
            /// The equivalent half-open range.
            fn into_len_range(self) -> Range<usize>;
        }

        impl IntoLenRange for usize {
            fn into_len_range(self) -> Range<usize> {
                self..self + 1
            }
        }

        impl IntoLenRange for Range<usize> {
            fn into_len_range(self) -> Range<usize> {
                self
            }
        }

        /// Vectors whose length is drawn from `len` and whose elements
        /// come from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into_len_range(),
            }
        }

        /// Strategy returned by [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.gen_value(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// `true` with probability `p`.
        #[must_use]
        pub fn weighted(p: f64) -> Weighted {
            Weighted(p)
        }

        /// Strategy returned by [`weighted`].
        pub struct Weighted(f64);

        impl Strategy for Weighted {
            type Value = bool;
            fn gen_value(&self, rng: &mut TestRng) -> bool {
                rng.gen_bool(self.0)
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy,
    };
}

/// Assert inside a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    (@munch ($cfg:expr); ) => {};
    (@munch ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strategy), &mut rng);)+
                // Per-case closure so `prop_assume!` can skip via
                // `return`; `mut` covers bodies that mutate captures.
                #[allow(unused_mut)]
                let mut case = move || -> () { $body };
                case();
            }
        }
        $crate::proptest!(@munch ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_any(x in 3usize..10, y in any::<u16>(), b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            let _ = (y, b);
        }

        #[test]
        fn assume_skips(x in 0usize..4) {
            prop_assume!(x != 2);
            prop_assert_ne!(x, 2);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0u8..5, any::<bool>()), 0..20)) {
            prop_assert!(v.len() < 20);
            for (n, _) in v {
                prop_assert!(n < 5);
            }
        }

        #[test]
        fn oneof_covers(m in prop_oneof![(0u32..1).prop_map(|_| 0u8), (0u32..1).prop_map(|_| 1u8)]) {
            prop_assert!(m <= 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let s = prop::collection::vec(any::<u64>(), 3..4);
        let mut r1 = crate::TestRng::deterministic();
        let mut r2 = crate::TestRng::deterministic();
        assert_eq!(
            crate::Strategy::gen_value(&s, &mut r1),
            crate::Strategy::gen_value(&s, &mut r2)
        );
    }
}
