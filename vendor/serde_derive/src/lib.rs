//! Offline `Serialize` / `Deserialize` derives for the vendored serde
//! marker traits.
//!
//! Each derive emits an empty marker impl for the annotated type. Only
//! non-generic types are supported — which covers every derived type in
//! this workspace; deriving on a generic type is a compile error rather
//! than a silently wrong impl. Field/variant `#[serde(...)]` attributes
//! are accepted and ignored.

use proc_macro::{TokenStream, TokenTree};

/// Name of the annotated struct/enum, or an error if it is generic.
fn type_name(input: TokenStream) -> Result<String, String> {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = match iter.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                if let Some(TokenTree::Punct(p)) = iter.next() {
                    if p.as_char() == '<' {
                        return Err(format!(
                            "vendored serde_derive does not support generic type `{name}`"
                        ));
                    }
                }
                return Ok(name);
            }
        }
    }
    Err("no struct or enum found in derive input".to_string())
}

fn marker_impl(input: TokenStream, template: &str) -> TokenStream {
    match type_name(input) {
        Ok(name) => template
            .replace("$name", &name)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("generated error parses"),
    }
}

/// Derive the vendored `serde::Serialize` marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl ::serde::Serialize for $name {}")
}

/// Derive the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "impl<'de> ::serde::Deserialize<'de> for $name {}")
}
