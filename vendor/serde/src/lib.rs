//! Offline marker-trait subset of `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so
//! downstream users can persist them, but nothing *in* the workspace
//! serializes through serde (the wire codec is hand-rolled, CSV output is
//! hand-rolled). With no crates.io access, this vendored stand-in keeps
//! the derives compiling as inert markers. Swapping in the real serde is
//! a one-line manifest change; the derive attribute surface
//! (`#[serde(...)]`) is accepted and ignored.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de> {}
