//! Offline ChaCha-based generator for the vendored `rand` traits.
//!
//! [`ChaCha8Rng`] runs the genuine ChaCha block function at 8 rounds, so
//! the statistical quality matches the real `rand_chacha` crate. The
//! *stream* differs from upstream (the seed expansion is simpler), which
//! is fine everywhere in this workspace: seeds only pin determinism, no
//! test asserts specific draws.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A deterministic ChaCha (8 rounds) random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce in ChaCha state layout (words 4..16).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word of `block`; 16 ⇒ refill.
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// SplitMix64 step, used only to expand the 64-bit seed into a key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12–13.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for k in 0..4 {
            let w = splitmix64(&mut sm);
            state[4 + 2 * k] = w as u32;
            state[5 + 2 * k] = (w >> 32) as u32;
        }
        // Counter (12–13) starts at 0; nonce (14–15) from the seed too.
        let nonce = splitmix64(&mut sm);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..100).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 3, "different seeds should diverge");
    }

    #[test]
    fn uniformish_bits() {
        // Cheap sanity check: mean of 10k unit draws near 0.5.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
