//! Offline, API-compatible subset of the `rand` crate.
//!
//! Provides exactly the surface the workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, uniform sampling over ranges, the
//! `Standard`-style `gen::<T>()` draws, and [`seq::SliceRandom`]. All
//! sampling is deterministic given the generator state; statistical
//! quality comes from the generator (see the vendored `rand_chacha`).
//! Swapping in the real crate is a one-line manifest change.

#![forbid(unsafe_code)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types drawable uniformly via [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution
    /// (uniform over the type; `[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random selection from slices.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices (subset of the real trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (all of them when
        /// the slice is shorter).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` positions end up
            // uniformly chosen without replacement.
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<&T>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // Weyl sequence through a mixer: good enough for tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let v = r.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(0u8..=127);
            assert!(w <= 127);
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut r = Counter(3);
        let xs: Vec<usize> = (0..10).collect();
        let picked: Vec<usize> = xs.choose_multiple(&mut r, 4).copied().collect();
        assert_eq!(picked.len(), 4);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 4, "duplicates in {picked:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Counter(4);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
