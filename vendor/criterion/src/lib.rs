//! Offline micro-benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses.
//!
//! With no crates.io access, this stand-in keeps the bench suites
//! compiling and *running*: each benchmark is warmed up, timed over a
//! fixed wall-clock budget split into sample slices, and reported as
//! the median ns/iter across slices (with the median absolute
//! deviation as the dispersion). `cargo bench` and `cargo test
//! --benches` both work (benchmarks run one quick iteration under the
//! test harness), and `cargo bench -- --test` mirrors real criterion's
//! test mode: every benchmark body runs exactly once, for CI smoke
//! coverage without the measurement budget.
//!
//! ## Perf-trajectory reports
//!
//! After the groups finish, [`criterion_main!`] writes every measured
//! benchmark to `BENCH_<suite>.json` (suite = the bench target name,
//! recovered from the executable), the format consumed by the
//! `apor-telemetry` regression gate. The report lands in
//! `$APOR_BENCH_DIR` (created if missing) or, when the variable is
//! unset, the working directory; `--test` mode measures nothing and
//! writes nothing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Iterations of warm-up before measuring.
const WARMUP_ITERS: u64 = 2;
/// Sample slices the measurement budget is divided into; the reported
/// median and MAD are computed across the per-slice means.
const SAMPLE_SLICES: usize = 16;

/// One finished benchmark, queued for the suite report.
struct Record {
    id: String,
    median_ns: f64,
    mad_ns: f64,
    samples: u64,
    iters: u64,
}

/// Benchmarks measured so far in this process.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in times by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the logical throughput of each iteration (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label()), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label()), &mut |b| {
            f(b, input);
        });
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 0,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label:<40} (no iterations)");
        return;
    }
    let median_ns = median(&mut b.samples.clone());
    let mad_ns = {
        let mut dev: Vec<f64> = b.samples.iter().map(|s| (s - median_ns).abs()).collect();
        median(&mut dev)
    };
    println!(
        "bench {label:<40} {median_ns:>14.0} ns/iter (±{mad_ns:.0} MAD, {} samples, {} iters)",
        b.samples.len(),
        b.iters
    );
    if !test_mode() {
        RECORDS.lock().unwrap().push(Record {
            id: label.to_string(),
            median_ns,
            mad_ns,
            samples: b.samples.len() as u64,
            iters: b.iters,
        });
    }
}

/// Median of `values` (sorts in place; 0.0 when empty).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        (values[mid - 1] + values[mid]) / 2.0
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
    /// Mean ns/iter of each sample slice.
    samples: Vec<f64>,
}

impl Bencher {
    /// Record one sample slice's outcome.
    fn sample(&mut self, elapsed: Duration, iters: u64) {
        if iters > 0 {
            self.iters += iters;
            self.samples.push(elapsed.as_nanos() as f64 / iters as f64);
        }
    }

    /// Time `routine` repeatedly within the measurement budget (or run
    /// it exactly once under `--test`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let t0 = Instant::now();
            black_box(routine());
            self.sample(t0.elapsed(), 1);
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let slice_budget = measure_budget() / SAMPLE_SLICES as u32;
        for _ in 0..SAMPLE_SLICES {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0;
            let started = Instant::now();
            loop {
                let t0 = Instant::now();
                black_box(routine());
                elapsed += t0.elapsed();
                iters += 1;
                if started.elapsed() >= slice_budget {
                    break;
                }
            }
            self.sample(elapsed, iters);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if test_mode() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.sample(t0.elapsed(), 1);
            return;
        }
        black_box(routine(setup()));
        let slice_budget = measure_budget() / SAMPLE_SLICES as u32;
        for _ in 0..SAMPLE_SLICES {
            let mut elapsed = Duration::ZERO;
            let mut iters = 0;
            let started = Instant::now();
            loop {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
                iters += 1;
                if started.elapsed() >= slice_budget {
                    break;
                }
            }
            self.sample(elapsed, iters);
        }
    }
}

/// Write the finished benchmarks to `BENCH_<suite>.json` in the
/// report directory (see the crate docs). Called by
/// [`criterion_main!`] after all groups have run; a run with nothing
/// measured (e.g. `--test` mode) writes nothing.
pub fn write_report() {
    let records = RECORDS.lock().unwrap();
    if records.is_empty() {
        return;
    }
    let dir = std::env::var_os("APOR_BENCH_DIR")
        .map_or_else(|| std::path::PathBuf::from("."), std::path::PathBuf::from);
    if std::fs::create_dir_all(&dir).is_err() {
        eprintln!("criterion: cannot create report dir {}", dir.display());
        return;
    }
    let suite = suite_name();
    let mut out = String::new();
    out.push_str("{\n  \"suite\": \"");
    out.push_str(&escape(&suite));
    out.push_str("\",\n  \"benches\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mad_ns\": {:.1}, \
             \"samples\": {}, \"iters\": {}}}",
            escape(&r.id),
            r.median_ns,
            r.mad_ns,
            r.samples,
            r.iters
        ));
    }
    out.push_str("\n  ]\n}\n");
    let path = dir.join(format!("BENCH_{suite}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("bench report -> {}", path.display()),
        Err(e) => eprintln!("criterion: cannot write {}: {e}", path.display()),
    }
}

/// Minimal JSON string escaping for ids and suite names.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The bench-target name, recovered from the executable: cargo builds
/// bench binaries as `<target>-<16-hex-digit hash>`.
fn suite_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let base = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    strip_bin_hash(base).to_string()
}

/// Strip cargo's trailing `-<hex hash>` from a binary stem, if present.
fn strip_bin_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && hash.len() == 16
                && hash.bytes().all(|b| b.is_ascii_hexdigit()) =>
        {
            name
        }
        _ => stem,
    }
}

/// Under `cargo test` the harness runs benches once as smoke tests; keep
/// that fast by shrinking the measurement budget.
fn measure_budget() -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(10)
    } else {
        MEASURE_BUDGET
    }
}

/// Real criterion's `--test` flag: run every benchmark exactly once and
/// skip measurement. Checked per `iter` call so the flag also works for
/// benches registered after startup.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// How `iter_batched` amortizes setup (accepted for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Logical work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function label plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier with only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups, then writing the suite's
/// `BENCH_<suite>.json` perf-trajectory report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
    }

    #[test]
    fn median_and_mad_are_order_free() {
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn bench_hash_suffix_is_stripped() {
        assert_eq!(strip_bin_hash("kernels-0123456789abcdef"), "kernels");
        assert_eq!(strip_bin_hash("kernels"), "kernels");
        assert_eq!(strip_bin_hash("round-two"), "round-two");
        assert_eq!(strip_bin_hash("-0123456789abcdef"), "-0123456789abcdef");
    }

    #[test]
    fn measured_benchmarks_are_recorded() {
        let mut c = Criterion::default();
        c.bench_function("record/probe", |b| b.iter(|| black_box(1 + 1)));
        let records = RECORDS.lock().unwrap();
        let r = records
            .iter()
            .find(|r| r.id == "record/probe")
            .expect("recorded");
        assert!(r.median_ns >= 0.0 && r.samples > 0 && r.iters > 0);
    }
}
