//! Offline micro-benchmark harness, API-compatible with the subset of
//! `criterion` this workspace uses.
//!
//! With no crates.io access, this stand-in keeps the bench suites
//! compiling and *running*: each benchmark is warmed up, timed over a
//! fixed wall-clock budget, and reported as mean ns/iter on stdout. No
//! statistics, plots or baselines — swap the real criterion back in via
//! the manifest for those. `cargo bench` and `cargo test --benches` both
//! work (benchmarks run one quick iteration under the test harness),
//! and `cargo bench -- --test` mirrors real criterion's test mode:
//! every benchmark body runs exactly once, for CI smoke coverage
//! without the measurement budget.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Iterations of warm-up before measuring.
const WARMUP_ITERS: u64 = 2;

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stand-in times by wall-clock
    /// budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Record the logical throughput of each iteration (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.label()), &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label()), &mut |b| {
            f(b, input);
        });
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("bench {label:<40} (no iterations)");
    } else {
        let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        println!(
            "bench {label:<40} {per_iter:>14.0} ns/iter ({} iters)",
            b.iters
        );
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly within the measurement budget (or run
    /// it exactly once under `--test`).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            return;
        }
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let started = Instant::now();
        while started.elapsed() < measure_budget() {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        if test_mode() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            return;
        }
        black_box(routine(setup()));
        let started = Instant::now();
        while started.elapsed() < measure_budget() {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }
}

/// Under `cargo test` the harness runs benches once as smoke tests; keep
/// that fast by shrinking the measurement budget.
fn measure_budget() -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(10)
    } else {
        MEASURE_BUDGET
    }
}

/// Real criterion's `--test` flag: run every benchmark exactly once and
/// skip measurement. Checked per `iter` call so the flag also works for
/// benches registered after startup.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// How `iter_batched` amortizes setup (accepted for compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Logical work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function label plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identifier with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identifier with only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: None,
        }
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(10);
        let mut calls = 0u64;
        g.bench_function(BenchmarkId::new("count", 1), |b| {
            b.iter(|| calls += 1);
        });
        g.finish();
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
