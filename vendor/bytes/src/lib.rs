//! Offline, API-compatible subset of the `bytes` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small slice* of `bytes` the overlay actually uses: an
//! immutable, cheaply cloneable byte buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]), and the big-endian cursor traits ([`Buf`],
//! [`BufMut`]) the wire codec is written against. Swapping in the real
//! crate is a one-line manifest change; no source edits are required.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static byte slice (copies; the real crate borrows, but the
    /// observable behaviour is identical).
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(bytes.to_vec()),
        }
    }

    /// Number of bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer holds no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build messages.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with pre-reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian write cursor.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian read cursor.
///
/// # Panics
/// The `get_*` methods panic when the buffer is exhausted, exactly like
/// the real crate; decoders must check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume and return the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_bytes(2).try_into().expect("2 bytes"))
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_bytes(4).try_into().expect("4 bytes"))
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_bytes(8).try_into().expect("8 bytes"))
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize) {
        let _ = self.take_bytes(n);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_bytes(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer exhausted");
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(7);
        b.put_u16(0xBEEF);
        b.put_u32(0xDEAD_BEEF);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 10);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.take_bytes(3), &[1, 2, 3]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b, c);
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn overread_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16();
    }
}
