//! Coordinator-free membership: a 16-node overlay survives killing
//! *any* single node.
//!
//! The paper's centralized membership service dies with its coordinator.
//! This example runs the same overlay on the SWIM gossip plane
//! (`apor-membership`) and crashes each node in turn — including node 0,
//! the one the centralized design cannot lose — printing how long the
//! survivors take to agree on the shrunken view (same version, same
//! member list, the quorum-grid invariant).
//!
//! ```sh
//! cargo run --release --example gossip_membership
//! ```

use allpairs_overlay::membership::SwimConfig;
use allpairs_overlay::netsim::{Simulator, SimulatorConfig};
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, FailureSchedule, LatencyMatrix, NodeOutage};

const N: usize = 16;
const KILL_AT: f64 = 60.0;

/// Crash `victim` at [`KILL_AT`]; return the seconds until every
/// survivor's installed view excludes it and all views are identical.
fn convergence_after_killing(victim: usize) -> Option<f64> {
    let mut failure = FailureParams::with_n(N);
    failure.median_concurrent = 1e-12; // a clean crash, no link noise
    failure.duration_s = 1e6;
    failure.node_outages = vec![NodeOutage {
        node: victim,
        start_s: KILL_AT,
        end_s: 1e6,
    }];
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(N, 40.0),
        FailureSchedule::generate(&failure),
        SimulatorConfig {
            seed: 0x6055 + victim as u64,
            ..overlay_sim_config()
        },
    );
    let members: Vec<NodeId> = (0..N as u16).map(NodeId).collect();
    populate(&mut sim, N, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
            .with_swim()
    });

    let budget = SwimConfig::default().detection_budget_s(N);
    let mut t = KILL_AT;
    while t < KILL_AT + budget + 30.0 {
        t += 1.0;
        sim.run_until(t);
        let mut reference = None;
        let mut agreed = true;
        for i in (0..N).filter(|&i| i != victim) {
            let Some(view) = overlay_at(&sim, i).view() else {
                agreed = false;
                break;
            };
            if view.contains(NodeId(victim as u16)) || view.len() != N - 1 {
                agreed = false;
                break;
            }
            match &reference {
                None => reference = Some(view.clone()),
                Some(r) => {
                    if r != view {
                        agreed = false;
                        break;
                    }
                }
            }
        }
        if agreed {
            return Some(t - KILL_AT);
        }
    }
    None
}

fn main() {
    let budget = SwimConfig::default().detection_budget_s(N);
    println!("== SWIM gossip membership: {N}-node overlay, no coordinator ==\n");
    println!("crashing each node in turn at t = {KILL_AT} s; detection budget {budget:.0} s\n");
    println!("victim   survivors agree after");
    println!("------   ---------------------");
    let mut worst: f64 = 0.0;
    for victim in 0..N {
        match convergence_after_killing(victim) {
            Some(s) => {
                worst = worst.max(s);
                let note = if victim == 0 {
                    "  (the node a centralized design cannot lose)"
                } else {
                    ""
                };
                println!("n{victim:<6}  {s:>5.0} s{note}");
            }
            None => println!("n{victim:<6}  NOT CONVERGED within budget — protocol bug"),
        }
    }
    println!(
        "\nworst case {worst:.0} s, budget {budget:.0} s — the overlay survives any single crash."
    );
}
