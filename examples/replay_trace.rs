//! Replay a measured RTT trace through the overlay.
//!
//! Downstream users rarely want a synthetic Internet — they have their own
//! all-pairs measurements. This example shows the external-data path: a
//! latency matrix in the simple `src,dst,rtt_ms,loss` CSV format (pass a
//! file path as the first argument, or let the example synthesize and
//! dump one) is loaded with `LatencyMatrix::from_csv`, the overlay runs
//! on it, and the resulting routes are compared against the trace's own
//! optimum.
//!
//! ```sh
//! cargo run --release --example replay_trace             # demo trace
//! cargo run --release --example replay_trace pings.csv   # your data
//! ```

use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::topology::{FailureParams, LatencyMatrix, PlanetLabParams, Topology};

fn main() {
    let arg = std::env::args().nth(1);
    let (matrix, source) = match arg {
        Some(path) => {
            let csv = std::fs::read_to_string(&path).expect("read trace file");
            (LatencyMatrix::from_csv(&csv).expect("parse trace"), path)
        }
        None => {
            // No trace supplied: synthesize one, dump it, and read it back
            // through the same code path a real trace would take.
            let topo = Topology::generate(&PlanetLabParams::with_n(30));
            let csv = topo.latency.to_csv();
            let path = std::env::temp_dir().join("apor-demo-trace.csv");
            std::fs::write(&path, &csv).expect("write demo trace");
            (
                LatencyMatrix::from_csv(&csv).expect("roundtrip"),
                path.display().to_string(),
            )
        }
    };
    let n = matrix.len();
    println!("== replaying trace {source} ({n} nodes) ==\n");

    let mut sim = Simulator::new(
        matrix.clone(),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });
    sim.run_until(200.0);

    // Score every pair: how close is the overlay's route to the trace's
    // one-hop optimum?
    let mut within_tolerance = 0usize;
    let mut total = 0usize;
    let mut total_direct = 0.0;
    let mut total_chosen = 0.0;
    for src in 0..n {
        let node = overlay_at(&sim, src);
        for dst in 0..n {
            if src == dst || !matrix.reachable(src, dst) {
                continue;
            }
            total += 1;
            let direct = matrix.rtt(src, dst);
            let optimal = matrix.best_path_with_one_hop(src, dst);
            let chosen = match node.best_hop(NodeId(dst as u16), sim.now()) {
                Some(h) if h.index() == dst => direct,
                Some(h) => matrix.rtt(src, h.index()) + matrix.rtt(h.index(), dst),
                None => f64::INFINITY,
            };
            total_direct += direct;
            total_chosen += chosen.min(direct + 1e9); // count unrouted as direct-ish
            if chosen <= optimal * 1.08 + 3.0 {
                within_tolerance += 1;
            }
        }
    }
    println!(
        "pairs routed within tolerance of the trace optimum: {within_tolerance}/{total} ({:.1}%)",
        100.0 * within_tolerance as f64 / total as f64
    );
    println!(
        "mean latency: direct {:.1} ms → overlay {:.1} ms",
        total_direct / total as f64,
        total_chosen / total as f64
    );
}
