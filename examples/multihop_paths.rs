//! The multi-hop extension (section 3): all-pairs shortest paths with
//! `Θ(n√n·log n)` communication.
//!
//! Runs the log-iterated quorum protocol on a synthetic Internet, shows
//! how route quality converges as the hop budget doubles, and reconstructs
//! an actual multi-hop forwarding path from the `Sec` next-hop pointers.
//!
//! ```sh
//! cargo run --release --example multihop_paths
//! ```

use allpairs_overlay::routing::multihop::multihop_routes;
use allpairs_overlay::topology::{PlanetLabParams, Topology};

fn main() {
    let n = 100;
    println!("== multi-hop routing on a {n}-node synthetic Internet ==\n");
    let topo = Topology::generate(&PlanetLabParams::with_n(n).with_seed(0x3407));
    let m = &topo.latency;

    // Convergence as the hop budget doubles.
    let full = multihop_routes(m, n);
    println!("hop budget → mean latency over all pairs (and per-node traffic):");
    for hops in [1usize, 2, 4, 8] {
        let r = multihop_routes(m, hops);
        let mean: f64 = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .map(|(i, j)| r.cost_of(i, j))
            .sum::<f64>()
            / (n * (n - 1)) as f64;
        let optimal_frac = (0..n)
            .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
            .filter(|&(i, j)| (r.cost_of(i, j) - full.cost_of(i, j)).abs() < 1e-6)
            .count() as f64
            / (n * (n - 1)) as f64;
        println!(
            "  ≤{:>2} hops ({} iterations): mean {:>6.1} ms, optimal for {:>5.1}% of pairs, {:>7.1} KB/node",
            r.max_hops,
            r.iterations,
            mean,
            optimal_frac * 100.0,
            r.mean_bytes_sent() / 1024.0
        );
    }

    // Find the pair that benefits most from going beyond one hop.
    let two = multihop_routes(m, 2);
    let (src, dst) = (0..n)
        .flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j)))
        .max_by(|&(a, b), &(c, d)| {
            let x = two.cost_of(a, b) - full.cost_of(a, b);
            let y = two.cost_of(c, d) - full.cost_of(c, d);
            x.partial_cmp(&y).unwrap()
        })
        .unwrap();
    println!(
        "\nbiggest multi-hop win: {src} → {dst}: direct {:.0} ms, best 1-hop {:.0} ms, unrestricted {:.0} ms",
        m.rtt(src, dst),
        two.cost_of(src, dst),
        full.cost_of(src, dst)
    );
    let path = full.path(src, dst).expect("forwarding path");
    let legs: Vec<String> = path
        .windows(2)
        .map(|w| format!("{}→{} ({:.0} ms)", w[0], w[1], m.rtt(w[0], w[1])))
        .collect();
    println!("forwarding path via Sec pointers: {}", legs.join(", "));
    let walked: f64 = path.windows(2).map(|w| m.rtt(w[0], w[1])).sum();
    println!(
        "walked cost {walked:.0} ms (claimed {:.0} ms)",
        full.cost_of(src, dst)
    );
}
