//! A real overlay on real UDP sockets — the "deployment" path.
//!
//! Spawns a 5-node quorum overlay on localhost, with every node running
//! the exact same state machine the simulator drives: tokio sockets, a
//! timer wheel, the full probing/link-state/recommendation protocol. The
//! protocol clock is scaled ~60× so the run completes in seconds. Prints
//! each node's measured latencies and chosen routes, then shuts the fleet
//! down cleanly.
//!
//! ```sh
//! cargo run --release --example udp_cluster
//! ```

use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::node::OverlayNode;
use allpairs_overlay::overlay::udp::{PeerMap, UdpOverlay};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::routing::ProtocolConfig;
use tokio::net::UdpSocket;
use tokio::time::Duration;

fn fast_protocol() -> ProtocolConfig {
    let mut p = ProtocolConfig::quorum();
    p.probe_interval_s = 0.6;
    p.probe_timeout_s = 0.05;
    p.rapid_probe_interval_s = 0.1;
    p.routing_interval_s = 0.4;
    p
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let n: u16 = 5;
    println!("== {n}-node overlay on real UDP sockets (localhost) ==\n");

    // Bind everything first so the peer map is complete before any node
    // starts talking.
    let mut sockets = Vec::new();
    let mut peers = PeerMap::new();
    for i in 0..n {
        let s = UdpSocket::bind("127.0.0.1:0").await?;
        peers.insert(NodeId(i), s.local_addr()?);
        sockets.push(s);
    }
    for (id, addr) in &peers {
        println!("  {id} @ {addr}");
    }

    let members: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut fleet = Vec::new();
    for (i, socket) in sockets.into_iter().enumerate() {
        let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone());
        cfg.protocol = fast_protocol();
        fleet.push(UdpOverlay::spawn(OverlayNode::new(cfg), socket, peers.clone()).await?);
    }

    println!("\nletting the overlay probe and route for 4 seconds of real time…\n");
    tokio::time::sleep(Duration::from_secs(4)).await;

    for overlay in &fleet {
        let handle = overlay.node();
        let node = handle.lock();
        let me = node.id();
        let lat: Vec<String> = (0..n)
            .filter(|&j| NodeId(j) != me)
            .map(|j| {
                format!(
                    "{}:{:.1}ms",
                    NodeId(j),
                    node.measured_latency_ms(NodeId(j)).unwrap_or(f64::NAN)
                )
            })
            .collect();
        let routes: Vec<String> = (0..n)
            .filter(|&j| NodeId(j) != me)
            .map(|j| {
                format!(
                    "{}→{}",
                    NodeId(j),
                    node.best_hop(NodeId(j), 4.0)
                        .map_or("?".into(), |h| h.to_string())
                )
            })
            .collect();
        println!(
            "{me}: member={} latencies=[{}] routes=[{}]",
            node.is_member(),
            lat.join(" "),
            routes.join(" ")
        );
    }

    println!("\nshutting down…");
    for overlay in fleet {
        overlay.shutdown().await?;
    }
    println!("all nodes stopped cleanly.");
    Ok(())
}
