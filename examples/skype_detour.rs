//! The section 2 VoIP scenario: a latency-optimizing detour service.
//!
//! "A Voice-over-IP company like Skype could provision thousands of
//! computers near the edges of the Internet … maintaining a list of
//! optimal one-hop routes between any two locations." This example plays
//! that out: a 200-node overlay runs the quorum algorithm over a synthetic
//! Internet, then a series of "calls" between high-latency endpoints ask
//! their overlay nodes for the best one-hop relay.
//!
//! ```sh
//! cargo run --release --example skype_detour
//! ```

use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::NodeId;
use allpairs_overlay::routing::onehop;
use allpairs_overlay::topology::{FailureParams, PlanetLabParams, Topology};

fn main() {
    let n = 200;
    println!("== Skype-style detour service on a {n}-node overlay ==\n");

    let topo = Topology::generate(&PlanetLabParams::with_n(n).with_seed(0x5C19E));
    let mut sim = Simulator::new(
        topo.latency.clone(),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 10.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });
    println!("running the overlay for 4 simulated minutes…");
    sim.run_until(240.0);

    // Place "calls" on the ten worst direct paths.
    let mut bad_pairs = onehop::high_latency_pairs(&topo.latency, 400.0);
    bad_pairs.sort_by(|&(a, b), &(c, d)| {
        topo.latency
            .rtt(c, d)
            .partial_cmp(&topo.latency.rtt(a, b))
            .unwrap()
    });
    bad_pairs.dedup_by_key(|&mut (a, b)| if a < b { (a, b) } else { (b, a) });

    println!("\nten worst call paths and what the overlay does for them:");
    println!(
        "{:>4} → {:<4} {:>10} {:>10} {:>10} {:>12}",
        "src", "dst", "direct ms", "via", "overlay ms", "optimal ms"
    );
    let mut improved = 0;
    let mut optimal_hits = 0;
    let calls: Vec<(usize, usize)> = bad_pairs.into_iter().take(10).collect();
    for &(src, dst) in &calls {
        let node = overlay_at(&sim, src);
        let direct = topo.latency.rtt(src, dst);
        let hop = node.best_hop(NodeId(dst as u16), sim.now());
        let overlay_ms = hop.map_or(direct, |h| {
            if h.index() == dst {
                direct
            } else {
                topo.latency.rtt(src, h.index()) + topo.latency.rtt(h.index(), dst)
            }
        });
        let optimal = topo.latency.best_path_with_one_hop(src, dst);
        if overlay_ms < direct {
            improved += 1;
        }
        if (overlay_ms - optimal).abs() < 25.0 {
            optimal_hits += 1;
        }
        println!(
            "{:>4} → {:<4} {:>10.0} {:>10} {:>10.0} {:>12.0}",
            src,
            dst,
            direct,
            hop.map_or("-".into(), |h| h.to_string()),
            overlay_ms,
            optimal
        );
    }
    println!(
        "\n{improved}/{} calls improved by detouring; {optimal_hits}/{} within 25 ms of the optimum",
        calls.len(),
        calls.len()
    );
    println!(
        "(per-node routing cost at n={n}: quorum {:.1} Kbps vs full-mesh {:.1} Kbps)",
        allpairs_overlay::analysis::theory::quorum_routing_bps(n as f64) / 1000.0,
        allpairs_overlay::analysis::theory::ron_routing_bps(n as f64) / 1000.0,
    );
}
