//! Rendezvous failover in action (section 4.1, figure 4(b)'s scenario).
//!
//! A 25-node overlay runs healthily; at t = 300 s we cut node 0's links to
//! *both* of its default rendezvous servers for destination 24, and the
//! direct link 0–24 — exactly figure 4(b)'s "proximal rendezvous + direct
//! failures". The demo prints a timeline of what node 0 knows about
//! destination 24 while the section 4.1 machinery detects the double
//! rendezvous failure, picks a random failover rendezvous from 24's
//! row/column, and recovers the route. At t = 700 s the links heal and
//! node 0 reverts to its default rendezvous.
//!
//! ```sh
//! cargo run --release --example failover_demo
//! ```

use allpairs_overlay::netsim::Simulator;
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::{Grid, NodeId};
use allpairs_overlay::topology::{FailureParams, FailureSchedule, LatencyMatrix, LinkOutage};

fn main() {
    let n = 25;
    let src = 0usize;
    let dst = 24usize;
    let grid = Grid::new(n);
    let pair = grid.default_rendezvous_pair(src, dst);
    println!("== rendezvous failover demo: {n} nodes ==");
    println!(
        "src {src} at grid {:?}, dst {dst} at grid {:?}; default rendezvous pair {pair:?}",
        grid.position(src),
        grid.position(dst),
    );
    println!(
        "t=300s: links {src}–{} , {src}–{} and {src}–{dst} fail; t=700s: they heal\n",
        pair[0], pair[1]
    );

    let (kill, heal) = (300.0, 700.0);
    let mut params = FailureParams::with_n(n);
    params.median_concurrent = 1e-9; // no background noise, only our injection
    params.duration_s = 1100.0;
    params.link_outages = pair
        .iter()
        .map(|&s| (src, s))
        .chain(std::iter::once((src, dst)))
        .map(|(a, b)| LinkOutage {
            a,
            b,
            start_s: kill,
            end_s: heal,
        })
        .collect();
    let schedule = FailureSchedule::generate(&params);

    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, 60.0),
        schedule,
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });

    println!(
        "{:>6} {:>10} {:>9} {:>9} {:>16} {:>10}",
        "t (s)", "route age", "best hop", "dbl-fail", "active failover", "phase"
    );
    for step in 1..=22 {
        let t = step as f64 * 50.0;
        sim.run_until(t);
        let node = overlay_at(&sim, src);
        let age = node.route_age(NodeId(dst as u16), t);
        let hop = node.best_hop(NodeId(dst as u16), t);
        let dbl = node.double_rendezvous_failures(t);
        let failover = node
            .quorum_router()
            .and_then(|r| r.active_failover(dst))
            .map_or("-".to_string(), |f| format!("node {f}"));
        let phase = if t < kill {
            "healthy"
        } else if t < heal {
            "FAILED"
        } else {
            "healed"
        };
        println!(
            "{:>6.0} {:>10} {:>9} {:>9} {:>16} {:>10}",
            t,
            age.map_or("never".into(), |a| format!("{a:.0}s")),
            hop.map_or("-".into(), |h| h.to_string()),
            dbl,
            failover,
            phase
        );
    }

    let node = overlay_at(&sim, src);
    let final_age = node.route_age(NodeId(dst as u16), sim.now());
    println!(
        "\nfinal route age to dst {dst}: {:.0}s; failovers selected during the run: {}",
        final_age.unwrap_or(f64::NAN),
        node.quorum_router()
            .map_or(0, |r| r.metrics().failovers_selected)
    );
}
