//! Quickstart: a 16-node overlay in the deterministic simulator.
//!
//! Builds a synthetic Internet, runs the grid-quorum overlay on it for a
//! few simulated minutes, and prints the quorum grid, a routing table
//! excerpt, and the bandwidth scorecard against the full-mesh baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use allpairs_overlay::netsim::{Simulator, TrafficClass};
use allpairs_overlay::overlay::config::{Algorithm, NodeConfig};
use allpairs_overlay::overlay::simnode::{overlay_at, overlay_sim_config, populate};
use allpairs_overlay::quorum::{Grid, NodeId};
use allpairs_overlay::topology::{FailureParams, PlanetLabParams, Topology};

fn main() {
    let n = 16;
    println!("== allpairs-overlay quickstart: {n} nodes ==\n");

    // 1. A synthetic Internet (geography + routing pathologies).
    let topo = Topology::generate(&PlanetLabParams::with_n(n));
    println!(
        "synthetic topology: RTT range {:.0}–{:.0} ms",
        topo.latency
            .pairs()
            .map(|(_, _, r)| r)
            .fold(f64::INFINITY, f64::min),
        topo.latency.pairs().map(|(_, _, r)| r).fold(0.0, f64::max),
    );

    // 2. The quorum grid every node derives from the membership view.
    let grid = Grid::new(n);
    println!("\nquorum grid ({}):\n{grid}", grid.shape());
    println!(
        "node 0's rendezvous servers: {:?}",
        grid.rendezvous_servers(0)
    );

    // 3. Run the overlay in the simulator.
    let mut sim = Simulator::new(
        topo.latency.clone(),
        FailureParams::none(n, 1e9),
        overlay_sim_config(),
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 5.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members.clone())
    });
    sim.run_until(240.0);

    // 4. Inspect node 0's routing table against the ground truth.
    let node0 = overlay_at(&sim, 0);
    println!("\nnode 0 routing table (vs ground-truth optimum):");
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>10}",
        "dst", "direct ms", "chosen hop", "chosen ms", "optimal ms"
    );
    for dst in 1..n {
        let direct = topo.latency.rtt(0, dst);
        let hop = node0.best_hop(NodeId(dst as u16), sim.now());
        let chosen_ms = hop.map_or(f64::NAN, |h| {
            if h.index() == dst {
                direct
            } else {
                topo.latency.rtt(0, h.index()) + topo.latency.rtt(h.index(), dst)
            }
        });
        let optimal = topo.latency.best_path_with_one_hop(0, dst);
        println!(
            "{:>4} {:>10.0} {:>12} {:>12.0} {:>10.0}",
            dst,
            direct,
            hop.map_or("-".to_string(), |h| h.to_string()),
            chosen_ms,
            optimal
        );
    }

    // 5. Bandwidth scorecard.
    let routing = sim
        .stats()
        .fleet_mean_bps(&[TrafficClass::Routing], 60.0, 240.0);
    let probing = sim
        .stats()
        .fleet_mean_bps(&[TrafficClass::Probing], 60.0, 240.0);
    println!("\nper-node bandwidth (in+out): routing {routing:.0} bps, probing {probing:.0} bps");
    println!(
        "full-mesh routing at this size would cost ~{:.0} bps (theory)",
        allpairs_overlay::analysis::theory::ron_routing_bps(n as f64)
    );
}
