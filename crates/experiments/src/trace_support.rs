//! Causal-episode assembly shared by the convergence experiments.
//!
//! The fleet's per-node flight recorders ([`apor_telemetry::Tracer`])
//! hold the spans the protocol recorded live: suspicion windows,
//! confirms, gossip hops, view installs, remaps, reprobe bursts. This
//! module turns them into the exported artifacts:
//!
//! * pick the **richest episode** — the one whose live spans cover the
//!   most distinct convergence phases;
//! * synthesize the ground-truth markers only the experiment knows
//!   (the [`SpanKind::Episode`] root, the [`SpanKind::Failure`]
//!   instant, the [`SpanKind::RoutesRestored`] instant) on a dedicated
//!   experiment lane;
//! * decompose the measured recovery total into consecutive
//!   **phases** whose durations sum to the total *by construction*
//!   (each milestone is clamped to be monotone), for the
//!   `*_phases.csv` exports.
//!
//! See `docs/OBSERVABILITY.md` for the export schemas.

use apor_netsim::Simulator;
use apor_overlay::simnode::overlay_at;
use apor_telemetry::trace::{episode_root_span, Span, SpanKind};

/// The synthetic node id carrying experiment-synthesized spans. Real
/// nodes are small indices; keeping the synthesized root on its own
/// (episode, node) lane means it can never break the per-lane nesting
/// invariant the trace validator enforces.
pub const EXPERIMENT_NODE: u32 = u32::MAX;

/// Drain every node's flight recorder into one span list.
#[must_use]
pub fn fleet_spans(sim: &Simulator, n: usize) -> Vec<Span> {
    (0..n)
        .flat_map(|i| overlay_at(sim, i).tracer().recent())
        .collect()
}

/// The convergence phases a *live* (non-synthesized) span can witness.
const CORE_KINDS: [SpanKind; 7] = [
    SpanKind::Suspicion,
    SpanKind::Confirm,
    SpanKind::GossipHop,
    SpanKind::ViewInstall,
    SpanKind::Remap,
    SpanKind::Reprobe,
    SpanKind::RowImport,
];

/// The episode with the widest phase coverage: most distinct
/// [`CORE_KINDS`] present, ties broken by span count, then by the
/// smaller id (determinism). `None` when no span names an episode.
#[must_use]
pub fn richest_episode(spans: &[Span]) -> Option<u32> {
    let mut episodes: Vec<u32> = spans
        .iter()
        .filter(|s| s.episode != 0)
        .map(|s| s.episode)
        .collect();
    episodes.sort_unstable();
    episodes.dedup();
    episodes.into_iter().max_by_key(|&ep| {
        let mine = spans.iter().filter(|s| s.episode == ep);
        let kinds = CORE_KINDS
            .iter()
            .filter(|&&k| spans.iter().any(|s| s.episode == ep && s.kind == k))
            .count();
        // max_by_key keeps the *last* maximum; invert the id so ties
        // resolve to the smallest episode.
        (kinds, mine.count(), std::cmp::Reverse(ep))
    })
}

/// The exportable causal tree of `episode`: its live spans plus the
/// synthesized root (covering failure → restoration and every live
/// span), the failure instant and — when the experiment measured one —
/// the routes-restored instant, all on the experiment lane.
#[must_use]
pub fn assemble_episode(
    spans: &[Span],
    episode: u32,
    fail_s: f64,
    restored_s: Option<f64>,
) -> Vec<Span> {
    let mut out: Vec<Span> = spans
        .iter()
        .filter(|s| s.episode == episode)
        .copied()
        .collect();
    let mut start = fail_s;
    let mut end = restored_s.unwrap_or(fail_s);
    for s in &out {
        start = start.min(s.start_s);
        end = end.max(s.end_s);
    }
    let root = episode_root_span(episode);
    out.push(Span {
        id: root,
        parent: 0,
        episode,
        node: EXPERIMENT_NODE,
        kind: SpanKind::Episode,
        aux: episode >> 16,
        start_s: start,
        end_s: end,
    });
    out.push(Span {
        id: (1 << 63) | (1 << 62) | u64::from(episode),
        parent: root,
        episode,
        node: EXPERIMENT_NODE,
        kind: SpanKind::Failure,
        aux: 0,
        start_s: fail_s,
        end_s: fail_s,
    });
    if let Some(restored) = restored_s {
        out.push(Span {
            id: (1 << 63) | (1 << 61) | u64::from(episode),
            parent: root,
            episode,
            node: EXPERIMENT_NODE,
            kind: SpanKind::RoutesRestored,
            aux: 0,
            start_s: restored,
            end_s: restored,
        });
    }
    out
}

/// The distinct span kinds present in a list (for completeness
/// assertions and reports).
#[must_use]
pub fn kinds_present(spans: &[Span]) -> Vec<SpanKind> {
    let mut kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
    kinds.sort_unstable();
    kinds.dedup();
    kinds
}

/// The earliest start time of any span of one of `kinds` at or after
/// `after_s` — a recovery milestone extracted from the live record.
#[must_use]
pub fn first_span_at(spans: &[Span], kinds: &[SpanKind], after_s: f64) -> Option<f64> {
    spans
        .iter()
        .filter(|s| kinds.contains(&s.kind) && s.start_s >= after_s)
        .map(|s| s.start_s)
        .min_by(f64::total_cmp)
}

/// One phase of a recovery: a named `[start_s, end_s]` slice of the
/// interval between the triggering event and full recovery, in seconds
/// relative to the trigger.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Phase name (CSV `phase` column).
    pub name: &'static str,
    /// Start offset from the trigger, seconds.
    pub start_s: f64,
    /// End offset from the trigger, seconds.
    pub end_s: f64,
}

impl Phase {
    /// The phase's duration, seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// Decompose `[0, total_s]` into consecutive phases. Each `marks` entry
/// is a phase name plus the offset at which the phase *ends*; a missing
/// or out-of-order milestone collapses its phase to zero length rather
/// than breaking monotonicity, and the final phase always ends at
/// `total_s` — so the durations sum to `total_s` exactly, which is the
/// invariant the phase-breakdown CSV consumers (and the acceptance
/// gate) rely on.
#[must_use]
pub fn recovery_phases(
    marks: &[(&'static str, Option<f64>)],
    final_name: &'static str,
    total_s: f64,
) -> Vec<Phase> {
    let mut out = Vec::with_capacity(marks.len() + 1);
    let mut prev = 0.0;
    for &(name, at) in marks {
        let end = at.unwrap_or(prev).clamp(prev, total_s);
        out.push(Phase {
            name,
            start_s: prev,
            end_s: end,
        });
        prev = end;
    }
    out.push(Phase {
        name: final_name,
        start_s: prev,
        end_s: total_s,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apor_telemetry::trace::validate_chrome_trace;
    use apor_telemetry::{chrome_trace_json, Tracer};

    fn span(episode: u32, node: u32, kind: SpanKind, start_s: f64, end_s: f64) -> Span {
        let tracer = Tracer::new(node, 4);
        let id = tracer.record(kind, episode, 0, 0, start_s, end_s);
        Span {
            id,
            parent: 0,
            episode,
            node,
            kind,
            aux: 0,
            start_s,
            end_s,
        }
    }

    #[test]
    fn richest_episode_prefers_phase_coverage_over_span_count() {
        let mut spans = Vec::new();
        // Episode 7: many spans, one kind.
        for _ in 0..10 {
            spans.push(span(7, 1, SpanKind::GossipHop, 1.0, 1.0));
        }
        // Episode 3: three kinds.
        spans.push(span(3, 1, SpanKind::Suspicion, 1.0, 2.0));
        spans.push(span(3, 1, SpanKind::Confirm, 2.0, 2.0));
        spans.push(span(3, 2, SpanKind::ViewInstall, 2.5, 2.5));
        assert_eq!(richest_episode(&spans), Some(3));
        assert_eq!(richest_episode(&[]), None);
    }

    #[test]
    fn assembled_episode_validates_and_contains_the_markers() {
        let live = vec![
            span(9, 1, SpanKind::Suspicion, 2.0, 4.0),
            span(9, 1, SpanKind::Confirm, 4.0, 4.0),
            span(9, 2, SpanKind::GossipHop, 4.2, 4.2),
            span(9, 2, SpanKind::ViewInstall, 5.0, 5.0),
        ];
        let assembled = assemble_episode(&live, 9, 1.0, Some(8.0));
        let kinds = kinds_present(&assembled);
        for k in [
            SpanKind::Episode,
            SpanKind::Failure,
            SpanKind::Suspicion,
            SpanKind::Confirm,
            SpanKind::ViewInstall,
            SpanKind::RoutesRestored,
        ] {
            assert!(kinds.contains(&k), "missing {k:?}");
        }
        let root = assembled
            .iter()
            .find(|s| s.kind == SpanKind::Episode)
            .unwrap();
        assert_eq!(root.id, episode_root_span(9));
        assert_eq!(root.node, EXPERIMENT_NODE);
        assert!(root.start_s <= 1.0 && root.end_s >= 8.0);
        let stats = validate_chrome_trace(&chrome_trace_json(&assembled)).expect("valid export");
        assert_eq!(stats.spans, assembled.len());
        assert_eq!(stats.episodes, 1);
    }

    #[test]
    fn assembled_root_covers_live_spans_outside_the_markers() {
        // A live span ending after the restoration instant must not
        // escape the synthesized root.
        let live = vec![span(4, 1, SpanKind::SyncRound, 0.5, 9.5)];
        let assembled = assemble_episode(&live, 4, 1.0, Some(8.0));
        let root = assembled
            .iter()
            .find(|s| s.kind == SpanKind::Episode)
            .unwrap();
        assert_eq!((root.start_s, root.end_s), (0.5, 9.5));
        validate_chrome_trace(&chrome_trace_json(&assembled)).expect("valid export");
    }

    #[test]
    fn phases_sum_to_total_with_missing_and_unordered_milestones() {
        let phases = recovery_phases(
            &[
                ("contact", Some(2.0)),
                ("install", None),        // missing: zero-length
                ("agreement", Some(1.0)), // out of order: clamped
            ],
            "route_recovery",
            10.0,
        );
        assert_eq!(phases.len(), 4);
        let total: f64 = phases.iter().map(Phase::duration_s).sum();
        assert!((total - 10.0).abs() < 1e-12);
        for w in phases.windows(2) {
            assert!(
                (w[0].end_s - w[1].start_s).abs() < 1e-12,
                "gap between phases"
            );
        }
        assert_eq!(phases[1].duration_s(), 0.0);
        assert_eq!(phases[2].duration_s(), 0.0);
        assert_eq!(phases[3].end_s, 10.0);
    }

    #[test]
    fn first_span_at_respects_the_cutoff() {
        let spans = vec![
            span(1, 0, SpanKind::ViewInstall, 1.0, 1.0),
            span(1, 0, SpanKind::ViewInstall, 5.0, 5.0),
        ];
        assert_eq!(
            first_span_at(&spans, &[SpanKind::ViewInstall], 2.0),
            Some(5.0)
        );
        assert_eq!(first_span_at(&spans, &[SpanKind::ViewInstall], 6.0), None);
        assert_eq!(first_span_at(&spans, &[SpanKind::Remap], 0.0), None);
    }
}
