//! The failure-laden deployment run behind figures 8 and 10–14.
//!
//! The paper deployed 140 nodes on PlanetLab for 136 minutes and measured,
//! concurrently: per-node concurrent link failures (figure 8), per-node
//! routing bandwidth — mean and worst 1-minute window (figure 10), double
//! rendezvous failures (figure 11) and route freshness at 30-second
//! sampling (figures 12–14). We run the same measurement program against
//! the simulator: synthetic PlanetLab latencies plus a calibrated failure
//! schedule, with every node executing the full overlay stack.

use apor_analysis::{Cdf, FreshnessTracker};
use apor_netsim::{Simulator, SimulatorConfig, TrafficClass};
use apor_overlay::config::{Algorithm, NodeConfig};
use apor_overlay::simnode::{overlay_at, overlay_sim_config, populate};
use apor_quorum::NodeId;
use apor_topology::{FailureParams, FailureSchedule, PlanetLabParams, Topology};

/// Parameters of a deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentParams {
    /// Overlay size (paper: 140).
    pub n: usize,
    /// Run length in minutes (paper: 136).
    pub minutes: f64,
    /// Warm-up excluded from bandwidth/freshness statistics, seconds.
    pub warmup_s: f64,
    /// Master seed (topology, failures and simulation derive from it).
    pub seed: u64,
    /// Routing algorithm for all nodes.
    pub algorithm: Algorithm,
    /// Freshness sampling period (paper: 30 s; default 29 s). The
    /// default is deliberately co-prime with the 15 s / 30 s routing
    /// intervals: a 30 s grid is phase-locked to the routing ticks, so
    /// every sample of a pair sees the *same* point of the
    /// recommendation cycle and the measured "freshness" collapses to
    /// a per-pair phase constant (aliasing) instead of a draw from the
    /// actual freshness distribution.
    pub freshness_sample_s: f64,
    /// Failure-metric sampling period (paper: 1 minute).
    pub failure_sample_s: f64,
    /// Override the protocol configuration (ablations); `None` uses the
    /// algorithm's paper defaults.
    pub protocol_override: Option<apor_routing::ProtocolConfig>,
}

impl Default for DeploymentParams {
    fn default() -> Self {
        DeploymentParams {
            n: 140,
            minutes: 136.0,
            warmup_s: 180.0,
            seed: 0xDE9107,
            algorithm: Algorithm::Quorum,
            freshness_sample_s: 29.0,
            failure_sample_s: 60.0,
            protocol_override: None,
        }
    }
}

/// Everything the deployment-derived figures need.
#[derive(Debug)]
pub struct DeploymentData {
    /// Overlay size.
    pub n: usize,
    /// Run length, seconds.
    pub duration_s: f64,
    /// Warm-up excluded from statistics, seconds.
    pub warmup_s: f64,
    /// Per-node mean concurrent link failures (figure 8 "mean").
    pub mean_concurrent: Vec<f64>,
    /// Per-node max concurrent link failures (figure 8 "max").
    pub max_concurrent: Vec<usize>,
    /// Per-node mean routing bps, in+out (figure 10 "mean").
    pub mean_routing_bps: Vec<f64>,
    /// Per-node worst 1-minute-window routing bps (figure 10 "max").
    pub max_window_routing_bps: Vec<f64>,
    /// Per-node mean count of destinations under double rendezvous
    /// failure (figure 11 "mean").
    pub mean_double_failures: Vec<f64>,
    /// Per-node max of the same (figure 11 "max").
    pub max_double_failures: Vec<usize>,
    /// Route freshness samples for all pairs (figures 12–14).
    pub freshness: FreshnessTracker,
    /// Node index with the lowest mean concurrent failures (figure 13's
    /// "good connectivity" case study).
    pub well_connected: usize,
    /// Node index with the highest mean concurrent failures (figure 14's
    /// "bad connectivity" case study).
    pub poorly_connected: usize,
    /// Fleet-mean probing bps (sanity: ≈ 49.1·n).
    pub mean_probing_bps: f64,
}

/// Run the deployment.
#[must_use]
pub fn run(params: &DeploymentParams) -> DeploymentData {
    let n = params.n;
    let duration_s = params.minutes * 60.0;

    let topo = Topology::generate(&PlanetLabParams {
        n,
        seed: params.seed,
        ..Default::default()
    });
    let schedule = FailureSchedule::generate(&FailureParams {
        n,
        seed: params.seed ^ 0xFA11,
        duration_s: duration_s + 600.0,
        ..FailureParams::with_n(n)
    });
    let mut sim = Simulator::new(
        topo.latency,
        schedule,
        SimulatorConfig {
            seed: params.seed ^ 0x51,
            ..overlay_sim_config()
        },
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    let algorithm = params.algorithm;
    let protocol_override = params.protocol_override.clone();
    populate(&mut sim, n, 10.0, move |i| {
        let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), algorithm)
            .with_static_members(members.clone());
        if let Some(p) = &protocol_override {
            cfg.protocol = p.clone();
        }
        cfg
    });

    let mut freshness = FreshnessTracker::new(n);
    let mut conc_samples: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut double_samples: Vec<Vec<usize>> = vec![Vec::new(); n];

    let mut next_freshness = params.warmup_s;
    let mut next_failure = params.warmup_s;
    let mut t = 0.0;
    while t < duration_s {
        let step = (next_freshness.min(next_failure))
            .min(duration_s)
            .max(t + 1.0);
        sim.run_until(step);
        t = step;
        if t + 1e-9 >= next_freshness {
            next_freshness += params.freshness_sample_s;
            for src in 0..n {
                let node = overlay_at(&sim, src);
                for dst in 0..n {
                    if dst == src {
                        continue;
                    }
                    let age = node
                        .route_age(NodeId(dst as u16), t)
                        .unwrap_or(f64::INFINITY);
                    freshness.record(src, dst, age);
                }
            }
        }
        if t + 1e-9 >= next_failure {
            next_failure += params.failure_sample_s;
            for i in 0..n {
                let node = overlay_at(&sim, i);
                conc_samples[i].push(node.concurrent_link_failures());
                double_samples[i].push(node.double_rendezvous_failures(t));
            }
        }
    }

    let stats = sim.stats();
    let routing = [TrafficClass::Routing];
    let mean_routing_bps: Vec<f64> = (0..n)
        .map(|i| stats.mean_bps(i, &routing, params.warmup_s, duration_s))
        .collect();
    let max_window_routing_bps: Vec<f64> = (0..n)
        .map(|i| stats.max_bucket_bps(i, &routing, params.warmup_s, duration_s))
        .collect();
    let mean_probing_bps =
        stats.fleet_mean_bps(&[TrafficClass::Probing], params.warmup_s, duration_s);

    let mean_of = |v: &Vec<usize>| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<usize>() as f64 / v.len() as f64
        }
    };
    let mean_concurrent: Vec<f64> = conc_samples.iter().map(mean_of).collect();
    let max_concurrent: Vec<usize> = conc_samples
        .iter()
        .map(|v| v.iter().copied().max().unwrap_or(0))
        .collect();
    let mean_double_failures: Vec<f64> = double_samples.iter().map(mean_of).collect();
    let max_double_failures: Vec<usize> = double_samples
        .iter()
        .map(|v| v.iter().copied().max().unwrap_or(0))
        .collect();

    let well_connected = (0..n)
        .min_by(|&a, &b| mean_concurrent[a].partial_cmp(&mean_concurrent[b]).unwrap())
        .unwrap_or(0);
    let poorly_connected = (0..n)
        .max_by(|&a, &b| mean_concurrent[a].partial_cmp(&mean_concurrent[b]).unwrap())
        .unwrap_or(0);

    DeploymentData {
        n,
        duration_s,
        warmup_s: params.warmup_s,
        mean_concurrent,
        max_concurrent,
        mean_routing_bps,
        max_window_routing_bps,
        mean_double_failures,
        max_double_failures,
        freshness,
        well_connected,
        poorly_connected,
        mean_probing_bps,
    }
}

impl DeploymentData {
    /// Figure 8's CDFs: `(mean, max)` concurrent link failures per node.
    #[must_use]
    pub fn fig8_cdfs(&self) -> (Cdf, Cdf) {
        (
            Cdf::new(self.mean_concurrent.clone()),
            Cdf::new(self.max_concurrent.iter().map(|&x| x as f64).collect()),
        )
    }

    /// Figure 10's CDFs: `(mean, max 1-min window)` routing bps per node.
    #[must_use]
    pub fn fig10_cdfs(&self) -> (Cdf, Cdf) {
        (
            Cdf::new(self.mean_routing_bps.clone()),
            Cdf::new(self.max_window_routing_bps.clone()),
        )
    }

    /// Figure 11's CDFs: `(mean, max)` double rendezvous failures per node.
    #[must_use]
    pub fn fig11_cdfs(&self) -> (Cdf, Cdf) {
        (
            Cdf::new(self.mean_double_failures.clone()),
            Cdf::new(self.max_double_failures.iter().map(|&x| x as f64).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature deployment exercising the whole pipeline.
    fn mini() -> DeploymentData {
        run(&DeploymentParams {
            n: 25,
            minutes: 8.0,
            warmup_s: 120.0,
            seed: 7,
            ..Default::default()
        })
    }

    #[test]
    fn deployment_pipeline_produces_consistent_data() {
        let d = mini();
        assert_eq!(d.n, 25);
        // Bandwidth: probing ≈ 49.1·n within 25 %; routing positive and
        // below full-mesh theory.
        let probing_theory = 49.1 * 25.0;
        assert!(
            (d.mean_probing_bps - probing_theory).abs() / probing_theory < 0.30,
            "probing {} vs {}",
            d.mean_probing_bps,
            probing_theory
        );
        let mean_routing: f64 = d.mean_routing_bps.iter().sum::<f64>() / 25.0;
        assert!(mean_routing > 100.0, "routing {mean_routing}");
        // Freshness was sampled for many pairs.
        let pairs = d.freshness.all_pairs();
        assert!(pairs.len() > 200, "only {} pairs sampled", pairs.len());
        // Median freshness of a typical pair is below 2 routing intervals
        // despite failures.
        let medians = Cdf::new(pairs.iter().map(|(_, s)| s.median).collect());
        assert!(
            medians.median().unwrap() <= 30.0,
            "median-of-medians {}",
            medians.median().unwrap()
        );
        // Well/poorly connected selection is consistent.
        assert!(d.mean_concurrent[d.well_connected] <= d.mean_concurrent[d.poorly_connected]);
    }

    #[test]
    fn failures_are_observed_by_the_overlay() {
        let d = mini();
        // The calibrated schedule must cause the probers to see failures.
        let total_mean: f64 = d.mean_concurrent.iter().sum();
        assert!(total_mean > 0.0, "no failures observed at all");
        let max = d.max_concurrent.iter().max().copied().unwrap_or(0);
        assert!(max >= 2, "worst node saw only {max} concurrent failures");
    }
}
