//! Figure 9: per-node routing traffic vs overlay size, emulation + theory.
//!
//! "Comparison of average per-node routing traffic (incoming and
//! outgoing), for 5 minutes of running an emulation with no node or link
//! failures." Two measured series (RON full-mesh and the quorum
//! algorithm) plus the paper's closed-form curves. What must hold:
//! measured ≈ theory for both algorithms, quorum ∝ n√n vs RON ∝ n², and
//! the crossover in the tens of nodes.

use apor_analysis::{theory, write_csv, Table};
use apor_netsim::{Simulator, SimulatorConfig, TrafficClass};
use apor_overlay::config::{Algorithm, NodeConfig};
use apor_overlay::simnode::{overlay_at, overlay_sim_config, populate};
use apor_quorum::NodeId;
use apor_telemetry::Snapshot;
use apor_topology::{FailureParams, PlanetLabParams, Topology};
use serde::Serialize;

/// Parameters for the figure 9 sweep.
#[derive(Debug, Clone)]
pub struct Fig9Params {
    /// Overlay sizes to emulate (paper: up to ~200).
    pub sizes: Vec<usize>,
    /// Emulated run length, seconds (paper: 5 minutes).
    pub duration_s: f64,
    /// Warm-up excluded from the average, seconds.
    pub warmup_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Fig9Params {
    fn default() -> Self {
        Fig9Params {
            sizes: vec![9, 25, 49, 81, 121, 140, 169, 196],
            duration_s: 300.0,
            warmup_s: 60.0,
            seed: 0xF169,
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Point {
    /// Overlay size.
    pub n: usize,
    /// Measured mean per-node routing bps (in + out).
    pub measured_bps: f64,
    /// The paper's closed-form prediction.
    pub theory_bps: f64,
    /// Fleet telemetry aggregated over all nodes (probe RTTs, round-two
    /// latency, queue depth, …). Exported as `fig9_telemetry.json`, not
    /// part of the CSV.
    #[serde(skip)]
    pub telemetry: Snapshot,
}

/// The sweep output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Result {
    /// Full-mesh (RON) series.
    pub ron: Vec<Fig9Point>,
    /// Quorum series.
    pub quorum: Vec<Fig9Point>,
}

fn measure(n: usize, algorithm: Algorithm, params: &Fig9Params) -> (f64, Snapshot) {
    let topo = Topology::generate(&PlanetLabParams {
        n,
        seed: params.seed ^ n as u64,
        ..Default::default()
    });
    let mut sim = Simulator::new(
        topo.latency,
        FailureParams::none(n, params.duration_s + 60.0),
        SimulatorConfig {
            seed: params.seed,
            ..overlay_sim_config()
        },
    );
    let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
    populate(&mut sim, n, 10.0, move |i| {
        NodeConfig::new(NodeId(i as u16), NodeId(0), algorithm).with_static_members(members.clone())
    });
    sim.run_until(params.duration_s);
    let bps =
        sim.stats()
            .fleet_mean_bps(&[TrafficClass::Routing], params.warmup_s, params.duration_s);
    let mut fleet = sim.telemetry_snapshot();
    for i in 0..n {
        fleet.merge(&overlay_at(&sim, i).telemetry().snapshot());
    }
    (bps, crate::aggregate_fleet(&fleet))
}

/// Run the sweep.
#[must_use]
pub fn run(params: &Fig9Params) -> Fig9Result {
    let mut ron = Vec::new();
    let mut quorum = Vec::new();
    for &n in &params.sizes {
        let (measured_bps, telemetry) = measure(n, Algorithm::FullMesh, params);
        ron.push(Fig9Point {
            n,
            measured_bps,
            theory_bps: theory::ron_routing_bps(n as f64),
            telemetry,
        });
        let (measured_bps, telemetry) = measure(n, Algorithm::Quorum, params);
        quorum.push(Fig9Point {
            n,
            measured_bps,
            theory_bps: theory::quorum_routing_bps(n as f64),
            telemetry,
        });
    }
    Fig9Result { ron, quorum }
}

/// Run, print and write `fig9.csv` plus the per-arm aggregated fleet
/// telemetry (`fig9_telemetry.json`).
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(params: &Fig9Params) -> std::io::Result<Fig9Result> {
    let r = run(params);
    let mut table = Table::new(&[
        "n",
        "RON measured (Kbps)",
        "RON theory",
        "quorum measured (Kbps)",
        "quorum theory",
        "ratio",
    ]);
    let mut rows = Vec::new();
    for (a, b) in r.ron.iter().zip(&r.quorum) {
        table.row(vec![
            a.n.to_string(),
            format!("{:.1}", a.measured_bps / 1000.0),
            format!("{:.1}", a.theory_bps / 1000.0),
            format!("{:.1}", b.measured_bps / 1000.0),
            format!("{:.1}", b.theory_bps / 1000.0),
            format!("{:.2}", a.measured_bps / b.measured_bps.max(1.0)),
        ]);
        rows.push(vec![
            a.n.to_string(),
            format!("{:.1}", a.measured_bps),
            format!("{:.1}", a.theory_bps),
            format!("{:.1}", b.measured_bps),
            format!("{:.1}", b.theory_bps),
        ]);
    }
    println!("Figure 9 — per-node routing traffic (in+out), no failures");
    println!("{}", table.render());
    println!(
        "theoretical crossover: n = {} (quorum cheaper beyond)",
        theory::crossover_n()
    );
    write_csv(
        crate::results_path("fig9.csv"),
        &[
            "n",
            "ron_bps",
            "ron_theory_bps",
            "quorum_bps",
            "quorum_theory_bps",
        ],
        &rows,
    )?;

    // The aggregated fleet telemetry, one JSON object per (algorithm, n).
    let mut json = String::from("{\n  \"arms\": [");
    let arms = r
        .ron
        .iter()
        .map(|p| ("ron", p))
        .chain(r.quorum.iter().map(|p| ("quorum", p)));
    for (k, (algorithm, p)) in arms.enumerate() {
        if k > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "\n    {{\"algorithm\": \"{algorithm}\", \"n\": {}, \"telemetry\": {}}}",
            p.n,
            p.telemetry.to_json().trim_end()
        ));
    }
    json.push_str("\n  ]\n}\n");
    let json_path = crate::results_path("fig9_telemetry.json");
    std::fs::write(&json_path, json)?;
    println!("fleet telemetry -> {}", json_path.display());
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_tracks_theory() {
        let r = run(&Fig9Params {
            sizes: vec![25, 81],
            duration_s: 240.0,
            warmup_s: 60.0,
            seed: 3,
        });
        for p in r.ron.iter().chain(&r.quorum) {
            let rel = (p.measured_bps - p.theory_bps).abs() / p.theory_bps;
            assert!(
                rel < 0.25,
                "n={}: measured {} vs theory {} (rel {rel})",
                p.n,
                p.measured_bps,
                p.theory_bps
            );
        }
        // At n=81 quorum must already be clearly cheaper.
        let ron81 = r.ron.iter().find(|p| p.n == 81).unwrap();
        let q81 = r.quorum.iter().find(|p| p.n == 81).unwrap();
        assert!(q81.measured_bps < 0.8 * ron81.measured_bps);
        // At n=25 (below crossover) quorum is allowed to be costlier.
    }
}
