//! Figure 1: the one-hop detour study.
//!
//! "Comparison of RTT for pairs of PlanetLab hosts whose point-to-point
//! latencies were larger than 400 ms." Four curves over those pairs:
//! direct latency, best one-hop, and best one-hop after excluding the top
//! 3 % / 50 % of intermediaries per pair. The paper's punchlines, which we
//! check quantitatively:
//!
//! * at 400 ms, the best one-hop rescues ≥ 45 % of high-latency pairs
//!   (vs 0 % for direct, by construction);
//! * excluding just the top 3 % of one-hops loses a large share of that
//!   improvement (good detours are few and specific);
//! * excluding the top 50 % leaves almost nothing — a random intermediary
//!   is useless for latency.

use apor_analysis::{write_csv, Cdf, Table};
use apor_routing::onehop;
use apor_topology::{PlanetLabParams, Topology};
use serde::Serialize;

/// Parameters for the figure 1 experiment.
#[derive(Debug, Clone)]
pub struct Fig1Params {
    /// Number of hosts (paper: 359).
    pub n: usize,
    /// Topology seed.
    pub seed: u64,
    /// High-latency threshold, ms (paper: 400).
    pub threshold_ms: f64,
    /// Exclusion fractions to evaluate (paper: 3 % and 50 %).
    pub exclusions: Vec<f64>,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Fig1Params {
            n: 359,
            seed: 0xF161,
            threshold_ms: 400.0,
            exclusions: vec![0.03, 0.50],
        }
    }
}

/// One evaluated curve.
#[derive(Debug, Clone, Serialize)]
pub struct Curve {
    /// Curve label as in the paper's legend.
    pub label: String,
    /// Fraction of high-latency pairs with resulting RTT ≤ 400 ms.
    pub frac_below_400: f64,
    /// Median resulting RTT, ms.
    pub median_ms: f64,
    /// The CDF grid `(latency ms, fraction of paths ≤)`.
    #[serde(skip)]
    pub grid: Vec<(f64, f64)>,
}

/// The experiment output.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1Result {
    /// Hosts evaluated.
    pub n: usize,
    /// Number of high-latency (> threshold) ordered pairs.
    pub high_latency_pairs: usize,
    /// All curves: direct, best one-hop, one per exclusion fraction.
    pub curves: Vec<Curve>,
}

/// Run the experiment.
#[must_use]
pub fn run(params: &Fig1Params) -> Fig1Result {
    let topo = Topology::generate(&PlanetLabParams {
        n: params.n,
        seed: params.seed,
        ..Default::default()
    });
    let m = &topo.latency;
    let pairs = onehop::high_latency_pairs(m, params.threshold_ms);

    let mut curves = Vec::new();
    let mut push_curve = |label: String, samples: Vec<f64>| {
        let cdf = Cdf::new(samples);
        curves.push(Curve {
            label,
            frac_below_400: cdf.fraction_at_most(params.threshold_ms),
            median_ms: cdf.median().unwrap_or(f64::NAN),
            grid: cdf.on_grid(150.0, 1000.0, 120),
        });
    };

    // Direct point-to-point latencies.
    push_curve(
        "point-to-point".to_string(),
        pairs.iter().map(|&(i, j)| m.rtt(i, j)).collect(),
    );
    // Best one-hop.
    push_curve(
        "best-1hop".to_string(),
        pairs
            .iter()
            .map(|&(i, j)| {
                onehop::effective_latency(m, i, j, onehop::best_one_hop_excluding_top(m, i, j, 0.0))
            })
            .collect(),
    );
    // Exclusion curves.
    for &frac in &params.exclusions {
        push_curve(
            format!("excluding-top-{:.0}%", frac * 100.0),
            pairs
                .iter()
                .map(|&(i, j)| {
                    onehop::effective_latency(
                        m,
                        i,
                        j,
                        onehop::best_one_hop_excluding_top(m, i, j, frac),
                    )
                })
                .collect(),
        );
    }

    Fig1Result {
        n: params.n,
        high_latency_pairs: pairs.len(),
        curves,
    }
}

/// Run, print a summary table and write `fig1.csv`.
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(params: &Fig1Params) -> std::io::Result<Fig1Result> {
    let r = run(params);
    let mut table = Table::new(&["curve", "frac ≤ 400ms", "median ms"]);
    for c in &r.curves {
        table.row(vec![
            c.label.clone(),
            format!("{:.3}", c.frac_below_400),
            format!("{:.0}", c.median_ms),
        ]);
    }
    println!(
        "Figure 1 — {} hosts, {} high-latency ordered pairs (> 400 ms)",
        r.n, r.high_latency_pairs
    );
    println!("{}", table.render());

    // CSV: one row per grid x, one column per curve.
    let mut rows = Vec::new();
    let grid_len = r.curves[0].grid.len();
    for gi in 0..grid_len {
        let mut row = vec![format!("{:.1}", r.curves[0].grid[gi].0)];
        for c in &r.curves {
            row.push(format!("{:.5}", c.grid[gi].1));
        }
        rows.push(row);
    }
    let mut header = vec!["latency_ms"];
    let labels: Vec<String> = r.curves.iter().map(|c| c.label.clone()).collect();
    header.extend(labels.iter().map(String::as_str));
    write_csv(crate::results_path("fig1.csv"), &header, &rows)?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fig1Result {
        run(&Fig1Params {
            n: 180,
            ..Default::default()
        })
    }

    #[test]
    fn qualitative_shape_matches_paper() {
        let r = small();
        assert!(r.high_latency_pairs > 50, "too few high-latency pairs");
        let direct = &r.curves[0];
        let best = &r.curves[1];
        let excl3 = &r.curves[2];
        let excl50 = &r.curves[3];
        // Direct is 0 below threshold by construction.
        assert_eq!(direct.frac_below_400, 0.0);
        // Best one-hop rescues a large fraction (paper: ≥ 45 %).
        assert!(best.frac_below_400 >= 0.40, "{}", best.frac_below_400);
        // Exclusions strictly degrade, in order.
        assert!(excl3.frac_below_400 < best.frac_below_400);
        assert!(excl50.frac_below_400 <= excl3.frac_below_400);
        // Excluding half the intermediaries leaves very little.
        assert!(excl50.frac_below_400 < 0.25, "{}", excl50.frac_below_400);
        // Medians order the same way.
        assert!(best.median_ms <= excl3.median_ms);
        assert!(excl3.median_ms <= excl50.median_ms + 1e-9);
    }

    #[test]
    fn deterministic() {
        let p = Fig1Params {
            n: 120,
            ..Default::default()
        };
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a.high_latency_pairs, b.high_latency_pairs);
        assert_eq!(a.curves[1].frac_below_400, b.curves[1].frac_below_400);
    }
}
