//! Metric ablations for the design choices DESIGN.md calls out.
//!
//! Each ablation runs the miniature deployment twice — once with the
//! paper's choice, once with the variant — and reports the bandwidth /
//! freshness / coverage consequences:
//!
//! 1. **Routing interval** (15 s vs 30 s for the quorum system): the paper
//!    halves the interval to compensate for the extra routing round;
//!    the cost is ~2× routing bandwidth, the benefit ~2× fresher routes.
//! 2. **Recommendation format** (4-byte compact vs 6-byte with-cost):
//!    footnote-9 territory — how much bandwidth the compact encoding buys.
//! 3. **Staleness window** (3·r vs 1·r accepted measurement age): the
//!    paper uses 3 routing intervals "to provide extra redundancy in case
//!    of dropped link-state messages"; a tight window loses coverage
//!    under loss.

use crate::deployment::{self, DeploymentParams};
use apor_analysis::{write_csv, Cdf, Table};
use apor_linkstate::RecFormat;
use apor_overlay::config::Algorithm;
use apor_routing::ProtocolConfig;
use serde::Serialize;

/// Parameters shared by all ablations.
#[derive(Debug, Clone)]
pub struct AblationParams {
    /// Overlay size.
    pub n: usize,
    /// Run length, minutes.
    pub minutes: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for AblationParams {
    fn default() -> Self {
        AblationParams {
            n: 49,
            minutes: 20.0,
            seed: 0xAB1A,
        }
    }
}

/// Outcome of one ablation arm.
#[derive(Debug, Clone, Serialize)]
pub struct AblationArm {
    /// Which ablation and arm this is, e.g. `interval/r=15`.
    pub label: String,
    /// Fleet-mean routing bandwidth, bps.
    pub routing_bps: f64,
    /// Median (over pairs) of the median route freshness, seconds.
    pub median_freshness_s: f64,
    /// 97th percentile over pairs of the p97 freshness, seconds.
    pub p97_freshness_s: f64,
    /// Fraction of (src, dst, sample) observations with *no* routing
    /// information at all.
    pub no_route_fraction: f64,
}

fn run_arm(label: &str, params: &AblationParams, protocol: ProtocolConfig) -> AblationArm {
    let data = deployment::run(&DeploymentParams {
        n: params.n,
        minutes: params.minutes,
        warmup_s: 180.0,
        seed: params.seed,
        algorithm: Algorithm::Quorum,
        protocol_override: Some(protocol),
        ..Default::default()
    });
    let pairs = data.freshness.all_pairs();
    let medians = Cdf::new(pairs.iter().map(|(_, s)| s.median).collect());
    let p97s = Cdf::new(pairs.iter().map(|(_, s)| s.p97).collect());
    // "No route" fraction: average of never_fraction over sampled pairs.
    let n = data.n;
    let mut never = 0.0;
    let mut count = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s != d {
                never += data.freshness.never_fraction(s, d);
                count += 1.0;
            }
        }
    }
    AblationArm {
        label: label.to_string(),
        routing_bps: data.mean_routing_bps.iter().sum::<f64>() / n as f64,
        median_freshness_s: medians.quantile(0.5),
        p97_freshness_s: p97s.quantile(0.97),
        no_route_fraction: never / count,
    }
}

/// Run all ablations.
#[must_use]
pub fn run(params: &AblationParams) -> Vec<AblationArm> {
    let mut arms = Vec::new();

    // 1. Routing interval.
    arms.push(run_arm(
        "interval/r=15s (paper)",
        params,
        ProtocolConfig::quorum(),
    ));
    let mut r30 = ProtocolConfig::quorum();
    r30.routing_interval_s = 30.0;
    arms.push(run_arm("interval/r=30s", params, r30));

    // 2. Recommendation wire format.
    let mut with_cost = ProtocolConfig::quorum();
    with_cost.rec_format = RecFormat::WithCost;
    arms.push(run_arm("rec-format/with-cost", params, with_cost));

    // 3. Staleness window.
    let mut tight = ProtocolConfig::quorum();
    tight.staleness_intervals = 1.0;
    arms.push(run_arm("staleness/1r", params, tight));

    arms
}

/// Run, print and write `ablations.csv`.
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(params: &AblationParams) -> std::io::Result<Vec<AblationArm>> {
    let arms = run(params);
    let mut t = Table::new(&[
        "ablation arm",
        "routing Kbps",
        "median freshness",
        "p97 freshness",
        "no-route frac",
    ]);
    let mut csv = Vec::new();
    for a in &arms {
        t.row(vec![
            a.label.clone(),
            format!("{:.2}", a.routing_bps / 1000.0),
            format!("{:.1}s", a.median_freshness_s),
            format!("{:.1}s", a.p97_freshness_s),
            format!("{:.4}", a.no_route_fraction),
        ]);
        csv.push(vec![
            a.label.clone(),
            format!("{:.1}", a.routing_bps),
            format!("{:.2}", a.median_freshness_s),
            format!("{:.2}", a.p97_freshness_s),
            format!("{:.5}", a.no_route_fraction),
        ]);
    }
    println!(
        "Ablations — n={}, {} min deployment with failures",
        params.n, params.minutes
    );
    println!("{}", t.render());
    write_csv(
        crate::results_path("ablations.csv"),
        &[
            "arm",
            "routing_bps",
            "median_freshness_s",
            "p97_freshness_s",
            "no_route_fraction",
        ],
        &csv,
    )?;
    Ok(arms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_directions_are_sane() {
        let arms = run(&AblationParams {
            n: 25,
            minutes: 10.0,
            seed: 11,
        });
        let by_label = |needle: &str| {
            arms.iter()
                .find(|a| a.label.contains(needle))
                .unwrap_or_else(|| panic!("missing arm {needle}"))
        };
        let r15 = by_label("r=15");
        let r30 = by_label("r=30");
        // Halving the interval ~doubles routing bandwidth…
        assert!(
            r15.routing_bps > 1.5 * r30.routing_bps,
            "r15 {} vs r30 {}",
            r15.routing_bps,
            r30.routing_bps
        );
        // …and buys clearly fresher routes.
        assert!(
            r15.median_freshness_s < r30.median_freshness_s,
            "freshness {} vs {}",
            r15.median_freshness_s,
            r30.median_freshness_s
        );
        // WithCost strictly costs more bandwidth than compact.
        let wc = by_label("with-cost");
        assert!(wc.routing_bps > r15.routing_bps);
        // The relative overhead is small (only round-2 grows).
        assert!(wc.routing_bps < 1.25 * r15.routing_bps);
    }
}
