//! Partition-healing study (beyond the paper): can the overlay's
//! membership plane re-merge after a network split, and how fast?
//!
//! A minority of the overlay is cut off for a while — long enough that
//! the majority confirms every minority node faulty and installs views
//! without them. (The minority's verdicts about the majority lag by
//! design: as its probes starve, its Lifeguard local-health multipliers
//! rise and slow its own judgments — the adaptive-suspicion half of
//! this PR working as intended.) Once a side's ledger marks the other
//! dead, dead members leave the probe rotation, so after the heal no
//! probe (and no piggyback) crosses the healed boundary from that side
//! again; with both sides fully split the divorce is permanent, and
//! even a partial split reconverges only through slow incidental
//! echoes.
//!
//! Anti-entropy ([`apor_membership::AntiEntropyConfig`]) fixes exactly
//! this: the periodic push-pull full-ledger sync picks partners among
//! *all* known members, dead or alive, so sync frames cross the healed
//! boundary, death verdicts reach the nodes they are about, those nodes
//! refute with bumped incarnations, and the refutations mix through
//! random pairwise syncs in `O(log n)` rounds.
//!
//! The experiment partitions a [`PartitionParams::minority`]-node
//! minority out of an `n`-node overlay for
//! [`PartitionParams::partition_s`] seconds and measures, from the
//! moment of the heal, how long until **every** node again holds the
//! identical full view (same version, same `n` members — the
//! quorum-grid invariant), in seconds and in SWIM protocol periods.
//! Both arms (anti-entropy on / off) run from the same master seed and
//! land in `results/partition.csv`.

use crate::trace_support::{
    assemble_episode, first_span_at, fleet_spans, recovery_phases, richest_episode, Phase,
};
use apor_analysis::{write_csv, Table};
use apor_membership::{AntiEntropyConfig, SwimConfig};
use apor_netsim::{Simulator, TrafficClass};
use apor_overlay::config::{Algorithm, NodeConfig};
use apor_overlay::membership::MembershipView;
use apor_overlay::simnode::{overlay_at, overlay_sim_config, populate};
use apor_quorum::NodeId;
use apor_telemetry::trace::{Span, SpanKind};
use apor_telemetry::Snapshot;
use apor_topology::{FailureParams, FailureSchedule, LatencyMatrix};
use serde::Serialize;

/// Flight-recorder capacity per node in the traced arms: deep enough
/// to hold a whole partition incident at n=32 (suspicions, wavefront,
/// installs, remaps) without wrapping before the heal is measured.
const TRACE_CAPACITY: usize = 1024;

/// Parameters of the partition study.
#[derive(Debug, Clone)]
pub struct PartitionParams {
    /// Overlay size.
    pub n: usize,
    /// Size of the partitioned minority (the highest-numbered nodes).
    pub minority: usize,
    /// When the partition starts, seconds (leaves time to converge).
    pub partition_at_s: f64,
    /// Partition duration, seconds (must exceed the detection budget so
    /// both sides confirm the other faulty).
    pub partition_s: f64,
    /// How long after the heal the run keeps sampling, seconds.
    pub horizon_s: f64,
    /// SWIM parameters; each arm overrides `anti_entropy.enabled`.
    pub swim: SwimConfig,
    /// Uniform mesh RTT, ms.
    pub rtt_ms: f64,
    /// Master seed: the whole study is a pure function of it.
    pub seed: u64,
}

impl Default for PartitionParams {
    fn default() -> Self {
        PartitionParams {
            n: 32,
            minority: 5,
            partition_at_s: 60.0,
            partition_s: 60.0,
            horizon_s: 180.0,
            swim: SwimConfig {
                // Sync once per protocol period: the experiment is
                // about reconvergence speed, and O(n)-byte frames at
                // n=32 are far below the probing budget.
                anti_entropy: AntiEntropyConfig {
                    enabled: true,
                    sync_period_s: 2.0,
                    ..AntiEntropyConfig::default()
                },
                ..SwimConfig::default()
            },
            rtt_ms: 40.0,
            seed: 0x9A27,
        }
    }
}

/// One arm's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionOutcome {
    /// Was the push-pull anti-entropy sync enabled?
    pub anti_entropy: bool,
    /// Did every majority node install a view excluding the entire
    /// minority while partitioned — the precondition that makes healing
    /// non-trivial? (The minority's reverse verdicts are deliberately
    /// slowed by local health as its probes starve.)
    pub split_confirmed: bool,
    /// Seconds from the heal until all `n` views are identical and
    /// full again; `None` when never within the horizon.
    pub reconverge_s: Option<f64>,
    /// [`PartitionOutcome::reconverge_s`] in SWIM protocol periods.
    pub reconverge_periods: Option<f64>,
    /// Seconds from the heal until the *routing plane* recovers too:
    /// every cross-boundary pair (majority ↔ minority, both
    /// directions) again has a usable route. Strictly after membership
    /// reconvergence — the healed view must be installed, the probers
    /// must re-mark the cross links alive, and the quorum exchange must
    /// warm up. `None` when never within the horizon.
    pub routes_restored_s: Option<f64>,
    /// All views identical and full at the end of the run?
    pub final_views_agree: bool,
    /// Fleet-mean per-node membership traffic over the whole run, bps
    /// (the price of the sync frames).
    pub membership_bps: f64,
    /// Total anti-entropy transfers skipped fleet-wide by the
    /// version-digest short-circuit (0 with anti-entropy off).
    pub sync_skips: u64,
    /// Total full-ledger pushes actually sent fleet-wide.
    pub sync_full: u64,
    /// Round trips removed fleet-wide by the digest-mismatch piggyback
    /// (the responder ships its first ledger chunk on the mismatch echo
    /// instead of waiting to be pulled).
    pub sync_piggyback_saved: u64,
    /// The merged fleet telemetry at the end of the arm: every node's
    /// registry plus the netsim per-node packet accounting. Not part of
    /// the CSV — exported as `partition_telemetry.json`.
    #[serde(skip)]
    pub telemetry: Snapshot,
    /// Every span the fleet's flight recorders held at the end of the
    /// arm (the raw causal record; feeds the dump-on-failure hook).
    #[serde(skip)]
    pub spans: Vec<Span>,
    /// The richest causal episode of the incident, assembled for the
    /// Chrome-trace export (`partition_trace.json`): live spans plus
    /// the synthesized root / failure / routes-restored markers.
    #[serde(skip)]
    pub episode: Vec<Span>,
    /// The heal→routes-restored interval decomposed into consecutive
    /// phases (`partition_phases.csv`); empty when routes were never
    /// restored. Durations sum to `routes_restored_s` by construction.
    #[serde(skip)]
    pub phases: Vec<Phase>,
}

/// The full study output.
#[derive(Debug, Clone, Serialize)]
pub struct PartitionResult {
    /// One outcome per arm, anti-entropy on first.
    pub outcomes: Vec<PartitionOutcome>,
    /// Protocol period used (for reading the period columns).
    pub period_s: f64,
}

/// Do all `n` nodes hold identical views containing all `n` members?
fn reconverged(sim: &Simulator, n: usize) -> bool {
    let mut reference: Option<&MembershipView> = None;
    for i in 0..n {
        let Some(view) = overlay_at(sim, i).view() else {
            return false;
        };
        if view.len() != n {
            return false;
        }
        match reference {
            None => reference = Some(view),
            Some(r) if r == view => {}
            Some(_) => return false,
        }
    }
    true
}

/// During the partition: does every majority node hold a view
/// containing exactly the majority?
fn split_views_installed(sim: &Simulator, n: usize, minority: usize) -> bool {
    let cut = n - minority;
    (0..cut).all(|i| {
        let Some(view) = overlay_at(sim, i).view() else {
            return false;
        };
        (0..n).all(|j| view.contains(NodeId(j as u16)) == (j < cut))
    })
}

/// After the heal: does every cross-boundary pair have a route again,
/// in both directions? (The routing-plane recovery criterion — view
/// healing alone does not move packets.)
fn cross_routes_restored(sim: &Simulator, n: usize, minority: usize, now: f64) -> bool {
    let cut = n - minority;
    (0..cut).all(|i| {
        (cut..n).all(|j| {
            overlay_at(sim, i).best_hop(NodeId(j as u16), now).is_some()
                && overlay_at(sim, j).best_hop(NodeId(i as u16), now).is_some()
        })
    })
}

/// Fleet-total anti-entropy accounting: digest skips, full pushes,
/// piggyback-saved round trips.
fn fleet_sync_stats(sim: &Simulator, n: usize) -> (u64, u64, u64) {
    (0..n).fold((0, 0, 0), |(skips, full, saved), i| {
        let s = overlay_at(sim, i)
            .swim()
            .map(apor_membership::Swim::sync_stats)
            .unwrap_or_default();
        (
            skips + s.digest_skips,
            full + s.full_pushes,
            saved + s.piggyback_saved,
        )
    })
}

/// The whole fleet's telemetry in one snapshot: each overlay node's
/// registry (membership, routing, linkstate) merged with the netsim
/// per-node packet accounting.
fn fleet_telemetry(sim: &Simulator, n: usize) -> Snapshot {
    let mut snap = sim.telemetry_snapshot();
    for i in 0..n {
        snap.merge(&overlay_at(sim, i).telemetry().snapshot());
    }
    snap
}

/// Run one arm of the study.
#[must_use]
pub fn run_arm(params: &PartitionParams, anti_entropy: bool) -> PartitionOutcome {
    let n = params.n;
    let minority: Vec<usize> = (n - params.minority..n).collect();
    let heal_at = params.partition_at_s + params.partition_s;

    let mut failure = FailureParams::with_n(n);
    failure.seed = params.seed ^ 0xFA11;
    failure.median_concurrent = 1e-12; // the partition is the only failure
    failure.duration_s = heal_at + params.horizon_s + 60.0;
    let failure = failure.with_partition(&minority, params.partition_at_s, heal_at);

    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, params.rtt_ms),
        FailureSchedule::generate(&failure),
        apor_netsim::SimulatorConfig {
            seed: params.seed,
            ..overlay_sim_config()
        },
    );
    populate(&mut sim, n, 5.0, {
        let params = params.clone();
        move |i| {
            let members: Vec<NodeId> = (0..params.n as u16).map(NodeId).collect();
            let mut swim = params.swim.clone();
            swim.anti_entropy.enabled = anti_entropy;
            NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
                .with_static_members(members)
                .with_swim_config(swim)
                .with_tracing(TRACE_CAPACITY)
        }
    });

    // Let the split be confirmed, then heal.
    sim.run_until(heal_at);
    let split_confirmed = split_views_installed(&sim, n, params.minority);

    // Sample twice per second until both the membership plane and the
    // routing plane have recovered, or the horizon runs out.
    let mut reconverge_s = None;
    let mut routes_restored_s = None;
    let mut t = heal_at;
    let end = heal_at + params.horizon_s;
    while t < end {
        t += 0.5;
        sim.run_until(t);
        if reconverge_s.is_none() && reconverged(&sim, n) {
            reconverge_s = Some(t - heal_at);
        }
        // Routes can only be globally restored once everyone holds the
        // healed view (cross entries need matching grid indices).
        if reconverge_s.is_some()
            && routes_restored_s.is_none()
            && cross_routes_restored(&sim, n, params.minority, t)
        {
            routes_restored_s = Some(t - heal_at);
        }
        if reconverge_s.is_some() && routes_restored_s.is_some() {
            break;
        }
    }
    sim.run_until(end);
    let membership_bps = sim
        .stats()
        .fleet_mean_bps(&[TrafficClass::Membership], 30.0, end);
    let (sync_skips, sync_full, sync_piggyback_saved) = fleet_sync_stats(&sim, n);

    // The causal record: drain every flight recorder, assemble the
    // richest episode of the incident (synthesizing the ground-truth
    // failure/restoration markers), and decompose the measured
    // heal→routes-restored total into phases anchored on live spans.
    let spans = fleet_spans(&sim, n);
    let episode = richest_episode(&spans).map_or_else(Vec::new, |ep| {
        assemble_episode(
            &spans,
            ep,
            params.partition_at_s,
            routes_restored_s.map(|s| heal_at + s),
        )
    });
    let phases = routes_restored_s.map_or_else(Vec::new, |routes| {
        let contact = first_span_at(&spans, &[SpanKind::GossipHop, SpanKind::SyncRound], heal_at)
            .map(|t| t - heal_at);
        let install = first_span_at(&spans, &[SpanKind::ViewInstall], heal_at).map(|t| t - heal_at);
        recovery_phases(
            &[
                ("gossip_contact", contact),
                ("first_view_install", install),
                ("view_agreement", reconverge_s),
            ],
            "route_recovery",
            routes,
        )
    });
    PartitionOutcome {
        anti_entropy,
        split_confirmed,
        reconverge_s,
        reconverge_periods: reconverge_s.map(|s| s / params.swim.period_s),
        routes_restored_s,
        final_views_agree: reconverged(&sim, n),
        membership_bps,
        sync_skips,
        sync_full,
        sync_piggyback_saved,
        telemetry: fleet_telemetry(&sim, n),
        spans,
        episode,
        phases,
    }
}

/// Run both arms.
#[must_use]
pub fn run(params: &PartitionParams) -> PartitionResult {
    PartitionResult {
        outcomes: vec![run_arm(params, true), run_arm(params, false)],
        period_s: params.swim.period_s,
    }
}

/// Run, print and write `partition.csv` plus the merged fleet
/// telemetry snapshot (`partition_telemetry.json`).
///
/// # Errors
/// Propagates CSV/JSON I/O errors.
pub fn run_and_report(params: &PartitionParams) -> std::io::Result<PartitionResult> {
    let r = run(params);
    let mut table = Table::new(&[
        "anti-entropy",
        "split confirmed",
        "reconverged after",
        "(periods)",
        "routes restored",
        "views agree at end",
        "membership bps",
        "sync skips",
        "full pushes",
    ]);
    let mut rows = Vec::new();
    for o in &r.outcomes {
        let after = o
            .reconverge_s
            .map_or("never".to_string(), |s| format!("{s:.1} s"));
        let periods = o
            .reconverge_periods
            .map_or("-".to_string(), |p| format!("{p:.1}"));
        let routes = o
            .routes_restored_s
            .map_or("never".to_string(), |s| format!("{s:.1} s"));
        table.row(vec![
            o.anti_entropy.to_string(),
            o.split_confirmed.to_string(),
            after,
            periods,
            routes,
            o.final_views_agree.to_string(),
            format!("{:.0}", o.membership_bps),
            o.sync_skips.to_string(),
            o.sync_full.to_string(),
        ]);
        // Absent measurements are empty CSV fields (not a -1.0
        // sentinel a consumer could mistake for a measured value).
        rows.push(vec![
            o.anti_entropy.to_string(),
            o.split_confirmed.to_string(),
            o.reconverge_s.map_or_else(String::new, |s| s.to_string()),
            o.reconverge_periods
                .map_or_else(String::new, |p| p.to_string()),
            o.routes_restored_s
                .map_or_else(String::new, |s| s.to_string()),
            o.final_views_agree.to_string(),
            format!("{:.1}", o.membership_bps),
            o.sync_skips.to_string(),
            o.sync_full.to_string(),
        ]);
    }
    println!(
        "Partition healing — {}-node minority cut from n={} for {:.0} s (period {:.0} s)",
        params.minority, params.n, params.partition_s, params.swim.period_s
    );
    println!("{}", table.render());
    write_csv(
        crate::results_path("partition.csv"),
        &[
            "anti_entropy",
            "split_confirmed",
            "reconverge_s",
            "reconverge_periods",
            "routes_restored_s",
            "views_agree",
            "membership_bps",
            "sync_skips",
            "sync_full",
        ],
        &rows,
    )?;
    // Phase breakdown of the heal→routes-restored interval, one row
    // per (arm, phase); arms that never restored routes contribute no
    // rows. Durations sum to the arm's routes_restored_s exactly.
    let phase_rows: Vec<Vec<String>> = r
        .outcomes
        .iter()
        .flat_map(|o| {
            o.phases.iter().map(|p| {
                vec![
                    o.anti_entropy.to_string(),
                    p.name.to_string(),
                    format!("{:.3}", p.start_s),
                    format!("{:.3}", p.end_s),
                    format!("{:.3}", p.duration_s()),
                ]
            })
        })
        .collect();
    write_csv(
        crate::results_path("partition_phases.csv"),
        &["anti_entropy", "phase", "start_s", "end_s", "duration_s"],
        &phase_rows,
    )?;

    // The richest causal episode of the incident, Perfetto-loadable.
    if let Some(o) = r.outcomes.iter().find(|o| !o.episode.is_empty()) {
        let trace_path = crate::results_path("partition_trace.json");
        std::fs::write(&trace_path, apor_telemetry::chrome_trace_json(&o.episode))?;
        println!(
            "episode trace -> {} ({} spans)",
            trace_path.display(),
            o.episode.len()
        );
    }

    let mut fleet = Snapshot::default();
    for o in &r.outcomes {
        fleet.merge(&o.telemetry);
    }
    let json_path = crate::results_path("partition_telemetry.json");
    std::fs::write(&json_path, fleet.to_json())?;
    println!(
        "fleet telemetry -> {} ({} piggyback round trips saved)",
        json_path.display(),
        r.outcomes
            .iter()
            .map(|o| o.sync_piggyback_saved)
            .sum::<u64>()
    );
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> PartitionParams {
        PartitionParams {
            n: 16,
            minority: 4,
            partition_at_s: 50.0,
            partition_s: 50.0,
            horizon_s: 120.0,
            ..Default::default()
        }
    }

    /// The acceptance scenario in miniature: with anti-entropy the
    /// healed minority reconverges within ten protocol periods; without
    /// it the split is permanent (each side holds the other dead and no
    /// traffic ever crosses the healed boundary again).
    #[test]
    fn anti_entropy_heals_the_partition_within_ten_periods() {
        let params = quick();
        let with = run_arm(&params, true);
        // If any assertion below fails, ship the causal evidence with
        // the failure message: the last spans of every involved node.
        let _dump = apor_telemetry::DumpOnPanic::new("partition", with.spans.clone(), 20);
        assert!(with.split_confirmed, "partition must first split views");
        let periods = with
            .reconverge_periods
            .expect("anti-entropy must reconverge");
        assert!(
            periods <= 10.0,
            "reconvergence took {periods:.1} periods, budget 10"
        );
        assert!(with.final_views_agree);
        // The routing plane recovers after the membership plane: the
        // healed view installs, probers re-mark the cross links alive
        // (≤ one probe interval), and the two-round exchange warms up.
        let routes = with
            .routes_restored_s
            .expect("routes must be restored within the horizon");
        assert!(
            routes >= with.reconverge_s.unwrap(),
            "routes cannot recover before the views do"
        );
        assert!(
            routes <= 90.0,
            "route restoration took {routes:.0} s — more than a probe \
             interval plus a few routing intervals after the heal"
        );
        // In the healthy phases almost every sync pair agrees: the
        // digest short-circuit must be skipping transfers.
        assert!(
            with.sync_skips > with.sync_full,
            "steady state should skip more transfers ({}) than it pushes ({})",
            with.sync_skips,
            with.sync_full
        );
        // Every digest mismatch ships the responder's first ledger
        // chunk on the echo; healing a real split must have saved at
        // least one pull round trip.
        assert!(
            with.sync_piggyback_saved > 0,
            "digest mismatches during healing must ride the piggyback"
        );

        // The merged fleet snapshot is the observability acceptance
        // criterion: the probe, suspicion, sync-skip and drop planes
        // must all report from at least two distinct nodes.
        let snap = &with.telemetry;
        for (component, name) in [
            ("membership", "probe_sent"),
            ("membership", "suspicion_raised"),
            ("membership", "sync_digest_skips"),
        ] {
            assert!(
                snap.nodes_with_nonzero(component, name).len() >= 2,
                "{component}/{name} must be nonzero on >= 2 nodes"
            );
        }
        // The hot-path latency/size distributions must actually be
        // populated — an instrumented path that never observes is
        // indistinguishable from a broken one. p50 and p99 nonzero
        // means real observations, not a single stray zero sample.
        for (component, name) in [
            ("routing", "probe_rtt_us"),
            ("routing", "round_two_us"),
            ("membership", "sync_frame_bytes"),
            ("netsim", "event_queue_depth"),
        ] {
            let h = snap.histogram_total(component, name);
            assert!(h.count > 0, "{component}/{name} recorded nothing");
            assert!(
                h.quantile(0.5) > 0 && h.quantile(0.99) > 0,
                "{component}/{name}: zero p50/p99 over {} observations",
                h.count
            );
        }
        let dropping: std::collections::BTreeSet<u32> = [
            "drop_link_down",
            "drop_unreachable",
            "drop_loss",
            "drop_queue_overflow",
            "drop_receiver_down",
        ]
        .iter()
        .flat_map(|name| snap.nodes_with_nonzero("netsim", name))
        .collect();
        assert!(
            dropping.len() >= 2,
            "the partition must bill drops to >= 2 nodes, got {dropping:?}"
        );
        assert!(snap.counter_total("routing", "rec_entries_received") > 0);

        // The causal-trace acceptance criterion: the assembled episode
        // must reconstruct the whole convergence chain — failure,
        // suspicion window, confirm, gossip wavefront, view install,
        // row remap, routes restored — and export as valid,
        // properly-nested Chrome trace JSON.
        let kinds = crate::trace_support::kinds_present(&with.episode);
        for k in [
            SpanKind::Episode,
            SpanKind::Failure,
            SpanKind::Suspicion,
            SpanKind::Confirm,
            SpanKind::GossipHop,
            SpanKind::ViewInstall,
            SpanKind::Remap,
            SpanKind::RoutesRestored,
        ] {
            assert!(
                kinds.contains(&k),
                "episode must contain a {k:?} span, has {kinds:?}"
            );
        }
        let stats = apor_telemetry::validate_chrome_trace(&apor_telemetry::chrome_trace_json(
            &with.episode,
        ))
        .expect("episode export must be valid, properly nested trace JSON");
        assert_eq!(stats.spans, with.episode.len());
        assert_eq!(stats.episodes, 1, "export is one episode's causal tree");
        // The phase breakdown decomposes the measured recovery total:
        // consecutive, starting at the heal, summing to within 10% of
        // routes_restored_s (here: exactly, by construction).
        let total: f64 = with.phases.iter().map(Phase::duration_s).sum();
        assert!(
            (total - routes).abs() <= 0.1 * routes,
            "phase sum {total:.3}s must be within 10% of routes_restored_s {routes:.3}s"
        );
        assert!(with.phases.iter().all(|p| p.duration_s() >= 0.0));
        assert_eq!(with.phases.first().map(|p| p.start_s), Some(0.0));

        let without = run_arm(&params, false);
        assert!(without.split_confirmed);
        assert_eq!(
            without.reconverge_s, None,
            "without anti-entropy the split must persist"
        );
        assert_eq!(
            without.routes_restored_s, None,
            "cross-boundary routes cannot recover while views disagree"
        );
        assert!(!without.final_views_agree);
        assert_eq!(without.sync_skips + without.sync_full, 0);
    }

    /// Bit-determinism: the identical master seed reproduces the
    /// identical outcome.
    #[test]
    fn study_is_deterministic_in_the_seed() {
        let params = quick();
        let a = run_arm(&params, true);
        let b = run_arm(&params, true);
        assert_eq!(a.reconverge_s, b.reconverge_s);
        assert_eq!(a.membership_bps, b.membership_bps);
    }
}
