//! Appendix A: the diamond-counting lower bound, made empirical.
//!
//! The paper proves that any algorithm comparing all alternative one-hop
//! paths needs `Ω(n√n)` per-node communication: there are `3·C(n,4)`
//! diamonds to cover (Lemma 2), `e` received edges cover at most `e²`
//! (Lemma 3), so `n·e² ≥ 3·C(n,4)` forces `e = Ω(n√n)`. This experiment
//! tabulates, for growing n: the diamonds to cover, the bound's minimum
//! `e`, and what the grid-quorum algorithm actually delivers to each node
//! — showing the algorithm sits within a small constant of optimal.

use apor_analysis::{write_csv, Table};
use apor_quorum::{unique_diamonds_in_complete_graph, Grid};
use serde::Serialize;

/// One row of the lower-bound table.
#[derive(Debug, Clone, Serialize)]
pub struct LowerBoundRow {
    /// Overlay size.
    pub n: usize,
    /// Diamonds in the complete graph (`3·C(n,4)`).
    pub diamonds: u128,
    /// Minimum edges per node from the bound: `√(3·C(n,4)/n)`.
    pub min_edges_per_node: u64,
    /// Edges actually received per node by the quorum algorithm
    /// (≈ `2√n` rows of `n` entries).
    pub quorum_edges_per_node: u64,
    /// Ratio quorum / bound (the algorithm's constant-factor gap).
    pub optimality_gap: f64,
}

/// Build the table for the given sizes.
#[must_use]
pub fn run(sizes: &[usize]) -> Vec<LowerBoundRow> {
    sizes
        .iter()
        .map(|&n| {
            let diamonds = unique_diamonds_in_complete_graph(n);
            let min_e = ((diamonds as f64) / n as f64).sqrt().ceil() as u64;
            let grid = Grid::new(n);
            // Every link-state row a node receives carries n edges; it
            // receives one row per rendezvous client plus its own.
            let max_clients = (0..n)
                .map(|i| grid.rendezvous_clients(i).len())
                .max()
                .unwrap_or(0) as u64;
            let quorum_e = (max_clients + 1) * n as u64;
            LowerBoundRow {
                n,
                diamonds,
                min_edges_per_node: min_e,
                quorum_edges_per_node: quorum_e,
                optimality_gap: quorum_e as f64 / min_e as f64,
            }
        })
        .collect()
}

/// Run, print and write `lower_bound.csv`.
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(sizes: &[usize]) -> std::io::Result<Vec<LowerBoundRow>> {
    let rows = run(sizes);
    let mut table = Table::new(&[
        "n",
        "diamonds 3·C(n,4)",
        "min edges/node",
        "quorum edges/node",
        "gap",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.diamonds.to_string(),
            r.min_edges_per_node.to_string(),
            r.quorum_edges_per_node.to_string(),
            format!("{:.2}", r.optimality_gap),
        ]);
        csv.push(vec![
            r.n.to_string(),
            r.diamonds.to_string(),
            r.min_edges_per_node.to_string(),
            r.quorum_edges_per_node.to_string(),
            format!("{:.3}", r.optimality_gap),
        ]);
    }
    println!("Appendix A — diamond-counting lower bound vs the grid quorum");
    println!("{}", table.render());
    write_csv(
        crate::results_path("lower_bound.csv"),
        &[
            "n",
            "diamonds",
            "min_edges_per_node",
            "quorum_edges_per_node",
            "gap",
        ],
        &csv,
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_is_within_constant_factor_of_bound() {
        let rows = run(&[16, 100, 400, 1600, 10_000]);
        for r in &rows {
            assert!(
                r.quorum_edges_per_node >= r.min_edges_per_node,
                "n={}: the bound must lower-bound the algorithm",
                r.n
            );
            assert!(
                r.optimality_gap < 6.0,
                "n={}: gap {} too large for a Θ-optimal algorithm",
                r.n,
                r.optimality_gap
            );
        }
        // The gap is asymptotically flat (Θ-optimality): it must not grow
        // between n=400 and n=10000 by more than a smidgen.
        let g400 = rows.iter().find(|r| r.n == 400).unwrap().optimality_gap;
        let g10k = rows.iter().find(|r| r.n == 10_000).unwrap().optimality_gap;
        assert!(g10k <= g400 * 1.2, "gap grows: {g400} → {g10k}");
    }
}
