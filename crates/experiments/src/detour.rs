//! Recovery-time CDFs: 1-hop failover vs feasibility-checked k-hop
//! detours under a correlated grid-row blackout on a lossy WAN.
//!
//! The paper's overlay only ever forwards 1-hop detours; the
//! feasibility layer (`routing::feasibility`) opens loop-free k-hop
//! splicing over the live rows. This study measures what that buys:
//! how fast broken (src, dst) pairs regain a working route when a
//! whole grid row goes dark at once
//! ([`apor_topology::FailureParams::with_row_blackout`]).
//!
//! The underlay is shaped so the question has teeth:
//!
//! - **Grid rows** are a clean full mesh ([`DetourParams::row_rtt_ms`]).
//! - **Grid columns** are adjacent rings (with wrap): only `|Δrow| = 1`
//!   column links carry traffic, at a per-row-varied RTT.
//! - **Column long-hauls** (ring distance ≥ 2) are lossy WAN paths:
//!   reachable, but with total loss in the ring-climbing direction
//!   ([`apor_topology::LatencyMatrix::set_loss_directed`]). Probes die
//!   in both directions (the climbing probe is lost outright; the
//!   descending probe's ack is lost), so neither side ever routes over
//!   the long-haul — but link-state frames still *descend*, which is
//!   exactly what keeps each node's store stocked with the fresh relay
//!   rows a multi-relay detour needs.
//! - **Cross pairs** (different row and column) are unreachable; they
//!   never route and fall out of the baseline.
//!
//! With the blackout on grid row `b`, a same-column pair at ring
//! distance 2 across row `b` (e.g. row `b−1` → row `b+1`) loses its
//! only 1-hop relay — the row-`b` member between them. The 1-hop arm
//! stays dark until the heal plus a probe/publish round trip. The
//! k-hop arm splices the surviving ring side (e.g. `b−1 → b−2 → … →
//! b+1`) as soon as its own probes declare the relay dead, recovering
//! mid-blackout. Routability is judged end to end: the sampler walks
//! each pair's `best_hop` chain hop by hop against the ground-truth
//! schedule, so a stale hop pointing into the dead row counts as down,
//! and any revisit counts as a forwarding loop (the study asserts there
//! are none — the live-fleet companion to the loop-freedom proptest).
//!
//! Outputs: `results/detour_cdf.csv` (both arms' recovery-time step
//! functions) and `results/detour_telemetry.json` (merged fleet
//! telemetry; `routing/loops_detected`, `routing/routes_retracted` and
//! the `routing/detour_hops` histogram must all be live).

use apor_analysis::{write_csv, Cdf, Table};
use apor_linkstate::RecFormat;
use apor_netsim::Simulator;
use apor_overlay::config::{Algorithm, NodeConfig};
use apor_overlay::simnode::{overlay_at, overlay_sim_config, populate};
use apor_quorum::{Grid, NodeId};
use apor_telemetry::Snapshot;
use apor_topology::{FailureParams, FailureSchedule, LatencyMatrix};
use serde::Serialize;

/// Parameters of the detour-recovery study.
#[derive(Debug, Clone)]
pub struct DetourParams {
    /// Overlay size (gridded per the paper's footnote 5; sizes whose
    /// grid has ≥ 5 rows give distance-2 column pairs a unique 1-hop
    /// relay, which is what the blackout severs).
    pub n: usize,
    /// Grid row taken down as one correlated failure.
    pub blackout_row: usize,
    /// When the row goes dark, seconds (leaves time to converge).
    pub blackout_at_s: f64,
    /// Blackout duration, seconds (must exceed the 1-hop arm's only
    /// recovery path: waiting the outage out).
    pub blackout_s: f64,
    /// How long after the heal the run keeps sampling, seconds.
    pub horizon_s: f64,
    /// Intra-row full-mesh RTT, ms.
    pub row_rtt_ms: f64,
    /// Column adjacent-ring RTT base, ms.
    pub col_rtt_base_ms: f64,
    /// Per-row increment on column-ring RTTs, ms (breaks cost ties so
    /// detour selection is strict).
    pub col_rtt_step_ms: f64,
    /// RTT of the lossy column long-hauls, ms.
    pub wan_rtt_ms: f64,
    /// Master seed: the whole study is a pure function of it.
    pub seed: u64,
}

impl Default for DetourParams {
    fn default() -> Self {
        DetourParams {
            n: 25,
            blackout_row: 1,
            blackout_at_s: 75.0,
            blackout_s: 150.0,
            horizon_s: 120.0,
            row_rtt_ms: 20.0,
            col_rtt_base_ms: 40.0,
            col_rtt_step_ms: 4.0,
            wan_rtt_ms: 90.0,
            seed: 0xDE70,
        }
    }
}

/// One arm's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct DetourOutcome {
    /// The arm's detour budget (1 = the paper's failover behaviour).
    pub max_detour_hops: usize,
    /// Ordered survivor pairs routable end to end just before the
    /// blackout — the denominator everything below is relative to.
    pub baseline_pairs: usize,
    /// Baseline pairs that lost their route during the run.
    pub broken_pairs: usize,
    /// Broken pairs that regained a route within the horizon.
    pub recovered_pairs: usize,
    /// Broken pairs still dark at the end (censored).
    pub censored_pairs: usize,
    /// Median recovery time over broken pairs, censored counted as
    /// `+inf`; `None` when nothing broke.
    pub median_recovery_s: Option<f64>,
    /// 90th-percentile recovery time, same convention.
    pub p90_recovery_s: Option<f64>,
    /// Forwarding-walk revisits observed while sampling (the live-run
    /// loop check; must stay 0).
    pub loops_observed: u64,
    /// Fleet total of `routing/loops_detected`: candidates the
    /// feasibility discipline refused.
    pub loops_detected: u64,
    /// Fleet total of `routing/routes_retracted`.
    pub routes_retracted: u64,
    /// Fleet count of the `routing/detour_hops` histogram: detours the
    /// discipline accepted (0 in the 1-hop arm, whose `best_hop` never
    /// reaches the splicer).
    pub detours_selected: u64,
    /// Raw recovery times of the recovered pairs, seconds.
    pub recoveries: Vec<f64>,
    /// Merged fleet telemetry at the end of the arm (exported as
    /// `detour_telemetry.json`, not part of the CSV).
    #[serde(skip)]
    pub telemetry: Snapshot,
}

/// The full study output.
#[derive(Debug, Clone, Serialize)]
pub struct DetourResult {
    /// One outcome per arm, 1-hop failover first.
    pub outcomes: Vec<DetourOutcome>,
}

/// Ring distance between two grid rows on an `rows`-row column ring.
fn ring_distance(a: usize, b: usize, rows: usize) -> usize {
    let d = a.abs_diff(b);
    d.min(rows - d)
}

/// The entitlement-aligned fabric described in the module docs: row
/// meshes, column rings, lossy descending-only long-hauls.
fn fabric(params: &DetourParams, grid: &Grid) -> LatencyMatrix {
    let rows = grid.shape().rows;
    let mut m = LatencyMatrix::unreachable(params.n);
    for i in 0..params.n {
        for j in (i + 1)..params.n {
            let (ri, ci) = grid.position(i);
            let (rj, cj) = grid.position(j);
            if ri == rj {
                m.set_rtt(i, j, params.row_rtt_ms);
            } else if ci == cj {
                if ring_distance(ri, rj, rows) == 1 {
                    #[allow(clippy::cast_precision_loss)]
                    m.set_rtt(
                        i,
                        j,
                        params.col_rtt_base_ms + params.col_rtt_step_ms * ri.min(rj) as f64,
                    );
                } else {
                    // Lossy WAN long-haul: frames descend the ring
                    // (higher row → lower row) but never climb. Both
                    // ends' probes fail, so the link is dead for
                    // forwarding; descending link-state still arrives.
                    m.set_rtt(i, j, params.wan_rtt_ms);
                    let (lo, hi) = if ri < rj { (i, j) } else { (j, i) };
                    m.set_loss_directed(lo, hi, 1.0);
                }
            }
        }
    }
    m
}

/// What one end-to-end `best_hop` walk found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Walk {
    /// The chain reached the destination over live nodes.
    Delivered,
    /// A node had no next hop, or the next hop is down.
    Down,
    /// The chain revisited a node — a forwarding loop.
    Looped,
}

/// Walk the next-hop chain for (src, dst) at `now`, judging each hop
/// against the ground-truth schedule.
///
/// Two forwarding modes, mirroring [`RouteDecision`]: when the current
/// node holds a spliced k-hop detour the packet is *source-routed* —
/// the carried relay list decides the rest of the journey, and the walk
/// judges every listed node against ground truth. Otherwise the walk
/// steps one hop and lets the next node re-decide from its own tables.
///
/// [`RouteDecision`]: apor_routing::RouteDecision
fn walk_route(
    sim: &Simulator,
    schedule: &FailureSchedule,
    n: usize,
    src: usize,
    dst: usize,
    now: f64,
) -> Walk {
    let mut visited = vec![false; n];
    visited[src] = true;
    let mut cur = src;
    loop {
        let node = overlay_at(sim, cur);
        #[allow(clippy::cast_possible_truncation)]
        if let Some(path) = node.detour_path(NodeId(dst as u16), now) {
            // Source-routed splice: the relays don't re-decide, so the
            // packet arrives iff every listed node is actually up. The
            // selection layer guarantees the path is simple, so a loop
            // through `visited` territory is impossible here.
            let all_up = path[1..]
                .iter()
                .all(|&h| schedule.is_node_up(usize::from(h.0), now));
            return if all_up { Walk::Delivered } else { Walk::Down };
        }
        #[allow(clippy::cast_possible_truncation)]
        let Some(hop) = node.best_hop(NodeId(dst as u16), now) else {
            return Walk::Down;
        };
        let h = usize::from(hop.0);
        if !schedule.is_node_up(h, now) {
            return Walk::Down;
        }
        if h == dst {
            return Walk::Delivered;
        }
        if visited[h] {
            return Walk::Looped;
        }
        visited[h] = true;
        cur = h;
    }
}

/// The whole fleet's telemetry in one snapshot: each overlay node's
/// registry merged with the netsim per-node packet accounting.
fn fleet_telemetry(sim: &Simulator, n: usize) -> Snapshot {
    let mut snap = sim.telemetry_snapshot();
    for i in 0..n {
        snap.merge(&overlay_at(sim, i).telemetry().snapshot());
    }
    snap
}

/// Per-pair recovery bookkeeping: first break, first recovery after it.
struct PairState {
    src: usize,
    dst: usize,
    broken_at: Option<f64>,
    recovery_s: Option<f64>,
}

/// Median/p90 over broken pairs, censored pairs counted as `+inf`.
fn recovery_stats(recoveries: &[f64], broken: usize) -> (Option<f64>, Option<f64>) {
    if broken == 0 {
        return (None, None);
    }
    let mut all = recoveries.to_vec();
    all.resize(broken, f64::INFINITY);
    let cdf = Cdf::new(all);
    (Some(cdf.quantile(0.5)), Some(cdf.quantile(0.9)))
}

/// Run one arm of the study with the given detour budget.
///
/// # Panics
/// Panics when `blackout_row` is outside the grid for `n`.
#[must_use]
pub fn run_arm(params: &DetourParams, max_detour_hops: usize) -> DetourOutcome {
    let n = params.n;
    let grid = Grid::new(n);
    assert!(
        params.blackout_row < grid.shape().rows,
        "blackout row {} outside the {} grid rows for n={n}",
        params.blackout_row,
        grid.shape().rows
    );
    let blackout: Vec<usize> = grid.row_members(params.blackout_row).collect();
    let heal_at = params.blackout_at_s + params.blackout_s;

    let mut failure = FailureParams::with_n(n);
    failure.seed = params.seed ^ 0xB1AC;
    failure.median_concurrent = 1e-12; // the blackout is the only failure
    failure.duration_s = heal_at + params.horizon_s + 60.0;
    let failure = failure.with_row_blackout(&blackout, params.blackout_at_s, heal_at);
    let schedule = FailureSchedule::generate(&failure);

    let mut sim = Simulator::new(
        fabric(params, &grid),
        schedule.clone(),
        apor_netsim::SimulatorConfig {
            seed: params.seed,
            ..overlay_sim_config()
        },
    );
    populate(&mut sim, n, 5.0, move |i| {
        #[allow(clippy::cast_possible_truncation)]
        let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
        #[allow(clippy::cast_possible_truncation)]
        let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
            .with_static_members(members);
        cfg.protocol = cfg.protocol.with_detour_hops(max_detour_hops);
        // Costed recommendations feed the feasibility distances; a
        // tighter probe plane keeps detection (not probing cadence) the
        // thing the CDF measures.
        cfg.protocol.rec_format = RecFormat::WithCost;
        cfg.protocol.probe_interval_s = 10.0;
        cfg.protocol.probe_interval_max_s = 10.0;
        cfg.protocol.rapid_probe_interval_s = 2.0;
        cfg.protocol.probe_timeout_s = 1.5;
        cfg
    });

    // Baseline: which ordered survivor pairs route end to end just
    // before the lights go out?
    let t0 = params.blackout_at_s - 1.0;
    sim.run_until(t0);
    let survivors: Vec<usize> = (0..n).filter(|i| !blackout.contains(i)).collect();
    let mut loops_observed = 0u64;
    let mut pairs: Vec<PairState> = Vec::new();
    for &src in &survivors {
        for &dst in &survivors {
            if src == dst {
                continue;
            }
            match walk_route(&sim, &schedule, n, src, dst, t0) {
                Walk::Delivered => pairs.push(PairState {
                    src,
                    dst,
                    broken_at: None,
                    recovery_s: None,
                }),
                Walk::Looped => loops_observed += 1,
                Walk::Down => {}
            }
        }
    }
    let baseline_pairs = pairs.len();

    // Sample once per second through the blackout and the post-heal
    // horizon. Each pair is tracked to its first break and the first
    // recovery after it; a walk that loops counts as down *and* as a
    // loop observation.
    let end = heal_at + params.horizon_s;
    let mut t = t0;
    while t < end {
        t += 1.0;
        sim.run_until(t);
        for p in &mut pairs {
            if p.recovery_s.is_some() {
                continue;
            }
            match walk_route(&sim, &schedule, n, p.src, p.dst, t) {
                Walk::Delivered => {
                    if let Some(b) = p.broken_at {
                        p.recovery_s = Some(t - b);
                    }
                }
                Walk::Down => {
                    if p.broken_at.is_none() {
                        p.broken_at = Some(t);
                    }
                }
                Walk::Looped => {
                    loops_observed += 1;
                    if p.broken_at.is_none() {
                        p.broken_at = Some(t);
                    }
                }
            }
        }
        // Exercise the discipline against the dead row too: queries
        // toward blacked-out destinations are where stale neighbour
        // rows would otherwise splice blackhole detours, and where the
        // feasibility gate's rejections (`routing/loops_detected`)
        // actually fire. Not measured — routes to dead hosts have no
        // recovery to time.
        for &src in &survivors {
            for &dst in &blackout {
                #[allow(clippy::cast_possible_truncation)]
                let _ = overlay_at(&sim, src).best_hop(NodeId(dst as u16), t);
            }
        }
    }

    let broken_pairs = pairs.iter().filter(|p| p.broken_at.is_some()).count();
    let recoveries: Vec<f64> = pairs.iter().filter_map(|p| p.recovery_s).collect();
    let (median_recovery_s, p90_recovery_s) = recovery_stats(&recoveries, broken_pairs);
    let telemetry = fleet_telemetry(&sim, n);
    DetourOutcome {
        max_detour_hops,
        baseline_pairs,
        broken_pairs,
        recovered_pairs: recoveries.len(),
        censored_pairs: broken_pairs - recoveries.len(),
        median_recovery_s,
        p90_recovery_s,
        loops_observed,
        loops_detected: telemetry.counter_total("routing", "loops_detected"),
        routes_retracted: telemetry.counter_total("routing", "routes_retracted"),
        detours_selected: telemetry.histogram_total("routing", "detour_hops").count,
        recoveries,
        telemetry,
    }
}

/// Run both arms: the paper's 1-hop failover, then k ≤ 8 detours.
#[must_use]
pub fn run(params: &DetourParams) -> DetourResult {
    DetourResult {
        outcomes: vec![run_arm(params, 1), run_arm(params, 8)],
    }
}

/// Run, print and write `detour_cdf.csv` plus the merged fleet
/// telemetry snapshot (`detour_telemetry.json`).
///
/// # Errors
/// Propagates CSV/JSON I/O errors.
pub fn run_and_report(params: &DetourParams) -> std::io::Result<DetourResult> {
    let r = run(params);
    let mut table = Table::new(&[
        "detour hops",
        "baseline pairs",
        "broken",
        "recovered",
        "censored",
        "median recovery",
        "p90",
        "detours",
        "rejections",
        "retractions",
    ]);
    for o in &r.outcomes {
        let fmt = |v: Option<f64>| v.map_or("-".to_string(), |s| format!("{s:.0} s"));
        table.row(vec![
            o.max_detour_hops.to_string(),
            o.baseline_pairs.to_string(),
            o.broken_pairs.to_string(),
            o.recovered_pairs.to_string(),
            o.censored_pairs.to_string(),
            fmt(o.median_recovery_s),
            fmt(o.p90_recovery_s),
            o.detours_selected.to_string(),
            o.loops_detected.to_string(),
            o.routes_retracted.to_string(),
        ]);
    }
    println!(
        "Detour recovery — grid row {} dark for {:.0} s at n={} (lossy-WAN column fabric)",
        params.blackout_row, params.blackout_s, params.n
    );
    println!("{}", table.render());

    // The step functions of both arms' recovery CDFs; fractions are
    // relative to each arm's broken-pair count, so censored pairs show
    // up as a curve that never reaches 1.
    let mut rows = Vec::new();
    for o in &r.outcomes {
        let cdf = Cdf::new(o.recoveries.clone());
        for (x, c) in cdf.steps() {
            #[allow(clippy::cast_precision_loss)]
            let frac = c as f64 / (o.broken_pairs.max(1)) as f64;
            rows.push(vec![
                o.max_detour_hops.to_string(),
                format!("{x:.1}"),
                c.to_string(),
                format!("{frac:.4}"),
            ]);
        }
    }
    write_csv(
        crate::results_path("detour_cdf.csv"),
        &[
            "max_detour_hops",
            "recovery_s",
            "pairs_recovered",
            "fraction_of_broken",
        ],
        &rows,
    )?;

    let mut fleet = Snapshot::default();
    for o in &r.outcomes {
        fleet.merge(&o.telemetry);
    }
    let json_path = crate::results_path("detour_telemetry.json");
    std::fs::write(&json_path, fleet.to_json())?;
    println!(
        "fleet telemetry -> {} ({} detours spliced, {} candidates refused)",
        json_path.display(),
        r.outcomes.iter().map(|o| o.detours_selected).sum::<u64>(),
        r.outcomes.iter().map(|o| o.loops_detected).sum::<u64>()
    );
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> DetourParams {
        DetourParams {
            n: 20,
            blackout_at_s: 60.0,
            blackout_s: 120.0,
            horizon_s: 90.0,
            ..Default::default()
        }
    }

    /// The acceptance scenario in miniature: both arms break the same
    /// pairs, nobody ever loops, and the k-hop arm's median recovery
    /// beats the 1-hop arm's (which can only wait the blackout out).
    #[test]
    fn k_hop_detours_recover_before_the_heal() {
        let params = quick();
        let one = run_arm(&params, 1);
        let khop = run_arm(&params, 8);

        for o in [&one, &khop] {
            assert!(o.baseline_pairs > 0, "fabric must route before the outage");
            assert_eq!(o.loops_observed, 0, "forwarding walked into a loop");
            assert!(o.broken_pairs > 0, "the blackout must break pairs");
            assert_eq!(o.censored_pairs, 0, "all pairs must recover in-horizon");
            assert!(o.routes_retracted > 0, "link deaths must retract routes");
        }
        // k-hop splicing legitimately *expands* pre-outage routability:
        // cross pairs two ring-steps apart have no 1-hop route at all,
        // but detour down the source's own column and row-hop at the end.
        assert!(
            khop.baseline_pairs > one.baseline_pairs,
            "k-hop must widen the routable baseline ({} vs {})",
            khop.baseline_pairs,
            one.baseline_pairs
        );

        let km = khop.median_recovery_s.expect("k-hop arm broke pairs");
        let om = one.median_recovery_s.expect("1-hop arm broke pairs");
        assert!(
            km < om,
            "k-hop median {km:.0}s must beat 1-hop median {om:.0}s"
        );
        assert!(
            km < params.blackout_s,
            "k-hop arm must recover mid-blackout, took {km:.0}s"
        );
        assert!(
            om >= params.blackout_s * 0.8,
            "1-hop arm should be blackout-bound, took {om:.0}s"
        );

        // The telemetry plane must see the discipline working: detours
        // accepted (k arm only — 1-hop `best_hop` never reaches the
        // splicer), and at least one stale candidate refused.
        assert!(khop.detours_selected > 0, "no detours were spliced");
        assert_eq!(one.detours_selected, 0, "1-hop arm must not splice");
        assert!(
            khop.loops_detected > 0,
            "queries toward the dead row must trip the feasibility gate"
        );
        let h = khop.telemetry.histogram_total("routing", "detour_hops");
        assert!(
            h.quantile(0.5) >= 2,
            "spliced detours here need >= 2 relays, median {}",
            h.quantile(0.5)
        );
    }

    /// Bit-determinism: the identical master seed reproduces the
    /// identical outcome.
    #[test]
    fn study_is_deterministic_in_the_seed() {
        let params = quick();
        let a = run_arm(&params, 8);
        let b = run_arm(&params, 8);
        assert_eq!(a.median_recovery_s, b.median_recovery_s);
        assert_eq!(a.broken_pairs, b.broken_pairs);
        assert_eq!(a.loops_detected, b.loops_detected);
        assert_eq!(a.recoveries, b.recoveries);
    }
}
