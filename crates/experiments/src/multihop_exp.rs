//! The multi-hop extension experiment (section 3, "Multi-hop routes").
//!
//! The paper has no figure for this, but makes three checkable claims:
//! optimal paths of length ≤ l in `⌈log₂ l⌉` iterations; all-pairs
//! shortest paths in `Θ(n√n·log n)` per-node communication (vs `Θ(n²)`
//! for a full-mesh scheme); and "with just twice the communication this
//! algorithm can find optimal 3-hop routes". This experiment verifies all
//! three on synthetic topologies and reports the communication figures.

use apor_analysis::{write_csv, Table};
use apor_linkstate::{LINKSTATE_HEADER_SIZE, UDP_IP_OVERHEAD};
use apor_routing::multihop::{bounded_shortest_paths, multihop_routes};
use apor_topology::{PlanetLabParams, Topology};
use serde::Serialize;

/// Parameters for the multi-hop experiment.
#[derive(Debug, Clone)]
pub struct MultiHopParams {
    /// Overlay sizes to evaluate.
    pub sizes: Vec<usize>,
    /// Topology seed.
    pub seed: u64,
}

impl Default for MultiHopParams {
    fn default() -> Self {
        MultiHopParams {
            sizes: vec![36, 100, 196, 400],
            seed: 0x3407,
        }
    }
}

/// One row of the output.
#[derive(Debug, Clone, Serialize)]
pub struct MultiHopRow {
    /// Overlay size.
    pub n: usize,
    /// Iterations used for all-pairs shortest paths.
    pub iterations: usize,
    /// Mean per-node kilobytes for all-pairs shortest paths (quorum).
    pub quorum_kb: f64,
    /// Mean per-node kilobytes a full-mesh iteration scheme would need.
    pub fullmesh_kb: f64,
    /// Fraction of pairs where 2 hops already achieve the shortest path.
    pub two_hops_optimal: f64,
    /// Mean relative latency excess of the best ≤2-hop path over the
    /// unrestricted shortest path (how much is *lost* by stopping at one
    /// intermediate hop).
    pub two_hops_excess: f64,
    /// Fraction of pairs where 4 hops (2× communication) achieve it.
    pub four_hops_optimal: f64,
}

/// Run the experiment.
///
/// # Panics
/// Panics if the protocol result ever disagrees with the reference
/// dynamic program — that would be a correctness bug, not a data point.
#[must_use]
pub fn run(params: &MultiHopParams) -> Vec<MultiHopRow> {
    let mut rows = Vec::new();
    for &n in &params.sizes {
        let topo = Topology::generate(&PlanetLabParams {
            n,
            seed: params.seed ^ n as u64,
            ..Default::default()
        });
        let m = &topo.latency;
        let full = multihop_routes(m, n.max(2));
        // Correctness gate: protocol == reference DP at the same bound.
        let reference = bounded_shortest_paths(m, full.max_hops);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    (full.cost_of(i, j) - reference[i * n + j]).abs() < 1e-6,
                    "protocol diverged from reference at ({i},{j})"
                );
            }
        }
        let two = multihop_routes(m, 2);
        let four = multihop_routes(m, 4);
        let total_pairs = (n * (n - 1)) as f64;
        let frac_optimal = |r: &apor_routing::MultiHopResult| {
            let mut hit = 0usize;
            for i in 0..n {
                for j in 0..n {
                    if i != j && (r.cost_of(i, j) - full.cost_of(i, j)).abs() < 1e-6 {
                        hit += 1;
                    }
                }
            }
            hit as f64 / total_pairs
        };
        let mut two_excess = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j && full.cost_of(i, j).is_finite() {
                    two_excess += (two.cost_of(i, j) - full.cost_of(i, j)) / full.cost_of(i, j);
                }
            }
        }
        let two_excess = two_excess / total_pairs;
        // A full-mesh variant of the same iteration scheme sends each
        // modified row to all n−1 nodes instead of 2√n rendezvous.
        let per_iter_fullmesh =
            (n - 1) as f64 * (LINKSTATE_HEADER_SIZE + 5 * n + UDP_IP_OVERHEAD) as f64;
        rows.push(MultiHopRow {
            n,
            iterations: full.iterations,
            quorum_kb: full.mean_bytes_sent() / 1024.0,
            fullmesh_kb: per_iter_fullmesh * full.iterations as f64 / 1024.0,
            two_hops_optimal: frac_optimal(&two),
            two_hops_excess: two_excess,
            four_hops_optimal: frac_optimal(&four),
        });
    }
    rows
}

/// Run, print and write `multihop.csv`.
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(params: &MultiHopParams) -> std::io::Result<Vec<MultiHopRow>> {
    let rows = run(params);
    let mut table = Table::new(&[
        "n",
        "iters",
        "quorum KB/node",
        "full-mesh KB/node",
        "2-hop optimal",
        "2-hop excess",
        "4-hop optimal",
    ]);
    let mut csv = Vec::new();
    for r in &rows {
        table.row(vec![
            r.n.to_string(),
            r.iterations.to_string(),
            format!("{:.1}", r.quorum_kb),
            format!("{:.1}", r.fullmesh_kb),
            format!("{:.3}", r.two_hops_optimal),
            format!("{:.1}%", r.two_hops_excess * 100.0),
            format!("{:.3}", r.four_hops_optimal),
        ]);
        csv.push(vec![
            r.n.to_string(),
            r.iterations.to_string(),
            format!("{:.2}", r.quorum_kb),
            format!("{:.2}", r.fullmesh_kb),
            format!("{:.4}", r.two_hops_optimal),
            format!("{:.5}", r.two_hops_excess),
            format!("{:.4}", r.four_hops_optimal),
        ]);
    }
    println!("Multi-hop extension — all-pairs shortest paths via log-iterated quorum rounds");
    println!("{}", table.render());
    write_csv(
        crate::results_path("multihop.csv"),
        &[
            "n",
            "iterations",
            "quorum_kb_per_node",
            "fullmesh_kb_per_node",
            "two_hop_optimal_frac",
            "two_hop_excess",
            "four_hop_optimal_frac",
        ],
        &csv,
    )?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_on_small_worlds() {
        let rows = run(&MultiHopParams {
            sizes: vec![36, 100],
            seed: 5,
        });
        for r in &rows {
            // Quorum communication beats the full-mesh variant clearly.
            assert!(
                r.quorum_kb < 0.7 * r.fullmesh_kb,
                "n={}: {} vs {}",
                r.n,
                r.quorum_kb,
                r.fullmesh_kb
            );
            // "One-hop is sufficient" territory: 2 hops capture nearly
            // all of the latency (mean excess over the unrestricted
            // optimum below 10 %), and 4 hops — the paper's "twice the
            // communication" point — are optimal for ≥ 99 % of pairs.
            // (Our synthetic model slightly over-rewards extra hops
            // compared to the PlanetLab data, where 2–3 hops captured
            // everything; see EXPERIMENTS.md.)
            assert!(r.two_hops_optimal > 0.5, "2-hop {}", r.two_hops_optimal);
            assert!(
                r.two_hops_excess < 0.10,
                "2-hop excess {}",
                r.two_hops_excess
            );
            assert!(r.four_hops_optimal > 0.99, "4-hop {}", r.four_hops_optimal);
            assert!(r.four_hops_optimal >= r.two_hops_optimal);
        }
        // Scaling: per-node KB grows ~n^1.5·log n.
        let ratio = rows[1].quorum_kb / rows[0].quorum_kb;
        assert!((3.0..10.0).contains(&ratio), "scaling ratio {ratio}");
    }
}
