//! Experiment harness for the paper's evaluation.
//!
//! Each module regenerates one table or figure (see DESIGN.md's
//! experiment index). All experiments are deterministic in their seeds
//! and write CSV series plus a human-readable summary; the binary
//! `apor-experiments` dispatches on the figure name.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Figure 1 — one-hop detour study on the synthetic PlanetLab |
//! | [`fig9`] | Figure 9 — per-node routing traffic vs n, RON vs quorum, emulation + theory |
//! | [`deployment`] | the 140-node failure-laden deployment behind figures 8 and 10–14 |
//! | [`multihop_exp`] | section 3's multi-hop extension: optimality + `Θ(n√n log n)` traffic |
//! | [`lower_bound`] | Appendix A — diamond counting vs the quorum construction |
//! | [`ablations`] | design-choice ablations: routing interval, rec format, staleness window |
//! | [`theory_exp`] | section 6.1's closed-form capacity table |
//! | [`churn`] | beyond the paper: crash-detection & view convergence, SWIM vs centralized |
//! | [`partition`] | beyond the paper: partition healing with/without push-pull anti-entropy |
//! | [`detour`] | beyond the paper: recovery-time CDFs, 1-hop failover vs feasible k-hop detours |
//! | [`scale`] | beyond the paper: sparse store + idle-aware netsim at n up to 4096 — state, probe bytes, coverage |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod churn;
pub mod deployment;
pub mod detour;
pub mod fig1;
pub mod fig9;
pub mod lower_bound;
pub mod multihop_exp;
pub mod partition;
pub mod scale;
pub mod theory_exp;
pub mod trace_support;

/// Where experiment outputs land, relative to the workspace root.
pub const RESULTS_DIR: &str = "results";

/// Resolve an output path under [`RESULTS_DIR`] (honours the
/// `APOR_RESULTS_DIR` environment variable for tests).
#[must_use]
pub fn results_path(file: &str) -> std::path::PathBuf {
    let base = std::env::var("APOR_RESULTS_DIR").unwrap_or_else(|_| RESULTS_DIR.to_string());
    std::path::Path::new(&base).join(file)
}

/// Fold a per-node fleet snapshot into a single-row aggregate (node 0):
/// counters/gauges sum, histograms merge. Thousands of per-node
/// registries would be megabytes of JSON; the fleet-wide distributions
/// are what the studies export.
#[must_use]
pub fn aggregate_fleet(snap: &apor_telemetry::Snapshot) -> apor_telemetry::Snapshot {
    let mut agg = apor_telemetry::Snapshot::default();
    for (_, component, name, value) in snap.iter() {
        let mut one = apor_telemetry::Snapshot::default();
        one.insert(0, component, name, value.clone());
        agg.merge(&one);
    }
    agg
}
