//! `apor-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! apor-experiments <command> [--quick]
//!
//! commands:
//!   fig1        one-hop detour study (figure 1)
//!   fig8        concurrent link failures CDF (figure 8)
//!   fig9        routing traffic vs n, RON vs quorum (figure 9)
//!   fig10       per-node routing traffic CDF under failures (figure 10)
//!   fig11       double rendezvous failure CDF (figure 11)
//!   fig12       route freshness, all pairs (figure 12)
//!   fig13       route freshness, well-connected node (figure 13)
//!   fig14       route freshness, poorly-connected node (figure 14)
//!   config      section 5 parameter table
//!   theory      section 6.1 closed-form bandwidth & capacity table
//!   multihop    section 3 multi-hop extension claims
//!   lower-bound appendix A diamond-counting table
//!   ablations   design-choice ablations (interval, rec format, staleness)
//!   churn       membership churn: SWIM gossip vs centralized coordinator
//!   partition   partition healing: push-pull anti-entropy on vs off
//!   detour      recovery CDFs: 1-hop failover vs k-hop feasible detours
//!   scale       sparse store + netsim at n up to 4096: state, probe bytes, coverage
//!   all         everything above
//!
//! `--quick` shrinks the deployment/sweep sizes for a fast smoke run.
//! CSV series land in ./results (override with APOR_RESULTS_DIR).
//! ```

use apor_analysis::{write_csv, Cdf, Table};
use apor_experiments::deployment::{self, DeploymentData, DeploymentParams};
use apor_experiments::{
    ablations, churn, detour, fig1, fig9, lower_bound, multihop_exp, partition, results_path,
    scale, theory_exp,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map_or("all", String::as_str);

    let run = |name: &str| cmd == name || cmd == "all";
    let mut deployment_cache: Option<DeploymentData> = None;
    let needs_deployment = ["fig8", "fig10", "fig11", "fig12", "fig13", "fig14"]
        .iter()
        .any(|f| run(f));

    if run("config") {
        theory_exp::print_config_table();
    }
    if run("theory") {
        theory_exp::run_and_report().expect("theory report");
    }
    if run("lower-bound") {
        let sizes: &[usize] = if quick {
            &[16, 100, 400]
        } else {
            &[16, 100, 400, 1600, 10_000, 65_536]
        };
        lower_bound::run_and_report(sizes).expect("lower-bound report");
    }
    if run("fig1") {
        let params = if quick {
            fig1::Fig1Params {
                n: 150,
                ..Default::default()
            }
        } else {
            fig1::Fig1Params::default()
        };
        fig1::run_and_report(&params).expect("fig1 report");
    }
    if run("fig9") {
        let params = if quick {
            fig9::Fig9Params {
                sizes: vec![25, 49, 81],
                duration_s: 240.0,
                ..Default::default()
            }
        } else {
            fig9::Fig9Params::default()
        };
        fig9::run_and_report(&params).expect("fig9 report");
    }
    if run("ablations") {
        let params = if quick {
            ablations::AblationParams {
                n: 25,
                minutes: 10.0,
                ..Default::default()
            }
        } else {
            ablations::AblationParams::default()
        };
        ablations::run_and_report(&params).expect("ablations report");
    }
    if run("churn") {
        let params = if quick {
            churn::ChurnParams {
                n: 10,
                kill_at_s: 60.0,
                horizon_s: 150.0,
                ..Default::default()
            }
        } else {
            churn::ChurnParams::default()
        };
        churn::run_and_report(&params).expect("churn report");
    }
    if run("partition") {
        let params = if quick {
            partition::PartitionParams {
                horizon_s: 120.0,
                ..Default::default()
            }
        } else {
            partition::PartitionParams::default()
        };
        partition::run_and_report(&params).expect("partition report");
    }
    if run("detour") {
        let params = if quick {
            detour::DetourParams {
                n: 20,
                blackout_at_s: 60.0,
                blackout_s: 120.0,
                horizon_s: 90.0,
                ..Default::default()
            }
        } else {
            detour::DetourParams::default()
        };
        detour::run_and_report(&params).expect("detour report");
    }
    if run("scale") {
        let params = if quick {
            scale::ScaleParams::quick()
        } else {
            scale::ScaleParams::default()
        };
        scale::run_and_report(&params).expect("scale report");
    }
    if run("multihop") {
        let params = if quick {
            multihop_exp::MultiHopParams {
                sizes: vec![36, 100],
                ..Default::default()
            }
        } else {
            multihop_exp::MultiHopParams::default()
        };
        multihop_exp::run_and_report(&params).expect("multihop report");
    }

    if needs_deployment {
        let params = if quick {
            DeploymentParams {
                n: 36,
                minutes: 15.0,
                ..Default::default()
            }
        } else {
            DeploymentParams::default()
        };
        eprintln!(
            "running deployment: n={}, {} minutes of simulated time…",
            params.n, params.minutes
        );
        deployment_cache = Some(deployment::run(&params));
    }

    if let Some(data) = &deployment_cache {
        if run("fig8") {
            report_node_cdf_figure(
                data,
                "Figure 8 — concurrent link failures per node",
                "fig8.csv",
                "concurrent_failures",
                &data.fig8_cdfs(),
            );
        }
        if run("fig10") {
            let (mean, max) = data.fig10_cdfs();
            report_node_cdf_figure(
                data,
                "Figure 10 — per-node routing traffic (bps, in+out)",
                "fig10.csv",
                "routing_bps",
                &(mean, max),
            );
            println!(
                "fleet mean routing: {:.1} Kbps; probing: {:.1} Kbps (theory {:.1})",
                data.mean_routing_bps.iter().sum::<f64>() / data.n as f64 / 1000.0,
                data.mean_probing_bps / 1000.0,
                49.1 * data.n as f64 / 1000.0
            );
        }
        if run("fig11") {
            report_node_cdf_figure(
                data,
                "Figure 11 — destinations with double rendezvous failures",
                "fig11.csv",
                "double_failures",
                &data.fig11_cdfs(),
            );
        }
        if run("fig12") {
            report_freshness_all_pairs(data);
        }
        if run("fig13") {
            report_freshness_single(
                data,
                data.well_connected,
                "Figure 13 — freshness from a well-connected node",
                "fig13.csv",
            );
        }
        if run("fig14") {
            report_freshness_single(
                data,
                data.poorly_connected,
                "Figure 14 — freshness from a poorly-connected node",
                "fig14.csv",
            );
        }
    }
}

/// Shared shape of figures 8/10/11: per-node mean & max CDFs.
fn report_node_cdf_figure(
    data: &DeploymentData,
    title: &str,
    csv: &str,
    metric: &str,
    (mean, max): &(Cdf, Cdf),
) {
    let mut t = Table::new(&["series", "median", "p90", "p98", "max"]);
    for (label, cdf) in [("mean", mean), ("max", max)] {
        t.row(vec![
            label.to_string(),
            format!("{:.2}", cdf.quantile(0.5)),
            format!("{:.2}", cdf.quantile(0.9)),
            format!("{:.2}", cdf.quantile(0.98)),
            format!("{:.2}", cdf.max().unwrap_or(f64::NAN)),
        ]);
    }
    println!("{title} (n={}, {} min)", data.n, data.duration_s / 60.0);
    println!("{}", t.render());

    // CSV: the step functions of both series.
    let mut rows = Vec::new();
    for (x, c) in mean.steps() {
        rows.push(vec!["mean".into(), format!("{x:.3}"), c.to_string()]);
    }
    for (x, c) in max.steps() {
        rows.push(vec!["max".into(), format!("{x:.3}"), c.to_string()]);
    }
    write_csv(
        results_path(csv),
        &["series", metric, "nodes_with_at_most"],
        &rows,
    )
    .expect("write csv");
}

fn freshness_table(rows: &[[f64; 4]]) -> (Table, Vec<Vec<String>>) {
    // rows: per rank, [median, average, p97, max] — already sorted.
    let mut t = Table::new(&["series", "p50 over pairs", "p97 over pairs", "worst"]);
    let col = |k: usize| -> Vec<f64> { rows.iter().map(|r| r[k]).collect() };
    let mut csv = Vec::new();
    for (k, label) in ["median", "average", "97%", "max"].iter().enumerate() {
        let cdf = Cdf::new(col(k));
        t.row(vec![
            (*label).to_string(),
            format!("{:.1}s", cdf.quantile(0.5)),
            format!("{:.1}s", cdf.quantile(0.97)),
            format!("{:.1}s", cdf.max().unwrap_or(f64::NAN)),
        ]);
        for (x, c) in cdf.steps() {
            csv.push(vec![(*label).to_string(), format!("{x:.2}"), c.to_string()]);
        }
    }
    (t, csv)
}

fn report_freshness_all_pairs(data: &DeploymentData) {
    let pairs = data.freshness.all_pairs();
    let rows: Vec<[f64; 4]> = pairs
        .iter()
        .map(|(_, s)| [s.median, s.average, s.p97, s.max])
        .collect();
    let (t, csv) = freshness_table(&rows);
    println!(
        "Figure 12 — route freshness over {} (src,dst) pairs, 30 s sampling",
        pairs.len()
    );
    println!("{}", t.render());
    write_csv(
        results_path("fig12.csv"),
        &["series", "freshness_s", "pairs_with_at_most"],
        &csv,
    )
    .expect("write csv");
}

fn report_freshness_single(data: &DeploymentData, src: usize, title: &str, csv_name: &str) {
    let dests = data.freshness.from_source(src);
    let rows: Vec<[f64; 4]> = dests
        .iter()
        .map(|(_, s)| [s.median, s.average, s.p97, s.max])
        .collect();
    let (t, csv) = freshness_table(&rows);
    println!(
        "{title} (node {src}, mean concurrent failures {:.1}, max {})",
        data.mean_concurrent[src], data.max_concurrent[src]
    );
    println!("{}", t.render());
    write_csv(
        results_path(csv_name),
        &["series", "freshness_s", "destinations_with_at_most"],
        &csv,
    )
    .expect("write csv");
}
