//! Section 6.1's closed-form bandwidth/capacity table, plus the section 5
//! configuration-parameter table.

use apor_analysis::{theory, write_csv, Table};
use apor_routing::ProtocolConfig;

/// Print the section 5 parameter table.
pub fn print_config_table() {
    let ron = ProtocolConfig::ron();
    let quorum = ProtocolConfig::quorum();
    let mut t = Table::new(&[
        "Configuration parameter",
        "Full-mesh (RON)",
        "Quorum system",
    ]);
    t.row(vec![
        "routing interval (r)".into(),
        format!("{}s", ron.routing_interval_s),
        format!("{}s", quorum.routing_interval_s),
    ]);
    t.row(vec![
        "probing interval (p)".into(),
        format!("{}s", ron.probe_interval_s),
        format!("{}s", quorum.probe_interval_s),
    ]);
    t.row(vec![
        "#probes for failure".into(),
        ron.probes_for_failure.to_string(),
        quorum.probes_for_failure.to_string(),
    ]);
    println!("Section 5 — configuration parameters");
    println!("{}", t.render());
}

/// Print and write the theory table (`theory.csv`): probing / RON /
/// quorum bps for a range of n, plus the headline capacity numbers.
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report() -> std::io::Result<()> {
    let sizes = [9usize, 25, 50, 100, 140, 165, 200, 300, 416, 1000, 10_000];
    let mut t = Table::new(&[
        "n",
        "probing Kbps",
        "RON routing Kbps",
        "quorum routing Kbps",
    ]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let nf = n as f64;
        t.row(vec![
            n.to_string(),
            format!("{:.1}", theory::probing_bps(nf) / 1000.0),
            format!("{:.1}", theory::ron_routing_bps(nf) / 1000.0),
            format!("{:.1}", theory::quorum_routing_bps(nf) / 1000.0),
        ]);
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", theory::probing_bps(nf)),
            format!("{:.1}", theory::ron_routing_bps(nf)),
            format!("{:.1}", theory::quorum_routing_bps(nf)),
        ]);
    }
    println!("Section 6.1 — theoretical per-node bandwidth (in + out)");
    println!("{}", t.render());
    println!(
        "56 Kbps budget supports: RON {} nodes, quorum {} nodes (paper: 165 → 300)",
        theory::capacity_at(56_000.0, theory::ron_routing_bps),
        theory::capacity_at(56_000.0, theory::quorum_routing_bps),
    );
    println!(
        "416-site PlanetLab overlay: quorum {:.0} Kbps vs prior {:.0} Kbps (paper: 86 vs 307)",
        (theory::probing_bps(416.0) + theory::quorum_routing_bps(416.0)) / 1000.0,
        (theory::probing_bps(416.0) + theory::ron_routing_bps(416.0)) / 1000.0,
    );
    write_csv(
        crate::results_path("theory.csv"),
        &["n", "probing_bps", "ron_routing_bps", "quorum_routing_bps"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_runs() {
        std::env::set_var(
            "APOR_RESULTS_DIR",
            std::env::temp_dir().join("apor-theory").to_str().unwrap(),
        );
        super::run_and_report().unwrap();
        super::print_config_table();
    }
}
