//! Membership churn study (beyond the paper): view-convergence latency
//! after a node crash, decentralized SWIM gossip vs the paper's
//! centralized coordinator.
//!
//! The paper's membership service is "a simple centralized membership
//! service, running on a coordinator node" with a 30-minute timeout —
//! fine for its evaluation, but a single point of failure and the first
//! scaling bottleneck. This experiment measures what replacing it buys:
//!
//! * a node is crashed at a scheduled time (via
//!   [`apor_topology::NodeOutage`], so the event loop stays seeded and
//!   the run is deterministic end-to-end);
//! * **convergence latency** is the time from the crash until every
//!   surviving node's installed [`MembershipView`] excludes the victim
//!   *and* all surviving views are identical (same version, same
//!   member list — the quorum-grid invariant);
//! * four scenarios: {centralized, SWIM} × {ordinary member,
//!   coordinator/introducer}. The coordinator-victim scenario is the
//!   one the centralized design cannot survive: no further membership
//!   change is ever installed.
//!
//! The centralized runs use the paper's join/keepalive dance with the
//! timeout scaled to the experiment horizon ([`ChurnParams::member_timeout_s`]);
//! the SWIM runs use [`ChurnParams::swim`] and are expected to converge
//! within [`apor_membership::SwimConfig::detection_budget_s`].

use crate::trace_support::{
    assemble_episode, first_span_at, fleet_spans, recovery_phases, richest_episode, Phase,
};
use apor_analysis::{write_csv, Table};
use apor_membership::SwimConfig;
use apor_netsim::{Simulator, TrafficClass};
use apor_overlay::config::{Algorithm, MembershipMode, NodeConfig};
use apor_overlay::membership::MembershipView;
use apor_overlay::simnode::{overlay_at, overlay_sim_config, populate};
use apor_quorum::NodeId;
use apor_telemetry::trace::{Span, SpanKind};
use apor_telemetry::Snapshot;
use apor_topology::{FailureParams, FailureSchedule, LatencyMatrix, NodeOutage};
use serde::Serialize;

/// Flight-recorder capacity per node (see `partition::TRACE_CAPACITY`).
const TRACE_CAPACITY: usize = 1024;

/// Parameters of the churn study.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Overlay size.
    pub n: usize,
    /// The ordinary member crashed in the member-victim scenarios.
    pub kill: usize,
    /// Crash time, seconds (must leave room for joins to settle).
    pub kill_at_s: f64,
    /// How long after the crash the run keeps sampling, seconds.
    pub horizon_s: f64,
    /// Coordinator-side membership timeout for the centralized runs,
    /// seconds (the paper's 30 min scaled to the experiment horizon).
    pub member_timeout_s: f64,
    /// Keepalive period for the centralized runs, seconds.
    pub keepalive_s: f64,
    /// SWIM parameters for the gossip runs.
    pub swim: SwimConfig,
    /// Uniform mesh RTT, ms.
    pub rtt_ms: f64,
    /// Master seed: the whole study is a pure function of it.
    pub seed: u64,
}

impl Default for ChurnParams {
    fn default() -> Self {
        ChurnParams {
            n: 16,
            kill: 3,
            kill_at_s: 120.0,
            horizon_s: 300.0,
            member_timeout_s: 60.0,
            keepalive_s: 15.0,
            swim: SwimConfig::default(),
            rtt_ms: 40.0,
            seed: 0xC0C0,
        }
    }
}

/// One scenario's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnOutcome {
    /// `"centralized"` or `"swim"`.
    pub mode: String,
    /// Was the crashed node the coordinator / introducer (node 0)?
    pub victim_is_coordinator: bool,
    /// Seconds from the crash until all surviving views agree and
    /// exclude the victim; `None` when never within the horizon.
    pub convergence_s: Option<f64>,
    /// Surviving views identical at the end of the run?
    pub final_views_agree: bool,
    /// Fleet-mean per-node membership traffic before the crash, bps.
    pub membership_bps: f64,
    /// Fleet telemetry aggregated over all nodes at the end of the
    /// scenario (sync frame sizes, probe RTTs, queue depth, …).
    /// Exported as `churn_telemetry.json`, not part of the CSV.
    #[serde(skip)]
    pub telemetry: Snapshot,
    /// Every span the fleet's flight recorders held at the end of the
    /// scenario (feeds the dump-on-failure hook).
    #[serde(skip)]
    pub spans: Vec<Span>,
    /// The richest causal episode of the crash, assembled for the
    /// Chrome-trace export (`churn_trace.json`). Empty in the
    /// centralized scenarios (no suspicion plane, no episodes).
    #[serde(skip)]
    pub episode: Vec<Span>,
    /// The crash→convergence interval decomposed into consecutive
    /// phases (`churn_phases.csv`); empty when the scenario never
    /// converged. Durations sum to `convergence_s` by construction.
    #[serde(skip)]
    pub phases: Vec<Phase>,
}

/// The full study output.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnResult {
    /// One outcome per scenario.
    pub outcomes: Vec<ChurnOutcome>,
}

fn scenario_config(params: &ChurnParams, mode: MembershipMode, i: usize) -> NodeConfig {
    let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
        .with_tracing(TRACE_CAPACITY);
    cfg.seed ^= params.seed;
    match mode {
        MembershipMode::Centralized => {
            // The paper's join dance, with timeouts scaled to the
            // experiment horizon so detection is observable at all.
            cfg.member_timeout_s = params.member_timeout_s;
            cfg.keepalive_s = params.keepalive_s;
            cfg.join_retry_s = 2.0;
            cfg
        }
        MembershipMode::Swim => {
            // Static bootstrap: every node derives the same initial
            // view; SWIM maintains it from there.
            let members: Vec<NodeId> = (0..params.n as u16).map(NodeId).collect();
            cfg.with_static_members(members)
                .with_swim_config(params.swim.clone())
        }
    }
}

/// Do all survivors hold identical views that exclude the victim?
fn converged(sim: &Simulator, n: usize, victim: usize) -> bool {
    let mut reference: Option<&MembershipView> = None;
    for i in (0..n).filter(|&i| i != victim) {
        let Some(view) = overlay_at(sim, i).view() else {
            return false;
        };
        if view.contains(NodeId(victim as u16)) {
            return false;
        }
        match reference {
            None => reference = Some(view),
            Some(r) if r == view => {}
            Some(_) => return false,
        }
    }
    reference.is_some()
}

/// Run one scenario: crash `victim` at `kill_at_s`, sample convergence
/// once per second afterwards.
fn run_scenario(params: &ChurnParams, mode: MembershipMode, victim: usize) -> ChurnOutcome {
    let n = params.n;
    let mut failure = FailureParams::with_n(n);
    failure.seed = params.seed ^ 0xFA11;
    failure.median_concurrent = 1e-12; // churn only, no background noise
    failure.duration_s = params.kill_at_s + params.horizon_s + 60.0;
    failure.node_outages = vec![NodeOutage {
        node: victim,
        start_s: params.kill_at_s,
        end_s: failure.duration_s,
    }];
    let mut sim = Simulator::new(
        LatencyMatrix::uniform(n, params.rtt_ms),
        FailureSchedule::generate(&failure),
        apor_netsim::SimulatorConfig {
            seed: params.seed,
            ..overlay_sim_config()
        },
    );
    populate(&mut sim, n, 10.0, {
        let params = params.clone();
        move |i| scenario_config(&params, mode, i)
    });

    sim.run_until(params.kill_at_s);
    let membership_bps =
        sim.stats()
            .fleet_mean_bps(&[TrafficClass::Membership], 30.0, params.kill_at_s);

    // Sample once per second until convergence or the horizon.
    let mut convergence_s = None;
    let mut t = params.kill_at_s;
    let end = params.kill_at_s + params.horizon_s;
    while t < end {
        t += 1.0;
        sim.run_until(t);
        if converged(&sim, n, victim) {
            convergence_s = Some(t - params.kill_at_s);
            break;
        }
    }
    sim.run_until(end);
    let mut fleet = sim.telemetry_snapshot();
    for i in 0..n {
        fleet.merge(&overlay_at(&sim, i).telemetry().snapshot());
    }

    // The causal record of the crash (SWIM scenarios; the centralized
    // plane raises no suspicions and records no episodes).
    let spans = fleet_spans(&sim, n);
    let episode = richest_episode(&spans).map_or_else(Vec::new, |ep| {
        assemble_episode(
            &spans,
            ep,
            params.kill_at_s,
            convergence_s.map(|s| params.kill_at_s + s),
        )
    });
    let phases = convergence_s.map_or_else(Vec::new, |total| {
        let kill = params.kill_at_s;
        let suspicion = first_span_at(&spans, &[SpanKind::Suspicion], kill).map(|t| t - kill);
        let confirm = first_span_at(&spans, &[SpanKind::Confirm], kill).map(|t| t - kill);
        let install = first_span_at(&spans, &[SpanKind::ViewInstall], kill).map(|t| t - kill);
        recovery_phases(
            &[
                ("first_suspicion", suspicion),
                ("suspicion_window", confirm),
                ("first_view_install", install),
            ],
            "view_agreement",
            total,
        )
    });
    ChurnOutcome {
        mode: match mode {
            MembershipMode::Centralized => "centralized".to_string(),
            MembershipMode::Swim => "swim".to_string(),
        },
        victim_is_coordinator: victim == 0,
        convergence_s,
        final_views_agree: converged(&sim, n, victim),
        membership_bps,
        telemetry: crate::aggregate_fleet(&fleet),
        spans,
        episode,
        phases,
    }
}

/// Run all four scenarios.
#[must_use]
pub fn run(params: &ChurnParams) -> ChurnResult {
    let scenarios = [
        (MembershipMode::Centralized, params.kill),
        (MembershipMode::Centralized, 0),
        (MembershipMode::Swim, params.kill),
        (MembershipMode::Swim, 0),
    ];
    ChurnResult {
        outcomes: scenarios
            .iter()
            .map(|&(mode, victim)| run_scenario(params, mode, victim))
            .collect(),
    }
}

/// Run, print and write `churn.csv` plus the per-scenario aggregated
/// fleet telemetry (`churn_telemetry.json`).
///
/// # Errors
/// Propagates CSV I/O errors.
pub fn run_and_report(params: &ChurnParams) -> std::io::Result<ChurnResult> {
    let r = run(params);
    let mut table = Table::new(&[
        "membership",
        "victim",
        "converged after",
        "views agree at end",
        "membership bps (steady)",
    ]);
    let mut rows = Vec::new();
    for o in &r.outcomes {
        let victim = if o.victim_is_coordinator {
            "coordinator"
        } else {
            "member"
        };
        let latency = o
            .convergence_s
            .map_or("never".to_string(), |s| format!("{s:.0} s"));
        table.row(vec![
            o.mode.clone(),
            victim.to_string(),
            latency.clone(),
            o.final_views_agree.to_string(),
            format!("{:.0}", o.membership_bps),
        ]);
        // Absent measurements are empty CSV fields (not a -1.0
        // sentinel a consumer could mistake for a measured value).
        rows.push(vec![
            o.mode.clone(),
            victim.to_string(),
            o.convergence_s.map_or_else(String::new, |s| s.to_string()),
            o.final_views_agree.to_string(),
            format!("{:.1}", o.membership_bps),
        ]);
    }
    println!(
        "Membership churn — view convergence after a crash (n={}, SWIM budget {:.0} s)",
        params.n,
        params.swim.detection_budget_s(params.n)
    );
    println!("{}", table.render());
    write_csv(
        crate::results_path("churn.csv"),
        &[
            "membership",
            "victim",
            "convergence_s",
            "views_agree",
            "membership_bps",
        ],
        &rows,
    )?;

    // Phase breakdown of the crash→convergence interval, one row per
    // (scenario, phase); scenarios that never converged contribute no
    // rows. Durations sum to the scenario's convergence_s exactly.
    let phase_rows: Vec<Vec<String>> = r
        .outcomes
        .iter()
        .flat_map(|o| {
            let victim = if o.victim_is_coordinator {
                "coordinator"
            } else {
                "member"
            };
            o.phases.iter().map(move |p| {
                vec![
                    o.mode.clone(),
                    victim.to_string(),
                    p.name.to_string(),
                    format!("{:.3}", p.start_s),
                    format!("{:.3}", p.end_s),
                    format!("{:.3}", p.duration_s()),
                ]
            })
        })
        .collect();
    write_csv(
        crate::results_path("churn_phases.csv"),
        &[
            "membership",
            "victim",
            "phase",
            "start_s",
            "end_s",
            "duration_s",
        ],
        &phase_rows,
    )?;

    // The richest causal episode of a SWIM crash, Perfetto-loadable.
    if let Some(o) = r.outcomes.iter().find(|o| !o.episode.is_empty()) {
        let trace_path = crate::results_path("churn_trace.json");
        std::fs::write(&trace_path, apor_telemetry::chrome_trace_json(&o.episode))?;
        println!(
            "episode trace -> {} ({} spans)",
            trace_path.display(),
            o.episode.len()
        );
    }

    // The aggregated fleet telemetry, one JSON object per scenario.
    let mut json = String::from("{\n  \"arms\": [");
    for (k, o) in r.outcomes.iter().enumerate() {
        if k > 0 {
            json.push(',');
        }
        let victim = if o.victim_is_coordinator {
            "coordinator"
        } else {
            "member"
        };
        json.push_str(&format!(
            "\n    {{\"membership\": \"{}\", \"victim\": \"{victim}\", \"telemetry\": {}}}",
            o.mode,
            o.telemetry.to_json().trim_end()
        ));
    }
    json.push_str("\n  ]\n}\n");
    let json_path = crate::results_path("churn_telemetry.json");
    std::fs::write(&json_path, json)?;
    println!("fleet telemetry -> {}", json_path.display());
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChurnParams {
        ChurnParams {
            n: 10,
            kill: 3,
            kill_at_s: 60.0,
            horizon_s: 120.0,
            ..Default::default()
        }
    }

    /// The acceptance scenario: with SWIM, a scheduled failure is
    /// detected and all surviving views agree within the protocol's
    /// detection budget, deterministically from the master seed.
    #[test]
    fn swim_converges_within_budget_and_deterministically() {
        let params = quick();
        let a = run_scenario(&params, MembershipMode::Swim, params.kill);
        // Ship the causal evidence with any failure below.
        let _dump = apor_telemetry::DumpOnPanic::new("churn", a.spans.clone(), 20);
        let budget = params.swim.detection_budget_s(params.n);
        let latency = a.convergence_s.expect("swim must converge");
        assert!(
            latency <= budget,
            "convergence {latency:.0}s exceeds budget {budget:.0}s"
        );
        assert!(a.final_views_agree);
        // The crash's causal episode must reconstruct detection end to
        // end and export as valid, properly nested trace JSON, with a
        // phase breakdown summing to the measured convergence latency.
        let kinds = crate::trace_support::kinds_present(&a.episode);
        for k in [
            SpanKind::Episode,
            SpanKind::Failure,
            SpanKind::Suspicion,
            SpanKind::Confirm,
            SpanKind::GossipHop,
            SpanKind::ViewInstall,
        ] {
            assert!(
                kinds.contains(&k),
                "episode must contain a {k:?} span, has {kinds:?}"
            );
        }
        apor_telemetry::validate_chrome_trace(&apor_telemetry::chrome_trace_json(&a.episode))
            .expect("episode export must validate");
        let total: f64 = a.phases.iter().map(Phase::duration_s).sum();
        assert!(
            (total - latency).abs() <= 0.1 * latency,
            "phase sum {total:.3}s must match convergence_s {latency:.3}s"
        );
        // Bit-determinism: the identical master seed reproduces the
        // identical outcome.
        let b = run_scenario(&params, MembershipMode::Swim, params.kill);
        assert_eq!(a.convergence_s, b.convergence_s);
        assert_eq!(a.membership_bps, b.membership_bps);
    }

    /// The coordinator-victim scenario separates the designs: SWIM
    /// converges, the centralized service cannot.
    #[test]
    fn coordinator_loss_separates_the_designs() {
        let params = quick();
        let swim = run_scenario(&params, MembershipMode::Swim, 0);
        assert!(
            swim.convergence_s.is_some(),
            "swim survives introducer loss"
        );
        let central = run_scenario(&params, MembershipMode::Centralized, 0);
        assert_eq!(
            central.convergence_s, None,
            "centralized must not converge after losing its coordinator"
        );
    }
}
