//! Grid-quorum construction for scalable all-pairs overlay routing.
//!
//! This crate implements the combinatorial core of *Scaling All-Pairs
//! Overlay Routing* (Sontag, Zhang, Phanishayee, Andersen, Karger —
//! CoNEXT 2009), section 3: a grid quorum system in which every node is
//! assigned a set of *rendezvous servers* such that
//!
//! 1. every pair of nodes shares at least one (in fact, at least two)
//!    rendezvous servers, and
//! 2. rendezvous load is evenly distributed — every node serves at most
//!    `2·√n` clients.
//!
//! Property (1) is what makes the paper's two-round routing protocol find
//! *provably optimal* one-hop routes: for any pair `(i, j)` some node `k`
//! receives the full link-state tables of both `i` and `j`, so `k` can
//! compute their best intersection and return it to both.
//!
//! The crate is pure and allocation-light: a [`Grid`] is a description of
//! node *positions* (row-major placement of `0..n`), and all rendezvous
//! relations are computed from positions. Higher layers map overlay
//! membership (sorted node IDs) onto grid positions, exactly as the paper's
//! membership service does (section 5).
//!
//! # Quickstart
//!
//! ```
//! use apor_quorum::Grid;
//!
//! let grid = Grid::new(9); // 3×3 grid, figure 2 of the paper
//! // Node 8 (the paper's node "9") has rendezvous servers: its row and column.
//! let servers = grid.rendezvous_servers(8);
//! assert_eq!(servers, vec![2, 5, 6, 7]);
//! // Every pair of nodes shares at least two rendezvous servers:
//! assert!(grid.common_rendezvous(0, 8).len() >= 2);
//! ```
//!
//! # Non-perfect squares
//!
//! When `n` is not a perfect square the last grid row is incomplete and the
//! naive construction loses the intersection property for some pairs. The
//! paper's fix (section 3, "Non perfect-square grids") pairs each node of
//! the incomplete last row with the tail of the corresponding full row;
//! [`Grid`] implements exactly that assignment and the tests verify the
//! intersection property for every `n` up to several hundred.
//!
//! # Lower bound (Appendix A)
//!
//! The [`diamonds`](count_diamonds) helpers implement the counting argument
//! of the paper's Appendix A: the complete graph contains `3·C(n,4)`
//! diamonds, while any set of `e` edges contains at most `e²`, so any
//! comparison-based algorithm needs `Ω(n√n)` per-node communication.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diamonds;
mod grid;
mod id;

pub use diamonds::{count_diamonds, diamonds_upper_bound, unique_diamonds_in_complete_graph};
pub use grid::{Grid, GridShape};
pub use id::NodeId;
