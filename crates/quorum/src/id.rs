//! Overlay node identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact overlay node identifier.
///
/// The paper's wire format (section 5, "Table Exchange") encodes node IDs
/// as 2-byte integers, which bounds the overlay at 65 536 nodes — far above
/// the "hundreds of nodes" the system targets and the 10 000-node Skype
/// scenario of section 2.
///
/// `NodeId` is the *stable identity* of a node across membership changes.
/// It is distinct from the node's *grid index*: the membership service
/// sorts the current member IDs and places them row-major into the grid, so
/// the same `NodeId` may occupy different grid cells as membership evolves.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// The number of bytes a `NodeId` occupies on the wire.
    pub const WIRE_SIZE: usize = 2;

    /// Construct from a raw index, panicking if it exceeds the 16-bit space.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "node index {index} exceeds u16");
        NodeId(index as u16)
    }

    /// The identifier as a `usize`, convenient for table indexing.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u16 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(7).to_string(), "n7");
    }

    #[test]
    fn from_index_roundtrip() {
        let id = NodeId::from_index(512);
        assert_eq!(id.index(), 512);
        assert_eq!(u16::from(id), 512);
        assert_eq!(NodeId::from(512u16), id);
    }

    #[test]
    #[should_panic(expected = "exceeds u16")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(usize::from(u16::MAX) + 1);
    }

    #[test]
    fn ordering_matches_raw() {
        assert!(NodeId(3) < NodeId(4));
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
