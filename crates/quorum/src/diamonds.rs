//! The diamond-counting argument of Appendix A.
//!
//! The paper lower-bounds the per-node communication of any algorithm that
//! finds optimal one-hop routes by *comparing* alternative one-hop paths.
//! Each comparison of two alternative one-hop paths between a pair of nodes
//! corresponds to a **diamond** — a 4-cycle `a−b−c−d` — whose four edge
//! weights must all be known at some node.
//!
//! * Lemma 2: the complete graph on `n` nodes contains `3·C(n,4)` distinct
//!   diamonds (each 4-subset yields the square, hourglass and bow-tie).
//! * Lemma 3: any set of `e` edges contains at most `e²` diamonds.
//! * Theorem 4: if every node receives `e` edges, all nodes together cover
//!   at most `n·e²` diamonds; covering all `Θ(n⁴)` requires
//!   `e = Ω(n·√n)` — matching the grid-quorum algorithm's cost.
//!
//! [`count_diamonds`] enumerates diamonds in an explicit edge set so the
//! property tests can check Lemma 3 directly on random graphs.

use std::collections::HashSet;

/// Number of distinct diamonds (4-cycles) in the complete graph on `n`
/// nodes: `3·C(n,4)` (Lemma 2).
///
/// Returns `u128` because the count grows as `n⁴`.
#[must_use]
pub fn unique_diamonds_in_complete_graph(n: usize) -> u128 {
    if n < 4 {
        return 0;
    }
    let n = n as u128;
    // 3 · n(n−1)(n−2)(n−3)/24 = n(n−1)(n−2)(n−3)/8
    n * (n - 1) * (n - 2) * (n - 3) / 8
}

/// Lemma 3's bound: `e` edges form at most `e²` diamonds.
#[must_use]
pub fn diamonds_upper_bound(edges: usize) -> u128 {
    (edges as u128) * (edges as u128)
}

/// Count the diamonds (4-cycles, as undirected subgraphs) present in an
/// explicit edge set.
///
/// A diamond `a−b−c−d` requires edges `(a,b)`, `(b,c)`, `(c,d)`, `(d,a)`.
/// Two diamonds are the same when they consist of the same 4 edges.
/// Enumeration is `O(p²)` in the number `p` of connected wedges, intended
/// for the small graphs used in tests and the lower-bound demo — not for
/// production-sized inputs.
#[must_use]
pub fn count_diamonds(edges: &[(usize, usize)]) -> u128 {
    // Canonicalize edges, dropping self-loops and duplicates.
    let edge_set: HashSet<(usize, usize)> = edges
        .iter()
        .filter(|&&(a, b)| a != b)
        .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
        .collect();
    let has = |a: usize, b: usize| edge_set.contains(&if a < b { (a, b) } else { (b, a) });

    let nodes: Vec<usize> = {
        let mut s: Vec<usize> = edge_set.iter().flat_map(|&(a, b)| [a, b]).collect();
        s.sort_unstable();
        s.dedup();
        s
    };

    // A 4-cycle a−b−c−d is determined by its two "diagonal" pairs {a, c}
    // and {b, d}: a and c are the endpoints of one diagonal, b and d of the
    // other. Enumerate diagonal pairs {a, c} (a < c) and count common
    // neighbours; each unordered pair of common neighbours {b, d} closes
    // one diamond. Each diamond has exactly two diagonals, so summing
    // C(common, 2) over all diagonals counts every diamond twice.
    let mut twice = 0u128;
    for (ai, &a) in nodes.iter().enumerate() {
        for &c in nodes.iter().skip(ai + 1) {
            let common = nodes
                .iter()
                .filter(|&&b| b != a && b != c && has(a, b) && has(c, b))
                .count() as u128;
            twice += common * common.saturating_sub(1) / 2;
        }
    }
    twice / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> Vec<(usize, usize)> {
        let mut e = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                e.push((i, j));
            }
        }
        e
    }

    #[test]
    fn lemma_2_matches_enumeration() {
        for n in 0..=9 {
            let formula = unique_diamonds_in_complete_graph(n);
            let enumerated = count_diamonds(&complete_graph(n));
            assert_eq!(formula, enumerated, "n = {n}");
        }
    }

    #[test]
    fn lemma_2_known_values() {
        assert_eq!(unique_diamonds_in_complete_graph(3), 0);
        // C(4,4) = 1 subset × 3 diamonds.
        assert_eq!(unique_diamonds_in_complete_graph(4), 3);
        // 3 · C(5,4) = 15.
        assert_eq!(unique_diamonds_in_complete_graph(5), 15);
        // 3 · C(6,4) = 45.
        assert_eq!(unique_diamonds_in_complete_graph(6), 45);
    }

    #[test]
    fn single_square_counts_once() {
        let square = [(0, 1), (1, 2), (2, 3), (3, 0)];
        assert_eq!(count_diamonds(&square), 1);
    }

    #[test]
    fn four_edges_at_most_one_diamond() {
        // Lemma 3 base case: any 4 edges form at most 1 diamond — and a
        // path of 4 edges forms none.
        let path = [(0, 1), (1, 2), (2, 3), (3, 4)];
        assert_eq!(count_diamonds(&path), 0);
    }

    #[test]
    fn duplicate_and_loop_edges_ignored() {
        let noisy = [(0, 1), (1, 0), (1, 1), (1, 2), (2, 3), (3, 0)];
        assert_eq!(count_diamonds(&noisy), 1);
    }

    #[test]
    fn lemma_3_on_complete_graphs() {
        for n in 4..=9 {
            let edges = complete_graph(n);
            assert!(
                count_diamonds(&edges) <= diamonds_upper_bound(edges.len()),
                "n = {n}"
            );
        }
    }

    #[test]
    fn theorem_4_quorum_edges_suffice_in_aggregate() {
        // Sanity check on the counting argument's arithmetic: with each of
        // the n nodes receiving e = Θ(n√n) edge weights (as in the quorum
        // algorithm), n·e² dominates the 3·C(n,4) ≈ n⁴/8 diamonds.
        for n in [16usize, 64, 144, 400] {
            let e = 2 * (n as f64).sqrt() as usize * n; // 2√n link-state rows of n entries
            let coverage = (n as u128) * diamonds_upper_bound(e);
            assert!(coverage >= unique_diamonds_in_complete_graph(n), "n = {n}");
        }
    }
}
