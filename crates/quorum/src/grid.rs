//! The grid quorum of section 3, including the non-perfect-square
//! construction and the rendezvous-set algebra built on top of it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Integer square root (largest `f` with `f² ≤ n`).
fn isqrt(n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let mut f = (n as f64).sqrt() as usize;
    // Float sqrt can be off by one near perfect squares; fix up exactly.
    while (f + 1) * (f + 1) <= n {
        f += 1;
    }
    while f * f > n {
        f -= 1;
    }
    f
}

/// The dimensions of a quorum grid.
///
/// The paper (section 3, footnote 5) sizes the grid as follows: with
/// `a = √n − ⌊√n⌋`, use a `⌈√n⌉ × ⌊√n⌋` grid when `a < 0.5` and a
/// `⌈√n⌉ × ⌈√n⌉` grid otherwise. In integer arithmetic (used here so the
/// construction is exact), `a < 0.5 ⇔ n ≤ f·(f+1)` for `f = ⌊√n⌋`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridShape {
    /// Number of grid rows. The last row may be only partially filled.
    pub rows: usize,
    /// Number of grid columns.
    pub cols: usize,
}

impl GridShape {
    /// The paper's grid shape for `n` nodes (footnote 5).
    #[must_use]
    pub fn for_nodes(n: usize) -> Self {
        assert!(n > 0, "a quorum grid needs at least one node");
        let f = isqrt(n);
        if n == f * f {
            GridShape { rows: f, cols: f }
        } else if n <= f * (f + 1) {
            // a < 0.5: ⌈√n⌉ × ⌊√n⌋
            GridShape {
                rows: f + 1,
                cols: f,
            }
        } else {
            // a ≥ 0.5: ⌈√n⌉ × ⌈√n⌉
            GridShape {
                rows: f + 1,
                cols: f + 1,
            }
        }
    }

    /// A custom shape (for ablation studies on quorum geometry).
    ///
    /// Returns `None` unless the shape can hold `n` nodes with a non-empty
    /// last row, which the rendezvous construction requires.
    #[must_use]
    pub fn custom(n: usize, rows: usize, cols: usize) -> Option<Self> {
        if n == 0 || rows == 0 || cols == 0 {
            return None;
        }
        if rows * cols < n || (rows - 1) * cols >= n {
            return None;
        }
        Some(GridShape { rows, cols })
    }

    /// Total cell count (≥ the number of nodes placed).
    #[must_use]
    pub fn cells(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for GridShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}", self.rows, self.cols)
    }
}

/// A grid quorum over nodes `0..n`, placed row-major.
///
/// The grid operates on *grid indices*, not overlay [`NodeId`]s: the
/// membership layer sorts the live member IDs and assigns index `i` to the
/// `i`-th smallest, exactly as the paper's membership service populates the
/// grid "from a sorted list of member IDs" (section 5). Consequently every
/// node with the same membership view derives the identical grid.
///
/// # Rendezvous relations
///
/// * [`rendezvous_set`](Grid::rendezvous_set) — the quorum `Rᵢ` *including*
///   `i` itself (a node trivially knows its own link state). Intersection
///   guarantees are stated on these sets.
/// * [`rendezvous_servers`](Grid::rendezvous_servers) — `Rᵢ \ {i}`: the
///   nodes `i` actually sends link state to in round one.
/// * [`rendezvous_clients`](Grid::rendezvous_clients) — the nodes that send
///   *their* link state to `i`; in the grid construction this equals the
///   server set (the relation is symmetric, including the incomplete-row
///   extras).
///
/// [`NodeId`]: crate::NodeId
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid {
    n: usize,
    shape: GridShape,
    /// Number of nodes in the (possibly incomplete) last row.
    last_row_len: usize,
}

impl Grid {
    /// Build the paper's grid for `n ≥ 1` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_shape(n, GridShape::for_nodes(n))
    }

    /// Build a grid with a custom (validated) shape.
    ///
    /// # Panics
    /// Panics if the shape cannot hold `n` nodes with a non-empty last row.
    #[must_use]
    pub fn with_shape(n: usize, shape: GridShape) -> Self {
        assert!(n > 0, "a quorum grid needs at least one node");
        assert!(
            shape.rows * shape.cols >= n && (shape.rows - 1) * shape.cols < n,
            "shape {shape} cannot hold {n} nodes with a non-empty last row"
        );
        let last_row_len = n - (shape.rows - 1) * shape.cols;
        Grid {
            n,
            shape,
            last_row_len,
        }
    }

    /// Number of nodes in the grid.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the grid holds no nodes. (Never true: construction
    /// requires `n ≥ 1`; provided for API completeness.)
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The grid's shape.
    #[must_use]
    pub fn shape(&self) -> GridShape {
        self.shape
    }

    /// Number of nodes in the last (possibly incomplete) row.
    #[must_use]
    pub fn last_row_len(&self) -> usize {
        self.last_row_len
    }

    /// True when the last row is full, i.e. `n = rows·cols`.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.last_row_len == self.shape.cols
    }

    /// The `(row, col)` position of node `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ n`.
    #[must_use]
    pub fn position(&self, i: usize) -> (usize, usize) {
        assert!(i < self.n, "node {i} out of range for grid of {}", self.n);
        (i / self.shape.cols, i % self.shape.cols)
    }

    /// The node at `(row, col)`, or `None` for an empty cell / out of range.
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> Option<usize> {
        if row >= self.shape.rows || col >= self.shape.cols {
            return None;
        }
        let i = row * self.shape.cols + col;
        (i < self.n).then_some(i)
    }

    /// All nodes in grid row `row` (left to right).
    pub fn row_members(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let cols = self.shape.cols;
        let n = self.n;
        (0..cols)
            .map(move |c| row * cols + c)
            .filter(move |&i| i < n)
    }

    /// All nodes in grid column `col` (top to bottom).
    pub fn col_members(&self, col: usize) -> impl Iterator<Item = usize> + '_ {
        let cols = self.shape.cols;
        let n = self.n;
        (0..self.shape.rows)
            .map(move |r| r * cols + col)
            .filter(move |&i| i < n)
    }

    /// Extra rendezvous partners introduced by the incomplete-last-row fix.
    ///
    /// With `k` nodes in the incomplete last row, the paper pairs the
    /// bottom-row node in column `i` (for `i < k`) with the nodes at
    /// `(i, j)` for `k ≤ j < cols` — and symmetrically. This restores the
    /// "rendezvous in every row and every column" property that blank
    /// cells would otherwise break.
    pub fn extra_partners(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = self.position(i);
        let k = self.last_row_len;
        let cols = self.shape.cols;
        let bottom = self.shape.rows - 1;
        let complete = self.is_complete();

        // Case 1: `i` is in the incomplete bottom row → partners are the
        // tail (columns k..cols) of row `c`.
        let from_bottom = (!complete && r == bottom)
            .then(|| (k..cols).filter_map(move |j| self.at(c, j)))
            .into_iter()
            .flatten();
        // Case 2: `i` is a tail node (column ≥ k) in row < k → partner is
        // the bottom-row node in column `r`.
        let from_tail = (!complete && r != bottom && c >= k && r < k)
            .then(|| self.at(bottom, r))
            .flatten();

        from_bottom.chain(from_tail)
    }

    /// The rendezvous set `Rᵢ` *including* `i` itself: all nodes in `i`'s
    /// row and column, plus incomplete-row extras. Sorted, deduplicated.
    #[must_use]
    pub fn rendezvous_set(&self, i: usize) -> Vec<usize> {
        let (r, c) = self.position(i);
        let mut set: Vec<usize> = self
            .row_members(r)
            .chain(self.col_members(c))
            .chain(self.extra_partners(i))
            .collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// The rendezvous servers of `i` — `Rᵢ` without `i` itself; the nodes
    /// that receive `i`'s link state in round one. Sorted.
    #[must_use]
    pub fn rendezvous_servers(&self, i: usize) -> Vec<usize> {
        let mut set = self.rendezvous_set(i);
        set.retain(|&x| x != i);
        set
    }

    /// The rendezvous clients of `i` — the nodes whose link state `i`
    /// receives, and to whom `i` sends recommendations in round two.
    ///
    /// In the grid construction this relation is symmetric, so it equals
    /// [`rendezvous_servers`](Self::rendezvous_servers); kept as a separate
    /// method because the routing layer is written against the client/server
    /// distinction and other quorum constructions need not be symmetric.
    #[must_use]
    pub fn rendezvous_clients(&self, i: usize) -> Vec<usize> {
        self.rendezvous_servers(i)
    }

    /// True when `server` is a rendezvous server of `i` (or `i` itself).
    #[must_use]
    pub fn serves(&self, server: usize, i: usize) -> bool {
        if server == i {
            return true;
        }
        let (ri, ci) = self.position(i);
        let (rs, cs) = self.position(server);
        if ri == rs || ci == cs {
            return true;
        }
        self.extra_partners(i).any(|p| p == server)
    }

    /// The common rendezvous nodes of `i` and `j` (`Rᵢ ∩ Rⱼ`, including the
    /// endpoints themselves when applicable). Sorted.
    ///
    /// For every pair of distinct nodes this has at least two elements —
    /// the redundancy that section 4 relies on for failure tolerance.
    #[must_use]
    pub fn common_rendezvous(&self, i: usize, j: usize) -> Vec<usize> {
        let a = self.rendezvous_set(i);
        let b = self.rendezvous_set(j);
        intersect_sorted(&a, &b)
    }

    /// The *default* rendezvous pair for `(i, j)`: the row/column crossing
    /// points `(rowᵢ, colⱼ)` and `(rowⱼ, colᵢ)` when they exist.
    ///
    /// These are the two servers a node expects recommendations for `j`
    /// from under failure-free operation; the failover machinery (section
    /// 4.1) watches exactly these.
    #[must_use]
    pub fn default_rendezvous_pair(&self, i: usize, j: usize) -> Vec<usize> {
        let (ri, ci) = self.position(i);
        let (rj, cj) = self.position(j);
        let mut out: Vec<usize> = [self.at(ri, cj), self.at(rj, ci)]
            .into_iter()
            .flatten()
            .collect();
        out.sort_unstable();
        out.dedup();
        // Blank crossing cells (incomplete grid): fall back to any common
        // rendezvous, which the extras guarantee to exist.
        if out.is_empty() {
            out = self.common_rendezvous(i, j);
        }
        out
    }

    /// Failover candidates for reaching destination `dst` (section 4.1):
    /// the nodes of `dst`'s row and column — all of which receive `dst`'s
    /// link state — excluding `dst` itself.
    #[must_use]
    pub fn failover_candidates(&self, dst: usize) -> Vec<usize> {
        self.rendezvous_servers(dst)
    }

    /// Upper bound on any node's rendezvous degree, `2·√n` in the paper.
    #[must_use]
    pub fn max_rendezvous_degree(&self) -> usize {
        2 * self.shape.rows.max(self.shape.cols)
    }

    /// Iterate over all nodes of the grid.
    pub fn nodes(&self) -> impl Iterator<Item = usize> {
        0..self.n
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Grid({} nodes, {})", self.n, self.shape)?;
        for r in 0..self.shape.rows {
            for c in 0..self.shape.cols {
                match self.at(r, c) {
                    Some(i) => write!(f, "{i:>5}")?,
                    None => write!(f, "    .")?,
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Intersection of two sorted, deduplicated slices.
fn intersect_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::new();
    let (mut x, mut y) = (0, 0);
    while x < a.len() && y < b.len() {
        match a[x].cmp(&b[y]) {
            std::cmp::Ordering::Less => x += 1,
            std::cmp::Ordering::Greater => y += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[x]);
                x += 1;
                y += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isqrt_exact() {
        for n in 0..10_000usize {
            let f = isqrt(n);
            assert!(f * f <= n, "isqrt({n}) = {f} too big");
            assert!((f + 1) * (f + 1) > n, "isqrt({n}) = {f} too small");
        }
    }

    #[test]
    fn paper_shapes() {
        // n = 9 → 3×3 (figure 2).
        assert_eq!(GridShape::for_nodes(9), GridShape { rows: 3, cols: 3 });
        // n = 18 → 5×4 (the worked example in section 3).
        assert_eq!(GridShape::for_nodes(18), GridShape { rows: 5, cols: 4 });
        // n = 12 → 4×3: a = √12−3 ≈ 0.46 < 0.5.
        assert_eq!(GridShape::for_nodes(12), GridShape { rows: 4, cols: 3 });
        // n = 13 → 4×4: a = √13−3 ≈ 0.61 ≥ 0.5.
        assert_eq!(GridShape::for_nodes(13), GridShape { rows: 4, cols: 4 });
        // Degenerate sizes.
        assert_eq!(GridShape::for_nodes(1), GridShape { rows: 1, cols: 1 });
        assert_eq!(GridShape::for_nodes(2), GridShape { rows: 2, cols: 1 });
        assert_eq!(GridShape::for_nodes(3), GridShape { rows: 2, cols: 2 });
    }

    #[test]
    fn shape_always_fits_with_nonempty_last_row() {
        for n in 1..2_000usize {
            let s = GridShape::for_nodes(n);
            assert!(s.cells() >= n, "n={n}: {s} too small");
            assert!(
                (s.rows - 1) * s.cols < n,
                "n={n}: {s} leaves the last row empty"
            );
        }
    }

    #[test]
    fn custom_shape_validation() {
        assert!(GridShape::custom(10, 5, 2).is_some());
        assert!(GridShape::custom(10, 2, 5).is_some());
        // Too small.
        assert!(GridShape::custom(10, 3, 3).is_none());
        // Last row would be empty.
        assert!(GridShape::custom(10, 6, 2).is_none());
        assert!(GridShape::custom(0, 1, 1).is_none());
        assert!(GridShape::custom(4, 0, 4).is_none());
    }

    #[test]
    fn figure_2_rendezvous_sets() {
        // The paper's 3×3 example, figure 2/3, translated to 0-based IDs:
        // paper node 9 = index 8 at position (2,2). Its rendezvous servers
        // are paper nodes {3, 6, 7, 8} = indices {2, 5, 6, 7}.
        let g = Grid::new(9);
        assert_eq!(g.position(8), (2, 2));
        assert_eq!(g.rendezvous_servers(8), vec![2, 5, 6, 7]);
        assert_eq!(g.rendezvous_set(8), vec![2, 5, 6, 7, 8]);
        // Paper nodes 9 and 1 (indices 8 and 0) share rendezvous at the
        // crossings (row 0, col 2) = index 2 and (row 2, col 0) = index 6.
        assert_eq!(g.default_rendezvous_pair(0, 8), vec![2, 6]);
        assert_eq!(g.common_rendezvous(0, 8), vec![2, 6]);
    }

    #[test]
    fn figure_3_round2_rendezvous_knows_both() {
        // In figure 3, node 3 (index 2) is a rendezvous server for node 9
        // (index 8) and recommends hops towards nodes 1, 2, 3, 6.
        let g = Grid::new(9);
        assert!(g.rendezvous_servers(8).contains(&2));
        // Node 2's clients are its row {0,1} and column {5, 8}.
        assert_eq!(g.rendezvous_clients(2), vec![0, 1, 5, 8]);
    }

    #[test]
    fn paper_18_node_example_extras() {
        // Section 3's 5×4 example with 18 nodes: last row has k = 2 nodes
        // (paper nodes 17, 18 = indices 16, 17). The paper pairs node 17
        // with (1, 3..4) (= indices 2, 3) and node 18 with (2, 3..4)
        // (= indices 6, 7).
        let g = Grid::new(18);
        assert_eq!(g.last_row_len(), 2);
        let extras16: Vec<usize> = g.extra_partners(16).collect();
        assert_eq!(extras16, vec![2, 3]);
        let extras17: Vec<usize> = g.extra_partners(17).collect();
        assert_eq!(extras17, vec![6, 7]);
        // Symmetry: the tail nodes see the bottom nodes as partners.
        assert_eq!(g.extra_partners(2).collect::<Vec<_>>(), vec![16]);
        assert_eq!(g.extra_partners(7).collect::<Vec<_>>(), vec![17]);
        // Non-tail nodes and tail nodes in rows ≥ k get no extras.
        assert_eq!(g.extra_partners(0).count(), 0);
        assert_eq!(g.extra_partners(11).count(), 0); // (2,3)? index 11 = (2,3): row 2 < k? k=2, row 2 ≥ k → none
        assert_eq!(g.extra_partners(15).count(), 0); // (3,3): row 3 ≥ k → none
    }

    #[test]
    fn intersection_property_exhaustive_small() {
        // Every pair of distinct nodes shares at least two rendezvous nodes
        // (counting the endpoints themselves when they qualify), for every
        // overlay size up to 200.
        for n in 2..=200usize {
            let g = Grid::new(n);
            for i in 0..n {
                for j in (i + 1)..n {
                    let common = g.common_rendezvous(i, j);
                    assert!(
                        common.len() >= 2,
                        "n={n}, pair ({i},{j}): common rendezvous {common:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn default_pair_members_serve_both() {
        for n in [9usize, 18, 50, 140, 144] {
            let g = Grid::new(n);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let pair = g.default_rendezvous_pair(i, j);
                    assert!(!pair.is_empty());
                    for &k in &pair {
                        assert!(g.serves(k, i), "n={n}: {k} !serves {i}");
                        assert!(g.serves(k, j), "n={n}: {k} !serves {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn rendezvous_degree_bounded() {
        for n in 2..=400usize {
            let g = Grid::new(n);
            let bound = g.max_rendezvous_degree();
            for i in 0..n {
                let servers = g.rendezvous_servers(i).len();
                assert!(
                    servers <= bound,
                    "n={n}, node {i}: {servers} servers > bound {bound}"
                );
            }
        }
    }

    #[test]
    fn symmetry_of_rendezvous_relation() {
        for n in 2..=300usize {
            let g = Grid::new(n);
            for i in 0..n {
                for &s in &g.rendezvous_servers(i) {
                    assert!(
                        g.rendezvous_servers(s).contains(&i),
                        "n={n}: {s} serves {i} but not vice versa"
                    );
                }
            }
        }
    }

    #[test]
    fn row_col_membership() {
        let g = Grid::new(18);
        assert_eq!(g.row_members(4).collect::<Vec<_>>(), vec![16, 17]);
        assert_eq!(g.col_members(0).collect::<Vec<_>>(), vec![0, 4, 8, 12, 16]);
        assert_eq!(g.col_members(3).collect::<Vec<_>>(), vec![3, 7, 11, 15]);
        assert_eq!(g.at(4, 2), None);
        assert_eq!(g.at(5, 0), None);
        assert_eq!(g.at(0, 4), None);
    }

    #[test]
    fn serves_is_consistent_with_sets() {
        for n in [7usize, 23, 90, 141] {
            let g = Grid::new(n);
            for i in 0..n {
                let set = g.rendezvous_set(i);
                for s in 0..n {
                    assert_eq!(
                        set.contains(&s),
                        g.serves(s, i),
                        "n={n} serves({s},{i}) mismatch"
                    );
                }
            }
        }
    }

    #[test]
    fn display_renders_blank_cells() {
        let g = Grid::new(5);
        let s = g.to_string();
        assert!(s.contains('.'), "incomplete grid should show blanks: {s}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn position_out_of_range_panics() {
        let _ = Grid::new(4).position(4);
    }

    #[test]
    fn single_node_grid() {
        let g = Grid::new(1);
        assert_eq!(g.rendezvous_servers(0), Vec::<usize>::new());
        assert_eq!(g.rendezvous_set(0), vec![0]);
        assert!(g.is_complete());
    }

    #[test]
    fn two_node_grid() {
        let g = Grid::new(2);
        assert_eq!(g.rendezvous_servers(0), vec![1]);
        assert_eq!(g.rendezvous_servers(1), vec![0]);
        assert_eq!(g.common_rendezvous(0, 1), vec![0, 1]);
    }

    #[test]
    fn message_count_bound_theorem_1() {
        // Theorem 1: each node sends at most 4√n messages total across the
        // two rounds — 2(√n−1)-ish servers in round 1 plus the same set of
        // clients in round 2.
        for n in [4usize, 9, 16, 25, 100, 140, 144, 400] {
            let g = Grid::new(n);
            let sqrt_n = (n as f64).sqrt();
            for i in 0..n {
                let msgs = g.rendezvous_servers(i).len() + g.rendezvous_clients(i).len();
                assert!(
                    msgs as f64 <= 4.0 * sqrt_n + 4.0,
                    "n={n}, node {i}: {msgs} messages > 4√n"
                );
            }
        }
    }
}
