//! Property-based tests for the grid quorum invariants that the routing
//! protocol's correctness rests on (Theorem 1 and the section 3
//! non-perfect-square construction).

use apor_quorum::{count_diamonds, diamonds_upper_bound, Grid, GridShape};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Every pair of distinct nodes shares at least two rendezvous nodes,
    /// for arbitrary overlay sizes (sampled; exhaustive coverage up to 200
    /// lives in the unit tests).
    #[test]
    fn pairwise_double_intersection(n in 2usize..1200, seed in any::<u64>()) {
        let g = Grid::new(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let nodes: Vec<usize> = (0..n).collect();
        for _ in 0..64 {
            let pick: Vec<usize> = nodes.choose_multiple(&mut rng, 2).copied().collect();
            let (i, j) = (pick[0], pick[1]);
            let common = g.common_rendezvous(i, j);
            prop_assert!(common.len() >= 2, "n={n} pair ({i},{j}) common={common:?}");
        }
    }

    /// Rendezvous load stays balanced: no node has more than 2·max(R,C)
    /// servers or clients, i.e. ~2√n.
    #[test]
    fn degree_balance(n in 1usize..1200) {
        let g = Grid::new(n);
        let bound = g.max_rendezvous_degree();
        for i in 0..n {
            prop_assert!(g.rendezvous_servers(i).len() <= bound);
            prop_assert!(g.rendezvous_clients(i).len() <= bound);
        }
    }

    /// The rendezvous relation is symmetric even with the incomplete-row
    /// extra assignments.
    #[test]
    fn relation_symmetry(n in 2usize..600) {
        let g = Grid::new(n);
        for i in 0..n {
            for s in g.rendezvous_servers(i) {
                prop_assert!(g.rendezvous_servers(s).contains(&i));
            }
        }
    }

    /// Positions and `at` are inverse to each other.
    #[test]
    fn position_at_roundtrip(n in 1usize..2000) {
        let g = Grid::new(n);
        for i in 0..n {
            let (r, c) = g.position(i);
            prop_assert_eq!(g.at(r, c), Some(i));
        }
        // And blank cells really are blank.
        let shape = g.shape();
        for r in 0..shape.rows {
            for c in 0..shape.cols {
                if let Some(i) = g.at(r, c) {
                    prop_assert_eq!(g.position(i), (r, c));
                }
            }
        }
    }

    /// The default rendezvous pair always serves both endpoints and is a
    /// subset of the full common-rendezvous set.
    #[test]
    fn default_pair_subset_of_common(n in 2usize..500, seed in any::<u64>()) {
        let g = Grid::new(n);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let nodes: Vec<usize> = (0..n).collect();
        for _ in 0..32 {
            let pick: Vec<usize> = nodes.choose_multiple(&mut rng, 2).copied().collect();
            let (i, j) = (pick[0], pick[1]);
            let common = g.common_rendezvous(i, j);
            for k in g.default_rendezvous_pair(i, j) {
                prop_assert!(common.contains(&k));
            }
        }
    }

    /// Lemma 3 of Appendix A on random edge sets: e edges ⇒ at most e²
    /// diamonds.
    #[test]
    fn lemma_3_random_graphs(
        edges in prop::collection::vec((0usize..12, 0usize..12), 0..40)
    ) {
        let mut canon: Vec<(usize, usize)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        prop_assert!(count_diamonds(&canon) <= diamonds_upper_bound(canon.len()));
    }

    /// Custom (ablation) shapes keep the intersection property as long as
    /// they satisfy the construction's preconditions.
    #[test]
    fn custom_shapes_keep_intersection(n in 4usize..300, rows_delta in 0usize..4) {
        let base = GridShape::for_nodes(n);
        let rows = base.rows + rows_delta;
        // Derive a matching column count; skip invalid combinations.
        let cols = n.div_ceil(rows);
        if let Some(shape) = GridShape::custom(n, rows, cols) {
            let g = Grid::with_shape(n, shape);
            for i in 0..n.min(40) {
                for j in (i + 1)..n.min(40) {
                    let common = g.common_rendezvous(i, j);
                    prop_assert!(
                        !common.is_empty(),
                        "shape {shape} pair ({i},{j}) has no rendezvous"
                    );
                }
            }
        }
    }
}
