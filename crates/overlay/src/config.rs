//! Per-node overlay configuration.

use apor_membership::{AntiEntropyConfig, SwimConfig};
use apor_quorum::NodeId;
use apor_routing::ProtocolConfig;
use serde::{Deserialize, Serialize};

/// Which routing algorithm the node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// RON's original full-mesh link-state broadcast (`Θ(n²)`).
    FullMesh,
    /// The paper's two-round grid-quorum algorithm (`Θ(n√n)`).
    Quorum,
}

impl Algorithm {
    /// The paper's default protocol parameters for this algorithm
    /// (30 s routing interval for full-mesh, 15 s for quorum).
    #[must_use]
    pub fn default_protocol(self) -> ProtocolConfig {
        match self {
            Algorithm::FullMesh => ProtocolConfig::ron(),
            Algorithm::Quorum => ProtocolConfig::quorum(),
        }
    }
}

/// How a node's periodic work (probe polls, SWIM ticks) is scheduled.
///
/// Both modes run the identical protocol state machines; they differ
/// only in *when* the driver is asked to call back, which is why the
/// deterministic-replay test can demand bit-identical routing state
/// from both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Scheduling {
    /// Wake exactly when the prober/SWIM state machine next has work
    /// (`next_wake`), coalescing to one outstanding timer per plane.
    /// Idle nodes schedule no wakeups at all, so simulating a large
    /// quiescent overlay costs nothing per tick — the contract the
    /// `apor-netsim` event loop is built around.
    #[default]
    Coalesced,
    /// Poll on a fixed short tick (0.5 s probe poll, 0.25 s SWIM tick)
    /// regardless of pending work. The original driver loop; kept as
    /// the replay baseline and for drivers without precise timers.
    FixedTick,
}

/// How the overlay learns who its members are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum MembershipMode {
    /// The paper's centralized coordinator (section 5): simple, but a
    /// single point of failure.
    #[default]
    Centralized,
    /// Decentralized SWIM gossip (`apor-membership`): coordinator-free
    /// failure detection with agreed, monotonically versioned views.
    Swim,
}

/// Configuration of one overlay node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeConfig {
    /// This node's stable identity.
    pub id: NodeId,
    /// The membership coordinator's identity ([`MembershipMode::Centralized`]),
    /// or the introducer a joining node contacts first
    /// ([`MembershipMode::Swim`]).
    pub coordinator: NodeId,
    /// Which membership plane the node runs.
    pub membership: MembershipMode,
    /// SWIM protocol parameters (used in [`MembershipMode::Swim`]; the
    /// per-node gossip seed is derived from [`NodeConfig::seed`]).
    pub swim: SwimConfig,
    /// Routing algorithm to run.
    pub algorithm: Algorithm,
    /// Protocol timing parameters. The sub-quadratic probing knobs live
    /// here: `probe_policy` / `probe_sample_budget` select entitled +
    /// sampled probing, `probe_interval_max_s` / `probe_backoff` /
    /// `probe_snap_frac` shape the per-link adaptive rate (see
    /// [`ProtocolConfig::with_subquadratic_probing`]).
    pub protocol: ProtocolConfig,
    /// Timer discipline for periodic work (default:
    /// [`Scheduling::Coalesced`] — idle nodes arm no timers).
    pub scheduling: Scheduling,
    /// Seed for this node's local randomness (failover picks, phases).
    pub seed: u64,
    /// Join retry period while not yet in the membership view, seconds.
    pub join_retry_s: f64,
    /// Keepalive (re-join) period towards the coordinator, seconds.
    pub keepalive_s: f64,
    /// Coordinator-side membership timeout (paper: 30 minutes), seconds.
    pub member_timeout_s: f64,
    /// Pre-installed membership (skips the join dance). Used by the
    /// steady-state experiments, where the paper measures "after all
    /// nodes have joined".
    pub static_members: Option<Vec<NodeId>>,
    /// Causal-trace flight-recorder capacity in spans (per node).
    /// `0` (the default) disables tracing entirely: no spans are
    /// recorded, no trace context rides the wire, and every
    /// instrumentation site reduces to one relaxed bool load.
    pub trace_capacity: usize,
}

impl NodeConfig {
    /// A node configuration with the paper's defaults.
    #[must_use]
    pub fn new(id: NodeId, coordinator: NodeId, algorithm: Algorithm) -> Self {
        NodeConfig {
            id,
            coordinator,
            membership: MembershipMode::Centralized,
            swim: SwimConfig::default(),
            algorithm,
            protocol: algorithm.default_protocol(),
            scheduling: Scheduling::default(),
            seed: 0x5EED ^ u64::from(id.0),
            join_retry_s: 5.0,
            keepalive_s: 600.0,
            member_timeout_s: 30.0 * 60.0,
            static_members: None,
            trace_capacity: 0,
        }
    }

    /// Enable causal tracing with a bounded per-node flight recorder
    /// of `capacity` spans (convergence experiments use 1024).
    #[must_use]
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Pre-install a static membership view (no join traffic).
    #[must_use]
    pub fn with_static_members(mut self, members: Vec<NodeId>) -> Self {
        self.static_members = Some(members);
        self
    }

    /// Select the timer discipline (see [`Scheduling`]).
    #[must_use]
    pub fn with_scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Run the decentralized SWIM membership plane instead of the
    /// centralized coordinator.
    #[must_use]
    pub fn with_swim(mut self) -> Self {
        self.membership = MembershipMode::Swim;
        self
    }

    /// Same node, custom SWIM parameters (implies [`Self::with_swim`]).
    #[must_use]
    pub fn with_swim_config(mut self, swim: SwimConfig) -> Self {
        self.membership = MembershipMode::Swim;
        self.swim = swim;
        self
    }

    /// Same node, custom anti-entropy knobs on the SWIM plane (implies
    /// [`Self::with_swim`]). `AntiEntropyConfig::disabled()` turns the
    /// periodic push-pull reconciliation off — the ablation arm of
    /// `experiments::partition`.
    #[must_use]
    pub fn with_anti_entropy(mut self, anti_entropy: AntiEntropyConfig) -> Self {
        self.membership = MembershipMode::Swim;
        self.swim.anti_entropy = anti_entropy;
        self
    }

    /// Is this node the membership coordinator?
    #[must_use]
    pub fn is_coordinator(&self) -> bool {
        self.id == self.coordinator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table() {
        let q = NodeConfig::new(NodeId(3), NodeId(0), Algorithm::Quorum);
        assert_eq!(q.protocol.routing_interval_s, 15.0);
        assert_eq!(q.protocol.probe_interval_s, 30.0);
        assert!(!q.is_coordinator());
        assert_eq!(q.member_timeout_s, 1800.0);
        let r = NodeConfig::new(NodeId(0), NodeId(0), Algorithm::FullMesh);
        assert_eq!(r.protocol.routing_interval_s, 30.0);
        assert!(r.is_coordinator());
    }

    #[test]
    fn seeds_differ_per_node() {
        let a = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum);
        let b = NodeConfig::new(NodeId(2), NodeId(0), Algorithm::Quorum);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn membership_mode_defaults_and_builders() {
        let c = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum);
        assert_eq!(c.membership, MembershipMode::Centralized);
        let s = c.clone().with_swim();
        assert_eq!(s.membership, MembershipMode::Swim);
        let custom = c.with_swim_config(SwimConfig {
            period_s: 1.0,
            ping_timeout_s: 0.25,
            ..SwimConfig::default()
        });
        assert_eq!(custom.membership, MembershipMode::Swim);
        assert_eq!(custom.swim.period_s, 1.0);
    }

    #[test]
    fn anti_entropy_builder_implies_swim() {
        let c = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum)
            .with_anti_entropy(AntiEntropyConfig::disabled());
        assert_eq!(c.membership, MembershipMode::Swim);
        assert!(!c.swim.anti_entropy.enabled);
        let on = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum).with_anti_entropy(
            AntiEntropyConfig {
                sync_period_s: 2.0,
                ..AntiEntropyConfig::default()
            },
        );
        assert!(on.swim.anti_entropy.enabled);
        assert_eq!(on.swim.anti_entropy.sync_period_s, 2.0);
    }

    #[test]
    fn scheduling_builder_and_default() {
        let c = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum);
        assert_eq!(c.scheduling, Scheduling::Coalesced);
        let f = c.with_scheduling(Scheduling::FixedTick);
        assert_eq!(f.scheduling, Scheduling::FixedTick);
    }

    #[test]
    fn static_members_installed() {
        let c = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum).with_static_members(vec![
            NodeId(0),
            NodeId(1),
            NodeId(2),
        ]);
        assert_eq!(c.static_members.as_ref().unwrap().len(), 3);
    }
}
