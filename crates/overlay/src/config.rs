//! Per-node overlay configuration.

use apor_quorum::NodeId;
use apor_routing::ProtocolConfig;
use serde::{Deserialize, Serialize};

/// Which routing algorithm the node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// RON's original full-mesh link-state broadcast (`Θ(n²)`).
    FullMesh,
    /// The paper's two-round grid-quorum algorithm (`Θ(n√n)`).
    Quorum,
}

impl Algorithm {
    /// The paper's default protocol parameters for this algorithm
    /// (30 s routing interval for full-mesh, 15 s for quorum).
    #[must_use]
    pub fn default_protocol(self) -> ProtocolConfig {
        match self {
            Algorithm::FullMesh => ProtocolConfig::ron(),
            Algorithm::Quorum => ProtocolConfig::quorum(),
        }
    }
}

/// Configuration of one overlay node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeConfig {
    /// This node's stable identity.
    pub id: NodeId,
    /// The membership coordinator's identity.
    pub coordinator: NodeId,
    /// Routing algorithm to run.
    pub algorithm: Algorithm,
    /// Protocol timing parameters.
    pub protocol: ProtocolConfig,
    /// Seed for this node's local randomness (failover picks, phases).
    pub seed: u64,
    /// Join retry period while not yet in the membership view, seconds.
    pub join_retry_s: f64,
    /// Keepalive (re-join) period towards the coordinator, seconds.
    pub keepalive_s: f64,
    /// Coordinator-side membership timeout (paper: 30 minutes), seconds.
    pub member_timeout_s: f64,
    /// Pre-installed membership (skips the join dance). Used by the
    /// steady-state experiments, where the paper measures "after all
    /// nodes have joined".
    pub static_members: Option<Vec<NodeId>>,
}

impl NodeConfig {
    /// A node configuration with the paper's defaults.
    #[must_use]
    pub fn new(id: NodeId, coordinator: NodeId, algorithm: Algorithm) -> Self {
        NodeConfig {
            id,
            coordinator,
            algorithm,
            protocol: algorithm.default_protocol(),
            seed: 0x5EED ^ u64::from(id.0),
            join_retry_s: 5.0,
            keepalive_s: 600.0,
            member_timeout_s: 30.0 * 60.0,
            static_members: None,
        }
    }

    /// Pre-install a static membership view (no join traffic).
    #[must_use]
    pub fn with_static_members(mut self, members: Vec<NodeId>) -> Self {
        self.static_members = Some(members);
        self
    }

    /// Is this node the membership coordinator?
    #[must_use]
    pub fn is_coordinator(&self) -> bool {
        self.id == self.coordinator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table() {
        let q = NodeConfig::new(NodeId(3), NodeId(0), Algorithm::Quorum);
        assert_eq!(q.protocol.routing_interval_s, 15.0);
        assert_eq!(q.protocol.probe_interval_s, 30.0);
        assert!(!q.is_coordinator());
        assert_eq!(q.member_timeout_s, 1800.0);
        let r = NodeConfig::new(NodeId(0), NodeId(0), Algorithm::FullMesh);
        assert_eq!(r.protocol.routing_interval_s, 30.0);
        assert!(r.is_coordinator());
    }

    #[test]
    fn seeds_differ_per_node() {
        let a = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum);
        let b = NodeConfig::new(NodeId(2), NodeId(0), Algorithm::Quorum);
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn static_members_installed() {
        let c = NodeConfig::new(NodeId(1), NodeId(0), Algorithm::Quorum)
            .with_static_members(vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c.static_members.as_ref().unwrap().len(), 3);
    }
}
