//! The sans-io overlay node: membership client, prober and router glued
//! into one event-driven state machine.
//!
//! The node reacts to exactly three stimuli — `on_start`, `on_packet`,
//! `on_timer` — and responds by filling an [`Outbox`] with packets to send
//! and timers to arm. It never touches sockets or clocks, so the netsim
//! driver ([`SimNode`](crate::simnode::SimNode)) and the tokio UDP driver
//! ([`udp`](crate::udp)) run the identical protocol logic; this is how the
//! paper can claim its emulation and deployment share one implementation.
//!
//! ## Index vs identity
//!
//! Routers and probers operate in *grid-index space* (positions in the
//! current sorted membership view). The wire carries *identities*
//! ([`NodeId`]). This module owns the translation at the boundary, in
//! both directions, including the `dst`/`hop` fields inside
//! recommendation messages.

use crate::config::{Algorithm, MembershipMode, NodeConfig, Scheduling};
use crate::membership::{Coordinator, MembershipView};
use apor_linkstate::{Message, ProbeBatchMsg, ProbeItem, ProbeMsg, ProbeReplyMsg};
use apor_membership::{wire as swim_wire, Swim, SwimMsg};
use apor_netsim::TrafficClass;
use apor_quorum::NodeId;
use apor_routing::{
    FullMeshRouter, ProbeAction, Prober, QuorumRouter, RouteDecision, RoutingAlgorithm,
};
use apor_telemetry::{EventKind, Histogram, Severity, SpanKind, Telemetry, TraceCtx, Tracer};

/// The concrete router running inside a node.
// The size gap between the two routers is fine: exactly one RouterBox
// exists per node, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum RouterBox {
    /// RON's full-mesh baseline.
    FullMesh(FullMeshRouter),
    /// The paper's grid-quorum router.
    Quorum(QuorumRouter),
}

impl RouterBox {
    fn as_dyn(&self) -> &dyn RoutingAlgorithm {
        match self {
            RouterBox::FullMesh(r) => r,
            RouterBox::Quorum(r) => r,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn RoutingAlgorithm {
        match self {
            RouterBox::FullMesh(r) => r,
            RouterBox::Quorum(r) => r,
        }
    }
}
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Timer token: prober poll loop.
pub const TOKEN_PROBE: u64 = 1;
/// Timer token: routing interval tick.
pub const TOKEN_ROUTING: u64 = 2;
/// Timer token: join retry / keepalive.
pub const TOKEN_JOIN: u64 = 3;
/// Timer token: coordinator membership-expiry sweep.
pub const TOKEN_EXPIRE: u64 = 4;
/// Timer token: SWIM gossip tick ([`MembershipMode::Swim`]).
pub const TOKEN_SWIM: u64 = 5;

/// How often the prober's poll loop runs under
/// [`Scheduling::FixedTick`], seconds.
const PROBE_POLL_S: f64 = 0.5;
/// Coordinator expiry sweep period, seconds.
const EXPIRE_SWEEP_S: f64 = 60.0;
/// SWIM timer granularity under [`Scheduling::FixedTick`], seconds
/// (must undercut the ping timeout).
const SWIM_TICK_S: f64 = 0.25;
/// Slack when comparing armed wake times: two wakes closer than this
/// are the same instant (drivers only promise f64 time arithmetic).
const TIMER_EPS: f64 = 1e-9;

/// Commands produced by one callback.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Packets to transmit: `(destination, class, encoded bytes)`.
    pub sends: Vec<(NodeId, TrafficClass, Bytes)>,
    /// Timers to arm: `(delay seconds, token)`.
    pub timers: Vec<(f64, u64)>,
}

impl Outbox {
    fn send(&mut self, to: NodeId, msg: &Message) {
        self.sends.push((to, class_of(msg), msg.encode()));
    }

    fn timer(&mut self, delay_s: f64, token: u64) {
        self.timers.push((delay_s, token));
    }
}

/// Traffic class of a message, matching the paper's bandwidth breakdown.
#[must_use]
pub fn class_of(msg: &Message) -> TrafficClass {
    match msg {
        Message::Probe(_) | Message::ProbeReply(_) | Message::ProbeBatch(_) => {
            TrafficClass::Probing
        }
        Message::LinkState(_) | Message::LinkStateSparse(_) | Message::Recommendations(_) => {
            TrafficClass::Routing
        }
        Message::Join { .. } | Message::Leave { .. } | Message::View(_) => TrafficClass::Membership,
    }
}

/// The overlay node state machine.
pub struct OverlayNode {
    cfg: NodeConfig,
    telemetry: Telemetry,
    rng: ChaCha8Rng,
    view: Option<MembershipView>,
    my_index: Option<usize>,
    prober: Option<Prober>,
    router: Option<RouterBox>,
    coordinator: Option<Coordinator>,
    swim: Option<Swim>,
    routing_tick_armed: bool,
    shut_down: bool,
    /// Earliest outstanding [`TOKEN_PROBE`] timer under
    /// [`Scheduling::Coalesced`]; `∞` = none armed. Timers cannot be
    /// cancelled, so stale ones fire, process harmlessly (polling only
    /// emits *due* work) and re-arm through the same dedupe.
    armed_probe_wake: f64,
    /// Earliest outstanding [`TOKEN_SWIM`] timer ([`Scheduling::Coalesced`]).
    armed_swim_wake: f64,
    /// Sizes of outgoing anti-entropy sync frames, bytes.
    sync_frame_bytes: Histogram,
    /// Causal-trace flight recorder. Disabled (zero-capacity) unless
    /// [`NodeConfig::trace_capacity`] is set; every instrumentation
    /// site below guards on [`Tracer::enabled`] — one relaxed load.
    tracer: Tracer,
}

impl OverlayNode {
    /// Build a node from its configuration.
    #[must_use]
    pub fn new(cfg: NodeConfig) -> Self {
        cfg.protocol.validate();
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let telemetry = Telemetry::new(u32::from(cfg.id.0));
        let sync_frame_bytes = telemetry.histogram("membership", "sync_frame_bytes");
        let tracer = if cfg.trace_capacity > 0 {
            Tracer::new(u32::from(cfg.id.0), cfg.trace_capacity)
        } else {
            Tracer::disabled()
        };
        OverlayNode {
            cfg,
            telemetry,
            rng,
            view: None,
            my_index: None,
            prober: None,
            router: None,
            coordinator: None,
            swim: None,
            routing_tick_armed: false,
            shut_down: false,
            armed_probe_wake: f64::INFINITY,
            armed_swim_wake: f64::INFINITY,
            sync_frame_bytes,
            tracer,
        }
    }

    /// This node's identity.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.cfg.id
    }

    /// The installed membership view.
    #[must_use]
    pub fn view(&self) -> Option<&MembershipView> {
        self.view.as_ref()
    }

    /// This node's grid index in the current view.
    #[must_use]
    pub fn my_index(&self) -> Option<usize> {
        self.my_index
    }

    /// Is the node a functioning overlay member (view installed, prober
    /// and router running)?
    #[must_use]
    pub fn is_member(&self) -> bool {
        self.my_index.is_some() && self.router.is_some()
    }

    /// The node's configuration.
    #[must_use]
    pub fn config(&self) -> &NodeConfig {
        &self.cfg
    }

    /// This node's telemetry registry. Every subsystem the node runs
    /// (SWIM membership, the quorum router, its row store) reports into
    /// this handle; experiments snapshot it per node and
    /// [`merge`](apor_telemetry::Snapshot::merge) across the fleet.
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// This node's causal-trace flight recorder. Disabled unless the
    /// node was configured with [`NodeConfig::with_tracing`];
    /// experiments drain it with [`Tracer::recent`] after a
    /// convergence episode and assemble the fleet-wide causal tree.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    /// Node start-up.
    pub fn on_start(&mut self, now: f64, out: &mut Outbox) {
        match self.cfg.membership {
            MembershipMode::Centralized => self.start_centralized(now, out),
            MembershipMode::Swim => self.start_swim(now, out),
        }
        match self.cfg.scheduling {
            Scheduling::FixedTick => out.timer(PROBE_POLL_S, TOKEN_PROBE),
            // install_view (when a view is already known) armed the
            // prober wake; a node without a view has nothing to probe
            // and arms it on its first view install instead.
            Scheduling::Coalesced => self.arm_probe(now, out),
        }
    }

    /// The paper's join dance against the coordinator.
    fn start_centralized(&mut self, now: f64, out: &mut Outbox) {
        if self.cfg.is_coordinator() {
            self.coordinator = Some(Coordinator::new(
                self.cfg.id,
                now,
                self.cfg.member_timeout_s,
            ));
            out.timer(EXPIRE_SWEEP_S, TOKEN_EXPIRE);
        }
        if let Some(members) = self.cfg.static_members.clone() {
            let view = MembershipView::new(1, members);
            self.install_view(view, now, out);
        } else if self.cfg.is_coordinator() {
            let view = self.coordinator.as_ref().expect("just built").view();
            self.install_view(view, now, out);
            out.timer(self.cfg.keepalive_s, TOKEN_JOIN);
        } else {
            out.send(
                self.cfg.coordinator,
                &Message::Join {
                    from: self.cfg.id,
                    to: self.cfg.coordinator,
                },
            );
            out.timer(self.cfg.join_retry_s, TOKEN_JOIN);
        }
    }

    /// Coordinator-free start: bring up the SWIM gossip plane. With
    /// static members every node bootstraps the identical initial view;
    /// otherwise the `coordinator` field names the introducer this node
    /// pings first, and the join disseminates by gossip.
    fn start_swim(&mut self, now: f64, out: &mut Outbox) {
        let swim_cfg = self
            .cfg
            .swim
            .clone()
            .with_seed(self.cfg.seed ^ self.cfg.swim.seed);
        let mut swim = if let Some(members) = self.cfg.static_members.clone() {
            Swim::bootstrap(self.cfg.id, swim_cfg, &members)
        } else if self.cfg.id == self.cfg.coordinator {
            Swim::bootstrap(self.cfg.id, swim_cfg, &[self.cfg.id])
        } else {
            Swim::new(self.cfg.id, swim_cfg, &[self.cfg.coordinator])
        }
        .with_telemetry(self.telemetry.clone())
        .with_tracer(self.tracer.clone());
        if let Some((version, members)) = swim.poll_view(now) {
            self.install_view(MembershipView::new(version, members), now, out);
        }
        self.swim = Some(swim);
        match self.cfg.scheduling {
            Scheduling::FixedTick => out.timer(SWIM_TICK_S, TOKEN_SWIM),
            Scheduling::Coalesced => self.arm_swim(now, out),
        }
    }

    /// Graceful shutdown: announce the departure on whichever
    /// membership plane the node runs, so the rest of the overlay
    /// reconfigures immediately instead of waiting for failure
    /// detection. Drivers call this exactly once, flush `out`, and then
    /// stop delivering events; any events that still arrive are
    /// ignored. Idempotent.
    pub fn on_shutdown(&mut self, now: f64, out: &mut Outbox) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        match self.cfg.membership {
            MembershipMode::Swim => {
                let mut msgs = Vec::new();
                if let Some(swim) = self.swim.as_mut() {
                    swim.leave(&mut msgs);
                }
                for (to, msg) in msgs {
                    self.send_swim(now, to, &msg, out);
                }
            }
            MembershipMode::Centralized => {
                if !self.cfg.is_coordinator() {
                    out.send(
                        self.cfg.coordinator,
                        &Message::Leave {
                            from: self.cfg.id,
                            to: self.cfg.coordinator,
                        },
                    );
                }
            }
        }
    }

    /// Has [`OverlayNode::on_shutdown`] run?
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.shut_down
    }

    /// A timer armed with `token` fired.
    pub fn on_timer(&mut self, now: f64, token: u64, out: &mut Outbox) {
        if self.shut_down {
            return;
        }
        match token {
            TOKEN_PROBE => {
                match self.cfg.scheduling {
                    Scheduling::FixedTick => out.timer(PROBE_POLL_S, TOKEN_PROBE),
                    Scheduling::Coalesced => {
                        if (now - self.armed_probe_wake).abs() <= TIMER_EPS {
                            self.armed_probe_wake = f64::INFINITY;
                        }
                    }
                }
                self.run_prober(now, out);
                self.arm_probe(now, out);
            }
            TOKEN_ROUTING => {
                out.timer(self.cfg.protocol.routing_interval_s, TOKEN_ROUTING);
                self.run_routing_tick(now, out);
            }
            TOKEN_JOIN => {
                if self.cfg.is_coordinator() {
                    if let Some(c) = &mut self.coordinator {
                        c.heartbeat_self(self.cfg.id, now);
                    }
                    out.timer(self.cfg.keepalive_s, TOKEN_JOIN);
                } else if self.cfg.static_members.is_none() {
                    // Retry fast until in a view, then keepalive slowly.
                    out.send(
                        self.cfg.coordinator,
                        &Message::Join {
                            from: self.cfg.id,
                            to: self.cfg.coordinator,
                        },
                    );
                    let delay = if self.is_member() {
                        self.cfg.keepalive_s
                    } else {
                        self.cfg.join_retry_s
                    };
                    out.timer(delay, TOKEN_JOIN);
                }
            }
            TOKEN_EXPIRE => {
                out.timer(EXPIRE_SWEEP_S, TOKEN_EXPIRE);
                if let Some(c) = &mut self.coordinator {
                    c.heartbeat_self(self.cfg.id, now);
                    if c.expire(now) {
                        let view = c.view();
                        self.broadcast_view(&view, out);
                        self.install_view(view, now, out);
                    }
                }
            }
            TOKEN_SWIM if self.swim.is_some() => {
                match self.cfg.scheduling {
                    Scheduling::FixedTick => out.timer(SWIM_TICK_S, TOKEN_SWIM),
                    Scheduling::Coalesced => {
                        if (now - self.armed_swim_wake).abs() <= TIMER_EPS {
                            self.armed_swim_wake = f64::INFINITY;
                        }
                    }
                }
                self.run_swim_tick(now, out);
                self.arm_swim(now, out);
            }
            _ => {}
        }
    }

    /// A packet arrived.
    pub fn on_packet(&mut self, now: f64, payload: &[u8], out: &mut Outbox) {
        if self.shut_down {
            return;
        }
        // The SWIM plane owns its tag space; dispatch on the first byte.
        if payload.first().copied().is_some_and(swim_wire::is_swim_tag) {
            self.on_swim_packet(now, payload, out);
            return;
        }
        let Ok((msg, probe_ctx)) = Message::decode_traced(payload) else {
            return; // malformed datagrams are dropped silently
        };
        if let Some(ctx) = probe_ctx {
            // A traced probe batch: the sender is reprobing as part of
            // a convergence episode. Arm our prober so the answering
            // activity is attributed to the same episode.
            if let Some(prober) = self.prober.as_mut() {
                prober.note_episode(ctx);
            }
        }
        match &msg {
            Message::Probe(p) => {
                // Liveness works at identity level, independent of views.
                out.send(
                    p.from,
                    &Message::ProbeReply(ProbeReplyMsg {
                        from: self.cfg.id,
                        to: p.from,
                        view: p.view,
                        seq: p.seq,
                        echo_sent_ms: p.sent_ms,
                    }),
                );
            }
            Message::ProbeReply(r) => {
                if let (Some(view), Some(prober)) = (&self.view, &mut self.prober) {
                    if let Some(idx) = view.index_of(r.from) {
                        prober.on_reply(idx, r.seq, now);
                    }
                }
            }
            Message::ProbeBatch(b) => {
                // Pings are answered at identity level (like Probe);
                // pongs and gauges feed the prober in index space.
                let mut reply_items = Vec::new();
                let peer = self.view.as_ref().and_then(|view| view.index_of(b.from));
                for item in &b.items {
                    match *item {
                        ProbeItem::Ping { seq, sent_ms } => {
                            reply_items.push(ProbeItem::Pong {
                                seq,
                                echo_sent_ms: sent_ms,
                            });
                        }
                        ProbeItem::Pong { seq, .. } => {
                            if let (Some(idx), Some(prober)) = (peer, self.prober.as_mut()) {
                                prober.on_reply(idx, seq, now);
                            }
                        }
                        ProbeItem::Gauge { rtt_ms, loss_pm } => {
                            if let (Some(idx), Some(prober)) = (peer, self.prober.as_mut()) {
                                prober.adopt_gauge(idx, rtt_ms, loss_pm, now);
                            }
                        }
                    }
                }
                if !reply_items.is_empty() {
                    out.send(
                        b.from,
                        &Message::ProbeBatch(ProbeBatchMsg {
                            from: self.cfg.id,
                            to: b.from,
                            view: b.view,
                            items: reply_items,
                        }),
                    );
                }
            }
            Message::LinkState(_) | Message::LinkStateSparse(_) | Message::Recommendations(_) => {
                if let Some(inner) = self.wire_to_index(&msg) {
                    let replies = match &mut self.router {
                        Some(router) => router.as_dyn_mut().on_message(now, &inner),
                        None => Vec::new(),
                    };
                    for reply in replies {
                        self.send_index_msg(&reply, out);
                    }
                }
            }
            Message::Join { from, .. } => {
                if let Some(c) = &mut self.coordinator {
                    let changed = c.on_join(*from, now);
                    let view = c.view();
                    if changed {
                        self.broadcast_view(&view, out);
                        self.install_view(view, now, out);
                    } else {
                        // Keepalive: refresh the sender's copy of the view.
                        out.send(
                            *from,
                            &Message::View(apor_linkstate::wire::ViewMsg {
                                from: self.cfg.id,
                                to: *from,
                                view: view.version,
                                members: view.members,
                            }),
                        );
                    }
                }
            }
            Message::Leave { from, .. } => {
                if let Some(c) = &mut self.coordinator {
                    if c.on_leave(*from) {
                        let view = c.view();
                        self.broadcast_view(&view, out);
                        self.install_view(view, now, out);
                    }
                }
            }
            Message::View(v) => {
                let view = MembershipView::new(v.view, v.members.clone());
                self.install_view(view, now, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Metrics / inspection (used by experiments)
    // ------------------------------------------------------------------

    /// Best first hop towards `dst` (`Some(dst)` ⇒ direct link).
    #[must_use]
    pub fn best_hop(&self, dst: NodeId, now: f64) -> Option<NodeId> {
        let view = self.view.as_ref()?;
        let router = self.router.as_ref()?;
        let idx = view.index_of(dst)?;
        let hop = router.as_dyn().best_hop(idx, now)?;
        view.id_of(hop)
    }

    /// The full relay path towards `dst` when the current route is a
    /// source-routed spliced detour (identity space, `[me, …, dst]`).
    ///
    /// `None` whenever forwarding is single-hop — a recommendation,
    /// the direct link, or a 1-hop scavenge, where each relay
    /// re-decides from its own tables — or when there is no route at
    /// all. Spliced detours are the exception: the source commits to
    /// the chain it derived from its own rows, so the carried path is
    /// what the packet follows.
    #[must_use]
    pub fn detour_path(&self, dst: NodeId, now: f64) -> Option<Vec<NodeId>> {
        let view = self.view.as_ref()?;
        let idx = view.index_of(dst)?;
        match self.quorum_router()?.route_decision(idx, now)? {
            RouteDecision::Spliced(d) => d
                .path
                .iter()
                .map(|&i| view.id_of(i))
                .collect::<Option<Vec<_>>>(),
            RouteDecision::Hop(_) => None,
        }
    }

    /// Seconds since the last routing information about `dst` arrived.
    #[must_use]
    pub fn route_age(&self, dst: NodeId, now: f64) -> Option<f64> {
        let view = self.view.as_ref()?;
        let router = self.router.as_ref()?;
        router.as_dyn().route_age(view.index_of(dst)?, now)
    }

    /// Destinations currently under a double rendezvous failure
    /// (figure 11's metric; 0 for the full-mesh baseline).
    #[must_use]
    pub fn double_rendezvous_failures(&self, now: f64) -> usize {
        self.router
            .as_ref()
            .map_or(0, |r| r.as_dyn().double_rendezvous_failures(now))
    }

    /// Concurrent direct-link failures as seen by this node's prober
    /// (figure 8's metric).
    #[must_use]
    pub fn concurrent_link_failures(&self) -> usize {
        self.prober.as_ref().map_or(0, Prober::concurrent_failures)
    }

    /// Measured (EWMA) RTT to `dst`, ms.
    #[must_use]
    pub fn measured_latency_ms(&self, dst: NodeId) -> Option<f64> {
        let view = self.view.as_ref()?;
        self.prober.as_ref()?.latency_ms(view.index_of(dst)?)
    }

    /// Borrow the quorum router, when running the quorum algorithm.
    #[must_use]
    pub fn quorum_router(&self) -> Option<&QuorumRouter> {
        match self.router.as_ref()? {
            RouterBox::Quorum(r) => Some(r),
            RouterBox::FullMesh(_) => None,
        }
    }

    /// Borrow the SWIM machine, when running [`MembershipMode::Swim`]
    /// (experiment inspection: suspicion state, ledger, incarnations).
    #[must_use]
    pub fn swim(&self) -> Option<&Swim> {
        self.swim.as_ref()
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Coalesced probe wake: one outstanding timer at the prober's
    /// `next_wake`, re-armed only when a strictly earlier wake appears.
    /// No prober (not yet a member) ⇒ no timer — the idle-node
    /// contract the netsim event loop relies on.
    fn arm_probe(&mut self, now: f64, out: &mut Outbox) {
        if self.cfg.scheduling != Scheduling::Coalesced {
            return;
        }
        let Some(prober) = &self.prober else { return };
        let wake = prober.next_wake(now);
        if wake.is_finite() && wake + TIMER_EPS < self.armed_probe_wake {
            out.timer((wake - now).max(0.0), TOKEN_PROBE);
            self.armed_probe_wake = wake;
        }
    }

    /// Coalesced SWIM wake — same discipline as [`Self::arm_probe`].
    fn arm_swim(&mut self, now: f64, out: &mut Outbox) {
        if self.cfg.scheduling != Scheduling::Coalesced {
            return;
        }
        let Some(swim) = &self.swim else { return };
        let wake = swim.next_wake(now);
        if wake.is_finite() && wake + TIMER_EPS < self.armed_swim_wake {
            out.timer((wake - now).max(0.0), TOKEN_SWIM);
            self.armed_swim_wake = wake;
        }
    }

    /// Queue one SWIM frame, feeding the sync-frame size histogram for
    /// anti-entropy traffic. While a convergence episode is hot the
    /// frame carries the trace context (hop count bumped), so receivers
    /// can reconstruct the gossip wavefront per hop.
    fn send_swim(&self, now: f64, to: NodeId, msg: &SwimMsg, out: &mut Outbox) {
        let ctx = self
            .swim
            .as_ref()
            .and_then(|s| s.gossip_trace(now))
            .map(TraceCtx::next_hop);
        let bytes = msg.encode_traced(ctx.as_ref());
        if matches!(
            msg,
            SwimMsg::SyncReq { .. }
                | SwimMsg::SyncRsp { .. }
                | SwimMsg::SyncDigest { .. }
                | SwimMsg::SyncDigestPush { .. }
        ) {
            self.sync_frame_bytes.observe(bytes.len() as u64);
        }
        out.sends.push((to, TrafficClass::Membership, bytes));
    }

    fn install_view(&mut self, view: MembershipView, now: f64, out: &mut Outbox) {
        if let Some(current) = &self.view {
            if view.version <= current.version {
                return;
            }
        }
        let my_index = view.index_of(self.cfg.id);
        let old = self.view.take();
        let old_prober = self.prober.take();
        let old_router = self.router.take();
        self.my_index = my_index;
        self.prober = None;
        // The convergence episode this install belongs to, if one is
        // hot: parents the ViewInstall/Remap spans and primes the fresh
        // prober and router so their recovery work is attributed too.
        let episode_ctx = if self.tracer.enabled() {
            self.swim.as_ref().and_then(|s| s.gossip_trace(now))
        } else {
            None
        };

        if let Some(me) = my_index {
            let n = view.len();
            let mut prober = Prober::new(me, n, self.cfg.protocol.clone(), now)
                .with_telemetry(&self.telemetry)
                .with_tracer(self.tracer.clone());
            if let Some(ctx) = episode_ctx {
                prober.note_episode(ctx);
            }
            // Carry estimator history across the view change so a
            // membership bump doesn't blind the overlay for a probing
            // interval.
            if let (Some(old_view), Some(old_prober)) = (&old, &old_prober) {
                for (new_idx, id) in view.members.iter().enumerate() {
                    if new_idx == me {
                        continue;
                    }
                    if let Some(est) = old_view
                        .index_of(*id)
                        .and_then(|old_idx| old_prober.estimator(old_idx))
                    {
                        prober.set_estimator(new_idx, est.clone());
                    }
                }
            }
            self.prober = Some(prober);
            let mut router = match self.cfg.algorithm {
                Algorithm::FullMesh => RouterBox::FullMesh(FullMeshRouter::new(
                    me,
                    n,
                    view.version,
                    self.cfg.protocol.clone(),
                )),
                Algorithm::Quorum => RouterBox::Quorum(
                    QuorumRouter::new_with_telemetry(
                        me,
                        n,
                        view.version,
                        self.cfg.protocol.clone(),
                        &self.telemetry,
                    )
                    .with_tracer(self.tracer.clone()),
                ),
            };
            if let (Some(ctx), RouterBox::Quorum(q)) = (episode_ctx, &mut router) {
                q.note_episode(ctx);
            }
            // Incremental remap: translate the old router's surviving
            // rows into the new index space by NodeId instead of
            // rebuilding from empty — a view bump relabels the grid, it
            // doesn't invalidate fresh measurements. Stale rows (older
            // than the 3-interval window) are dropped here; the
            // router's own entitlement filter drops rows whose origin
            // is no longer a rendezvous client in the new grid.
            if let (Some(old_view), Some(mut old_router)) = (&old, old_router) {
                // Routes whose destination or recommended hop departed
                // are explicitly retracted (counted in
                // `routing/routes_retracted`) rather than silently
                // dropped with the old router.
                if let RouterBox::Quorum(q) = &mut old_router {
                    let survives =
                        |idx: usize| old_view.id_of(idx).is_some_and(|id| view.contains(id));
                    q.retract_departed_routes(&survives);
                }
                let exported = old_router.as_dyn().export_rows_versioned();
                let carried = crate::remap::remap_rows_versioned(
                    &exported,
                    old_view,
                    &view,
                    now,
                    self.cfg.protocol.staleness_s(),
                );
                let carried_rows = carried.len();
                for row in &carried {
                    router.as_dyn_mut().import_row_versioned(row);
                }
                if let Some(ctx) = episode_ctx {
                    #[allow(clippy::cast_possible_truncation)]
                    self.tracer
                        .instant(SpanKind::Remap, ctx.episode, 0, carried_rows as u32, now);
                }
            }
            self.router = Some(router);
            if !self.routing_tick_armed {
                // Desynchronize routing ticks across the fleet.
                let phase = self
                    .rng
                    .gen_range(0.0..self.cfg.protocol.routing_interval_s);
                out.timer(phase, TOKEN_ROUTING);
                self.routing_tick_armed = true;
            }
            // The fresh prober's schedule replaces the old one's.
            self.armed_probe_wake = f64::INFINITY;
            self.arm_probe(now, out);
        }
        if let Some(ctx) = episode_ctx {
            // Parent the install on the Confirm span when this node is
            // the one that confirmed the failure; elsewhere it hangs
            // off the episode root.
            let parent = self
                .swim
                .as_ref()
                .and_then(|s| s.last_confirm())
                .filter(|&(ep, _)| ep == ctx.episode)
                .map_or(0, |(_, span)| span);
            self.tracer.instant(
                SpanKind::ViewInstall,
                ctx.episode,
                parent,
                view.version,
                now,
            );
        }
        self.telemetry.event(
            now,
            Severity::Info,
            EventKind::ViewInstalled {
                version: u64::from(view.version),
                members: view.len() as u32,
            },
        );
        self.view = Some(view);
    }

    fn broadcast_view(&self, view: &MembershipView, out: &mut Outbox) {
        for &m in &view.members {
            if m == self.cfg.id {
                continue;
            }
            out.send(
                m,
                &Message::View(apor_linkstate::wire::ViewMsg {
                    from: self.cfg.id,
                    to: m,
                    view: view.version,
                    members: view.members.clone(),
                }),
            );
        }
    }

    /// One SWIM timer tick: drive the protocol, transmit its messages,
    /// and install a freshly published view when the batching cadence
    /// yields one.
    fn run_swim_tick(&mut self, now: f64, out: &mut Outbox) {
        let (msgs, published) = {
            let Some(swim) = self.swim.as_mut() else {
                return;
            };
            let mut msgs = Vec::new();
            swim.on_tick(now, &mut msgs);
            (msgs, swim.poll_view(now))
        };
        for (to, msg) in msgs {
            self.send_swim(now, to, &msg, out);
        }
        if let Some((version, members)) = published {
            self.install_view(MembershipView::new(version, members), now, out);
        }
    }

    /// A datagram from the SWIM tag space arrived.
    fn on_swim_packet(&mut self, now: f64, payload: &[u8], out: &mut Outbox) {
        let Ok((msg, ctx)) = SwimMsg::decode_traced(payload) else {
            return; // malformed datagrams are dropped silently
        };
        let Some(swim) = self.swim.as_mut() else {
            return; // not running the gossip plane
        };
        if let Some(ctx) = ctx {
            // One span per receiving node per gossip hop: the episode's
            // wavefront through the fleet, aux = hop distance from the
            // first suspecting node.
            self.tracer
                .instant(SpanKind::GossipHop, ctx.episode, 0, u32::from(ctx.hop), now);
            swim.note_remote_trace(now, ctx);
        }
        let mut replies = Vec::new();
        swim.on_message(now, &msg, &mut replies);
        for (to, reply) in replies {
            self.send_swim(now, to, &reply, out);
        }
        // A message can start suspicions, relays or a pending publish
        // whose deadlines undercut the currently armed wake.
        self.arm_swim(now, out);
    }

    fn run_prober(&mut self, now: f64, out: &mut Outbox) {
        let (Some(view), Some(prober)) = (&self.view, &mut self.prober) else {
            return;
        };
        let Some(_me) = self.my_index else { return };
        let version = view.version;
        // `poll_traced` hands back the armed episode context exactly
        // once, on the first poll that emits work after a view change;
        // the batches it produced carry the context (hop bumped) so the
        // probed peers attribute the reprobe wave to the episode.
        let (actions, episode) = prober.poll_traced(now);
        let batch_ctx = episode.map(TraceCtx::next_hop);
        for action in actions {
            match action {
                ProbeAction::SendProbe { to, seq } => {
                    let Some(to_id) = view.id_of(to) else {
                        continue;
                    };
                    out.send(
                        to_id,
                        &Message::Probe(ProbeMsg {
                            from: self.cfg.id,
                            to: to_id,
                            view: version,
                            seq,
                            sent_ms: (now * 1000.0) as u32,
                        }),
                    );
                }
                ProbeAction::SendBatch { to, items } => {
                    let Some(to_id) = view.id_of(to) else {
                        continue;
                    };
                    let msg = Message::ProbeBatch(ProbeBatchMsg {
                        from: self.cfg.id,
                        to: to_id,
                        view: version,
                        items,
                    });
                    out.sends
                        .push((to_id, class_of(&msg), msg.encode_traced(batch_ctx.as_ref())));
                }
            }
        }
        // Links the 5-failure rule just declared dead retract their
        // routes now (seqno bump + feasibility withdrawal) instead of
        // waiting for the next routing tick's own-row diff.
        if let Some(prober) = &mut self.prober {
            let losses = prober.take_link_losses();
            if let Some(RouterBox::Quorum(q)) = &mut self.router {
                for peer in losses {
                    q.on_link_loss(peer, now);
                }
            }
        }
    }

    fn run_routing_tick(&mut self, now: f64, out: &mut Outbox) {
        let (Some(prober), Some(router)) = (&self.prober, &mut self.router) else {
            return;
        };
        let row = prober.own_row(now);
        let msgs = router
            .as_dyn_mut()
            .on_routing_tick(now, &row, &mut self.rng);
        for m in msgs {
            self.send_index_msg(&m, out);
        }
    }

    /// Translate a router-produced (index-space) message to identity space
    /// and queue it.
    fn send_index_msg(&self, msg: &Message, out: &mut Outbox) {
        let Some(view) = &self.view else { return };
        let map = |idx_id: NodeId| view.id_of(idx_id.index());
        match msg {
            Message::LinkState(ls) => {
                let (Some(from), Some(to)) = (map(ls.from), map(ls.to)) else {
                    return;
                };
                let mut wire = ls.clone();
                wire.from = from;
                wire.to = to;
                out.send(to, &Message::LinkState(wire));
            }
            Message::LinkStateSparse(ls) => {
                let (Some(from), Some(to)) = (map(ls.from), map(ls.to)) else {
                    return;
                };
                // Entry indices are view-positional (like the dense
                // row), guarded by the receiver's view/width check.
                let mut wire = ls.clone();
                wire.from = from;
                wire.to = to;
                out.send(to, &Message::LinkStateSparse(wire));
            }
            Message::Recommendations(rm) => {
                let (Some(from), Some(to)) = (map(rm.from), map(rm.to)) else {
                    return;
                };
                let mut wire = rm.clone();
                wire.from = from;
                wire.to = to;
                wire.recs
                    .retain(|r| map(r.dst).is_some() && map(r.hop).is_some());
                for r in &mut wire.recs {
                    r.dst = map(r.dst).expect("retained");
                    r.hop = map(r.hop).expect("retained");
                }
                out.send(to, &Message::Recommendations(wire));
            }
            other => {
                out.send(other.to(), other);
            }
        }
    }

    /// Translate an incoming identity-space routing message into index
    /// space; `None` when the sender (or any referenced id) is not in the
    /// current view.
    fn wire_to_index(&self, msg: &Message) -> Option<Message> {
        let view = self.view.as_ref()?;
        let me = self.my_index?;
        let map = |id: NodeId| view.index_of(id).map(NodeId::from_index);
        match msg {
            Message::LinkState(ls) => {
                let mut inner = ls.clone();
                inner.from = map(ls.from)?;
                inner.to = NodeId::from_index(me);
                Some(Message::LinkState(inner))
            }
            Message::LinkStateSparse(ls) => {
                let mut inner = ls.clone();
                inner.from = map(ls.from)?;
                inner.to = NodeId::from_index(me);
                Some(Message::LinkStateSparse(inner))
            }
            Message::Recommendations(rm) => {
                let mut inner = rm.clone();
                inner.from = map(rm.from)?;
                inner.to = NodeId::from_index(me);
                inner
                    .recs
                    .retain(|r| map(r.dst).is_some() && map(r.hop).is_some());
                for r in &mut inner.recs {
                    r.dst = map(r.dst).expect("retained");
                    r.hop = map(r.hop).expect("retained");
                }
                Some(Message::Recommendations(inner))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn static_node(id: u16, n: u16, algo: Algorithm) -> OverlayNode {
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        OverlayNode::new(NodeConfig::new(NodeId(id), NodeId(0), algo).with_static_members(members))
    }

    #[test]
    fn static_member_starts_ready() {
        let mut node = static_node(2, 9, Algorithm::Quorum);
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        assert!(node.is_member());
        assert_eq!(node.my_index(), Some(2));
        // Probe poll and routing timers armed.
        let tokens: Vec<u64> = out.timers.iter().map(|&(_, t)| t).collect();
        assert!(tokens.contains(&TOKEN_PROBE));
        assert!(tokens.contains(&TOKEN_ROUTING));
    }

    #[test]
    fn probe_and_reply_measure_latency() {
        let mut a = static_node(0, 2, Algorithm::Quorum);
        let mut b = static_node(1, 2, Algorithm::Quorum);
        let mut out_a = Outbox::default();
        let mut out_b = Outbox::default();
        a.on_start(0.0, &mut out_a);
        b.on_start(0.0, &mut out_b);
        // Drive a's probe poll until it emits a probe for b.
        let mut probe: Option<Bytes> = None;
        let mut t = 0.0;
        while probe.is_none() && t < 40.0 {
            let mut out = Outbox::default();
            a.on_timer(t, TOKEN_PROBE, &mut out);
            for (to, class, bytes) in out.sends {
                if to == NodeId(1) && class == TrafficClass::Probing {
                    probe = Some(bytes);
                }
            }
            t += 0.5;
        }
        let probe = probe.expect("probe emitted");
        let sent_at = t - 0.5;
        // b replies.
        let mut out = Outbox::default();
        b.on_packet(sent_at + 0.02, &probe, &mut out);
        let (to, class, reply) = out.sends.pop().expect("probe reply");
        assert_eq!(to, NodeId(0));
        assert_eq!(class, TrafficClass::Probing);
        // a ingests the reply 40 ms after sending.
        let mut out = Outbox::default();
        a.on_packet(sent_at + 0.04, &reply, &mut out);
        let l = a.measured_latency_ms(NodeId(1)).expect("latency measured");
        assert!((l - 40.0).abs() < 1.0, "latency {l}");
    }

    #[test]
    fn join_dance_converges() {
        let mut coord = OverlayNode::new(NodeConfig::new(NodeId(0), NodeId(0), Algorithm::Quorum));
        let mut joiner = OverlayNode::new(NodeConfig::new(NodeId(7), NodeId(0), Algorithm::Quorum));
        let mut out_c = Outbox::default();
        let mut out_j = Outbox::default();
        coord.on_start(0.0, &mut out_c);
        joiner.on_start(0.0, &mut out_j);
        assert!(coord.is_member(), "coordinator is its own first view");
        assert!(!joiner.is_member());
        // The joiner sent a Join to node 0.
        let (to, class, join_bytes) = out_j
            .sends
            .iter()
            .find(|(_, c, _)| *c == TrafficClass::Membership)
            .cloned()
            .expect("join sent");
        assert_eq!(to, NodeId(0));
        assert_eq!(class, TrafficClass::Membership);
        // Coordinator processes the join and broadcasts a view.
        let mut out = Outbox::default();
        coord.on_packet(0.5, &join_bytes, &mut out);
        let view_msg = out
            .sends
            .iter()
            .find(|(to, _, _)| *to == NodeId(7))
            .cloned()
            .expect("view broadcast to joiner");
        // Joiner installs the view.
        let mut out = Outbox::default();
        joiner.on_packet(0.6, &view_msg.2, &mut out);
        assert!(joiner.is_member());
        assert_eq!(joiner.view().unwrap().members, vec![NodeId(0), NodeId(7)]);
        assert_eq!(joiner.my_index(), Some(1));
        assert_eq!(
            coord.view().unwrap().version,
            joiner.view().unwrap().version
        );
    }

    #[test]
    fn sparse_ids_translate_correctly() {
        // Members {3, 10, 200}: identity ≠ index. Node 10 (index 1) sends
        // link state; the wire message must carry identities.
        let members = vec![NodeId(3), NodeId(10), NodeId(200)];
        let mut node = OverlayNode::new(
            NodeConfig::new(NodeId(10), NodeId(3), Algorithm::Quorum).with_static_members(members),
        );
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        assert_eq!(node.my_index(), Some(1));
        let mut out = Outbox::default();
        node.on_timer(20.0, TOKEN_ROUTING, &mut out);
        assert!(!out.sends.is_empty(), "routing tick must emit link state");
        for (to, class, bytes) in &out.sends {
            assert_eq!(*class, TrafficClass::Routing);
            assert!(
                [NodeId(3), NodeId(200)].contains(to),
                "wire destination must be an identity, got {to}"
            );
            let m = Message::decode(bytes).unwrap();
            assert_eq!(m.from(), NodeId(10), "wire sender must be identity");
        }
    }

    #[test]
    fn malformed_packets_ignored() {
        let mut node = static_node(0, 4, Algorithm::Quorum);
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        let mut out = Outbox::default();
        node.on_packet(1.0, &[0xFF, 1, 2], &mut out);
        node.on_packet(1.0, &[], &mut out);
        assert!(out.sends.is_empty());
        assert!(node.is_member());
    }

    #[test]
    fn non_member_routing_messages_dropped() {
        let mut node = static_node(0, 4, Algorithm::Quorum);
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        // A link-state message from an unknown identity 99.
        let bogus = Message::LinkState(apor_linkstate::LinkStateMsg {
            from: NodeId(99),
            to: NodeId(0),
            view: 1,
            round: 1,
            basis_ms: 0,
            entries: vec![apor_linkstate::LinkEntry::dead(); 4],
            seqno: 0,
            retractions: vec![],
        });
        let mut out = Outbox::default();
        node.on_packet(1.0, &bogus.encode(), &mut out);
        assert!(out.sends.is_empty());
        // The table must not have been touched: route_age for all real
        // members is still None.
        for id in 1..4u16 {
            assert_eq!(node.route_age(NodeId(id), 2.0), None);
        }
    }

    #[test]
    fn full_mesh_algorithm_selectable() {
        let mut node = static_node(1, 9, Algorithm::FullMesh);
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        let mut out = Outbox::default();
        node.on_timer(35.0, TOKEN_ROUTING, &mut out);
        // Full mesh broadcasts to all 8 peers.
        let ls = out
            .sends
            .iter()
            .filter(|(_, c, _)| *c == TrafficClass::Routing)
            .count();
        assert_eq!(ls, 8);
        assert!(node.quorum_router().is_none());
    }

    #[test]
    fn quorum_algorithm_talks_to_2_sqrt_n() {
        let mut node = static_node(1, 100, Algorithm::Quorum);
        let mut out = Outbox::default();
        node.on_start(0.0, &mut out);
        let mut out = Outbox::default();
        node.on_timer(20.0, TOKEN_ROUTING, &mut out);
        let ls = out
            .sends
            .iter()
            .filter(|(_, c, _)| *c == TrafficClass::Routing)
            .count();
        assert!(
            ls <= 20,
            "quorum node sent {ls} routing messages, ~2√100 expected"
        );
        assert!(node.quorum_router().is_some());
    }
}
