//! Incremental view remap: carry surviving link-state rows across
//! membership changes.
//!
//! Routers and their stores operate in *grid-index space* — positions
//! in the sorted member list of the current view. A membership change
//! permutes that space, so the old store's rows cannot be reused as-is.
//! The seed implementation simply rebuilt every router from empty,
//! throwing away up to `O(n√n)` perfectly fresh measurements on every
//! churn event and blinding the overlay for a full probe-and-exchange
//! cycle.
//!
//! [`remap_rows`] instead translates each surviving row **by
//! [`NodeId`]**: the row of origin identity `o` moves to `o`'s index in
//! the new view; within the row, the entry for destination identity `d`
//! moves to `d`'s new index. Entries for departed members are dropped;
//! entries for joined members start dead (they have never been
//! measured). Rows whose origin departed, and rows older than the
//! staleness window (the paper's 3-routing-interval rule, section
//! 6.2.2 — stale rows would be ignored by the kernel anyway), are not
//! carried. Receipt times are preserved, *not* refreshed: a remap is a
//! relabeling, not new information.
//!
//! The router's [`import_row`](apor_routing::RoutingAlgorithm::import_row)
//! applies its own entitlement filter on top — a quorum router keeps
//! only rows owned by itself or its rendezvous clients *in the new
//! grid*, so the remap cannot re-grow `O(n)` rows.

use crate::membership::MembershipView;
use apor_linkstate::LinkEntry;
use apor_routing::VersionedRow;

/// One surviving row, translated into the new view's index space:
/// `(new origin index, original receipt time, full-width entries)`.
pub type RemappedRow = (usize, f64, Vec<LinkEntry>);

/// Translate exported rows from `old_view`'s index space into
/// `new_view`'s, dropping rows that are stale at `now` (older than
/// `max_age`) or whose origin left the overlay.
#[must_use]
pub fn remap_rows(
    exported: &[(usize, f64, Vec<LinkEntry>)],
    old_view: &MembershipView,
    new_view: &MembershipView,
    now: f64,
    max_age: f64,
) -> Vec<RemappedRow> {
    let rows: Vec<VersionedRow> = exported
        .iter()
        .map(|(origin, received_at, entries)| VersionedRow {
            origin: *origin,
            received_at: *received_at,
            seqno: 0,
            retractions: Vec::new(),
            entries: entries.clone(),
        })
        .collect();
    remap_rows_versioned(&rows, old_view, new_view, now, max_age)
        .into_iter()
        .map(|r| (r.origin, r.received_at, r.entries))
        .collect()
}

/// [`remap_rows`] carrying the route discipline: each row's origin
/// seqno survives the relabeling verbatim (a carried row must keep
/// shadowing delayed replays of older frames), and the retraction lane
/// is translated destination by destination — a retraction aimed at a
/// departed member leaves with it, everything else moves to the
/// destination's new index and is re-sorted.
#[must_use]
pub fn remap_rows_versioned(
    exported: &[VersionedRow],
    old_view: &MembershipView,
    new_view: &MembershipView,
    now: f64,
    max_age: f64,
) -> Vec<VersionedRow> {
    let n_new = new_view.len();
    // Precompute the index translations once (O(n) lookups instead of a
    // binary search per entry).
    let new_to_old: Vec<Option<usize>> = new_view
        .members
        .iter()
        .map(|&id| old_view.index_of(id))
        .collect();
    let old_to_new: Vec<Option<usize>> = old_view
        .members
        .iter()
        .map(|&id| new_view.index_of(id))
        .collect();
    let mut out = Vec::new();
    for row in exported {
        if now - row.received_at > max_age {
            continue; // 3-interval freshness rule: stale rows are dropped
        }
        let Some(origin_id) = old_view.id_of(row.origin) else {
            continue;
        };
        let Some(new_origin) = new_view.index_of(origin_id) else {
            continue; // origin departed
        };
        if row.entries.len() != old_view.len() {
            continue; // malformed export; never expected
        }
        let entries: Vec<LinkEntry> = (0..n_new)
            .map(|new_dst| {
                new_to_old[new_dst].map_or_else(LinkEntry::dead, |old_dst| row.entries[old_dst])
            })
            .collect();
        #[allow(clippy::cast_possible_truncation)]
        let mut retractions: Vec<u16> = row
            .retractions
            .iter()
            .filter_map(|&d| old_to_new.get(usize::from(d)).copied().flatten())
            .map(|new_dst| new_dst as u16)
            .collect();
        retractions.sort_unstable();
        out.push(VersionedRow {
            origin: new_origin,
            received_at: row.received_at,
            seqno: row.seqno,
            retractions,
            entries,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use apor_quorum::NodeId;

    fn view(version: u32, ids: &[u16]) -> MembershipView {
        MembershipView::new(version, ids.iter().map(|&i| NodeId(i)).collect())
    }

    fn row(costs: &[u16]) -> Vec<LinkEntry> {
        costs
            .iter()
            .map(|&c| {
                if c == u16::MAX {
                    LinkEntry::dead()
                } else {
                    LinkEntry::live(c, 0.0)
                }
            })
            .collect()
    }

    #[test]
    fn entries_move_by_identity() {
        // Old view {1, 5, 9} → indices {0, 1, 2}. Node 5 leaves, node 3
        // joins: new view {1, 3, 9} → node 9 moves from index 2 to 2,
        // node 1 stays at 0, the new index 1 is node 3 (unmeasured).
        let old = view(1, &[1, 5, 9]);
        let new = view(2, &[1, 3, 9]);
        let exported = vec![(0usize, 10.0, row(&[0, 50, 70]))];
        let remapped = remap_rows(&exported, &old, &new, 12.0, 45.0);
        assert_eq!(remapped.len(), 1);
        let (origin, t, entries) = &remapped[0];
        assert_eq!(*origin, 0, "node 1 keeps index 0");
        assert_eq!(*t, 10.0, "receipt time preserved, not refreshed");
        assert_eq!(entries[0].latency_ms, 0, "1→1 self entry");
        assert!(!entries[1].alive, "joiner 3 starts dead");
        assert_eq!(entries[2].latency_ms, 70, "1→9 carried by identity");
    }

    #[test]
    fn departed_origin_rows_dropped() {
        let old = view(1, &[1, 5, 9]);
        let new = view(2, &[1, 9]);
        // Node 5's row (old index 1) has no home in the new view.
        let exported = vec![
            (1usize, 10.0, row(&[40, 0, 60])),
            (2usize, 10.0, row(&[70, 60, 0])),
        ];
        let remapped = remap_rows(&exported, &old, &new, 11.0, 45.0);
        assert_eq!(remapped.len(), 1);
        assert_eq!(remapped[0].0, 1, "node 9 is index 1 in the new view");
        assert_eq!(remapped[0].2.len(), 2);
        assert_eq!(remapped[0].2[0].latency_ms, 70, "9→1 survives");
    }

    #[test]
    fn stale_rows_dropped_per_freshness_rule() {
        let old = view(1, &[1, 9]);
        let new = view(2, &[1, 9]);
        let exported = vec![(0usize, 10.0, row(&[0, 50])), (1usize, 60.0, row(&[50, 0]))];
        // At now = 70 with max_age = 45: row stamped 10 is stale, row
        // stamped 60 survives.
        let remapped = remap_rows(&exported, &old, &new, 70.0, 45.0);
        assert_eq!(remapped.len(), 1);
        assert_eq!(remapped[0].0, 1);
    }

    #[test]
    fn versioned_remap_translates_the_retraction_lane() {
        // Old view {1, 5, 9}: node 1's row retracts 5 (index 1) and 9
        // (index 2) at seqno 7. Node 5 leaves, node 3 joins.
        let old = view(1, &[1, 5, 9]);
        let new = view(2, &[1, 3, 9]);
        let exported = vec![VersionedRow {
            origin: 0,
            received_at: 10.0,
            seqno: 7,
            retractions: vec![1, 2],
            entries: row(&[0, 50, 70]),
        }];
        let remapped = remap_rows_versioned(&exported, &old, &new, 12.0, 45.0);
        assert_eq!(remapped.len(), 1);
        let r = &remapped[0];
        assert_eq!(r.origin, 0, "node 1 keeps index 0");
        assert_eq!(r.seqno, 7, "seqno survives verbatim");
        assert_eq!(
            r.retractions,
            vec![2],
            "retraction against departed 5 dropped; 9 stays at index 2"
        );
        assert_eq!(r.received_at, 10.0);
    }
}
