//! Adapter running an [`OverlayNode`] inside the netsim simulator.
//!
//! The mapping convention: simulator node index `i` hosts the overlay node
//! with identity `NodeId(i)`. (Identities and simulator slots coincide;
//! *grid* indices still come from the membership view and may differ when
//! membership is sparse.)

use crate::node::{Outbox, OverlayNode};
use apor_netsim::{Ctx, NodeBehavior, SimulatorConfig};

/// A [`SimulatorConfig`] whose per-packet framing comes from the
/// overlay's real wire constant
/// ([`apor_linkstate::wire::UDP_IP_OVERHEAD`]), so the simulator's
/// bandwidth accounting reproduces the paper's figures without netsim
/// hand-mirroring the value. Overlay simulations should start from this
/// and override fields as needed:
///
/// ```
/// use apor_netsim::SimulatorConfig;
/// let cfg = SimulatorConfig { seed: 7, ..apor_overlay::simnode::overlay_sim_config() };
/// assert_eq!(cfg.per_packet_overhead, apor_linkstate::wire::UDP_IP_OVERHEAD);
/// ```
#[must_use]
pub fn overlay_sim_config() -> SimulatorConfig {
    SimulatorConfig::default().with_per_packet_overhead(apor_linkstate::wire::UDP_IP_OVERHEAD)
}

/// The netsim driver for one overlay node.
pub struct SimNode {
    node: OverlayNode,
}

impl SimNode {
    /// Wrap an overlay node for simulation.
    #[must_use]
    pub fn new(node: OverlayNode) -> Self {
        SimNode { node }
    }

    /// Borrow the wrapped overlay node (post-run inspection).
    #[must_use]
    pub fn overlay(&self) -> &OverlayNode {
        &self.node
    }

    fn flush(out: Outbox, ctx: &mut Ctx<'_>) {
        for (to, class, bytes) in out.sends {
            ctx.send(to.index(), class, bytes);
        }
        for (delay, token) in out.timers {
            ctx.set_timer(delay, token);
        }
    }
}

impl NodeBehavior for SimNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Outbox::default();
        self.node.on_start(ctx.now(), &mut out);
        Self::flush(out, ctx);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: usize, payload: &[u8]) {
        let mut out = Outbox::default();
        self.node.on_packet(ctx.now(), payload, &mut out);
        Self::flush(out, ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let mut out = Outbox::default();
        self.node.on_timer(ctx.now(), token, &mut out);
        Self::flush(out, ctx);
    }

    /// Graceful shutdown ([`apor_netsim::Simulator::shutdown_node`]):
    /// the overlay announces its departure (SWIM `Left` gossip or a
    /// centralized `Leave`) and the farewell packets are flushed before
    /// the node goes silent.
    fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) {
        let mut out = Outbox::default();
        self.node.on_shutdown(ctx.now(), &mut out);
        Self::flush(out, ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Build a complete simulated overlay: one [`SimNode`] per matrix row,
/// with staggered starts, all using `make_config` to derive their
/// [`NodeConfig`](crate::config::NodeConfig).
pub fn populate<F>(sim: &mut apor_netsim::Simulator, n: usize, start_spread_s: f64, make_config: F)
where
    F: Fn(usize) -> crate::config::NodeConfig,
{
    for i in 0..n {
        let cfg = make_config(i);
        let start = start_spread_s * (i as f64) / (n.max(1) as f64);
        sim.add_node(Box::new(SimNode::new(OverlayNode::new(cfg))), start);
    }
}

/// Convenience for experiments: borrow the overlay node at simulator slot
/// `i`.
///
/// # Panics
/// Panics if slot `i` does not host a [`SimNode`].
#[must_use]
pub fn overlay_at(sim: &apor_netsim::Simulator, i: usize) -> &OverlayNode {
    sim.node(i)
        .as_any()
        .downcast_ref::<SimNode>()
        .expect("slot hosts a SimNode")
        .overlay()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, NodeConfig};
    use apor_netsim::{Simulator, TrafficClass};
    use apor_quorum::NodeId;
    use apor_topology::{FailureParams, LatencyMatrix};

    fn static_cfg(n: usize, algo: Algorithm) -> impl Fn(usize) -> NodeConfig {
        move |i| {
            let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
            NodeConfig::new(NodeId(i as u16), NodeId(0), algo).with_static_members(members)
        }
    }

    /// End-to-end: a 9-node simulated quorum overlay discovers the optimal
    /// one-hop detour over a hub.
    #[test]
    fn sim_overlay_finds_optimal_detour() {
        let n = 9;
        let mut m = LatencyMatrix::uniform(n, 100.0);
        for i in 0..n {
            if i != 4 {
                m.set_rtt(i, 4, 10.0);
            }
        }
        m.set_rtt(0, 8, 400.0);
        let mut sim = Simulator::new(m, FailureParams::none(n, 1e9), overlay_sim_config());
        populate(&mut sim, n, 5.0, static_cfg(n, Algorithm::Quorum));
        // Probing needs ~30 s to fill rows; two routing intervals after
        // that the optimal one-hop must be known everywhere.
        sim.run_until(120.0);
        let node0 = overlay_at(&sim, 0);
        assert_eq!(
            node0.best_hop(NodeId(8), 120.0),
            Some(NodeId(4)),
            "node 0 must discover the hub detour"
        );
        // Latency estimates reflect the matrix.
        let l = node0.measured_latency_ms(NodeId(4)).unwrap();
        assert!((l - 10.0).abs() < 2.0, "hub latency {l}");
        // And the freshness metric is bounded by ~one routing interval.
        let age = node0.route_age(NodeId(8), 120.0).unwrap();
        assert!(age <= 16.0, "route age {age}");
    }

    /// The headline bandwidth claim, in miniature: quorum routing traffic
    /// is well below full-mesh at the same n. (n must sit above the
    /// crossover at n ≈ 45 — below it the quorum scheme's halved routing
    /// interval makes it the *more* expensive algorithm, exactly as the
    /// paper's section 6 formulas predict.)
    #[test]
    fn quorum_uses_less_routing_bandwidth_than_fullmesh() {
        let n = 81;
        let run = |algo: Algorithm| {
            let m = LatencyMatrix::uniform(n, 50.0);
            let mut sim = Simulator::new(m, FailureParams::none(n, 1e9), overlay_sim_config());
            populate(&mut sim, n, 5.0, static_cfg(n, algo));
            sim.run_until(300.0);
            // Measure steady state: minutes 2–5.
            sim.stats()
                .fleet_mean_bps(&[TrafficClass::Routing], 120.0, 300.0)
        };
        let full = run(Algorithm::FullMesh);
        let quorum = run(Algorithm::Quorum);
        assert!(
            quorum < 0.75 * full,
            "quorum {quorum:.0} bps vs full-mesh {full:.0} bps"
        );
        // Both are in a sane absolute range (see figure 9: tens of Kbps
        // at n=140; much less at n=36).
        assert!(full > 1_000.0 && full < 100_000.0, "full {full}");
    }

    /// Probing traffic is identical across algorithms (measurement is
    /// full-mesh either way) and ≈ the paper's 49.1·n bps.
    #[test]
    fn probing_bandwidth_matches_theory() {
        let n = 25;
        let m = LatencyMatrix::uniform(n, 50.0);
        let mut sim = Simulator::new(m, FailureParams::none(n, 1e9), overlay_sim_config());
        populate(&mut sim, n, 5.0, static_cfg(n, Algorithm::Quorum));
        sim.run_until(300.0);
        let probing = sim
            .stats()
            .fleet_mean_bps(&[TrafficClass::Probing], 60.0, 300.0);
        let theory = 49.1 * n as f64;
        assert!(
            (probing - theory).abs() / theory < 0.15,
            "probing {probing:.0} bps vs theory {theory:.0}"
        );
    }

    /// Graceful shutdown on the SWIM plane: the `Left` gossip flushed
    /// by [`Simulator::shutdown_node`] reconfigures the survivors far
    /// faster than failure detection would.
    #[test]
    fn graceful_leave_reconfigures_survivors() {
        use apor_membership::SwimConfig;
        let n = 8;
        let m = LatencyMatrix::uniform(n, 40.0);
        let mut sim = Simulator::new(m, FailureParams::none(n, 1e9), overlay_sim_config());
        populate(&mut sim, n, 2.0, move |i| {
            let members: Vec<NodeId> = (0..n as u16).map(NodeId).collect();
            NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
                .with_static_members(members)
                .with_swim()
        });
        sim.run_until(30.0);
        sim.shutdown_node(5);
        assert!(overlay_at(&sim, 5).is_shut_down());
        // Far below the ~26 s failure-detection budget for n=8, every
        // survivor has installed a view that excludes the leaver.
        let budget = SwimConfig::default().publish_period_s + 8.0;
        assert!(budget < SwimConfig::default().detection_budget_s(n) / 2.0);
        sim.run_until(30.0 + budget);
        for i in (0..n).filter(|&i| i != 5) {
            let view = overlay_at(&sim, i).view().expect("view installed");
            assert!(
                !view.contains(NodeId(5)),
                "node {i} still sees the leaver after a graceful leave"
            );
        }
    }

    /// Nodes joining through the coordinator converge to one view.
    #[test]
    fn dynamic_membership_converges() {
        let n = 6;
        let m = LatencyMatrix::uniform(n, 40.0);
        let mut sim = Simulator::new(m, FailureParams::none(n, 1e9), overlay_sim_config());
        populate(&mut sim, n, 10.0, move |i| {
            NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
        });
        sim.run_until(60.0);
        for i in 0..n {
            let node = overlay_at(&sim, i);
            assert!(node.is_member(), "node {i} not a member");
            assert_eq!(node.view().unwrap().len(), n, "node {i} has partial view");
        }
        // All views identical.
        let v0 = overlay_at(&sim, 0).view().unwrap().clone();
        for i in 1..n {
            assert_eq!(overlay_at(&sim, i).view().unwrap(), &v0);
        }
    }
}
