//! The RON-like overlay node (paper section 5).
//!
//! Three components, exactly as the paper's design section lays out:
//!
//! * **membership service** ([`membership`]) — a centralized coordinator
//!   that assigns a monotonically versioned, sorted member list; every
//!   node with the same view derives the identical quorum grid.
//! * **link monitoring** — the prober from `apor-routing`, wired to the
//!   probe/probe-reply wire messages.
//! * **router** — either the full-mesh baseline or the two-round quorum
//!   algorithm, selected per node.
//!
//! The node itself ([`node::OverlayNode`]) is a sans-io state machine:
//! `on_start` / `on_packet` / `on_timer` in, `(send, set_timer)` commands
//! out. Two drivers run it unchanged:
//!
//! * [`simnode::SimNode`] adapts it to the deterministic
//!   [`netsim`](apor_netsim) simulator (the paper's emulation);
//! * `udp` (behind the `udp` feature; needs the non-vendored tokio)
//!   runs it on real UDP sockets (the paper's deployment), with a clean
//!   shutdown path per the structured-concurrency guidance.
//!
//! Membership comes in two modes ([`config::MembershipMode`]): the
//! paper's centralized coordinator ([`membership`]) and the
//! decentralized SWIM gossip plane from
//! [`apor_membership`](apor_membership), which removes the coordinator
//! single point of failure while preserving the identical-views ⇒
//! identical-grids invariant.
//!
//! ## View changes and the incremental remap
//!
//! Routers, probers and their link-state stores operate in *grid-index
//! space* (positions in the current sorted member list); the wire
//! carries identities. On a membership change the node rebuilds its
//! router for the new grid but does **not** start from empty: the
//! [`remap`] module translates every surviving link-state row by
//! [`NodeId`](apor_quorum::NodeId) into the new index space, dropping
//! rows that are stale (the 3-routing-interval freshness rule) or whose
//! origin departed, and the router's entitlement filter drops rows the
//! node's *new* grid role no longer grants it (a quorum node keeps only
//! its own row and its rendezvous clients' — `O(√n)` rows, `O(n√n)`
//! state). Prober estimator history is carried the same way, so a churn
//! event relabels state instead of discarding measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod membership;
pub mod node;
pub mod remap;
pub mod simnode;
#[cfg(feature = "udp")]
compile_error!(
    "the `udp` feature needs the non-vendored `tokio` (features [\"full\"]) and \
     `parking_lot` crates: add them to crates/overlay/Cargo.toml on a machine with \
     crates.io access (see vendor/README.md), then delete this guard"
);
#[cfg(feature = "udp")]
pub mod udp;

pub use config::{Algorithm, MembershipMode, NodeConfig};
pub use membership::{Coordinator, MembershipView};
pub use node::{Outbox, OverlayNode};
pub use simnode::SimNode;
