//! The RON-like overlay node (paper section 5).
//!
//! Three components, exactly as the paper's design section lays out:
//!
//! * **membership service** ([`membership`]) — a centralized coordinator
//!   that assigns a monotonically versioned, sorted member list; every
//!   node with the same view derives the identical quorum grid.
//! * **link monitoring** — the prober from `apor-routing`, wired to the
//!   probe/probe-reply wire messages.
//! * **router** — either the full-mesh baseline or the two-round quorum
//!   algorithm, selected per node.
//!
//! The node itself ([`node::OverlayNode`]) is a sans-io state machine:
//! `on_start` / `on_packet` / `on_timer` in, `(send, set_timer)` commands
//! out. Two drivers run it unchanged:
//!
//! * [`simnode::SimNode`] adapts it to the deterministic
//!   [`netsim`](apor_netsim) simulator (the paper's emulation);
//! * `udp` (behind the `udp` feature; needs the non-vendored tokio)
//!   runs it on real UDP sockets (the paper's deployment), with a clean
//!   shutdown path per the structured-concurrency guidance.
//!
//! Membership comes in two modes ([`config::MembershipMode`]): the
//! paper's centralized coordinator ([`membership`]) and the
//! decentralized SWIM gossip plane from
//! [`apor_membership`](apor_membership), which removes the coordinator
//! single point of failure while preserving the identical-views ⇒
//! identical-grids invariant.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod membership;
pub mod node;
pub mod simnode;
#[cfg(feature = "udp")]
compile_error!(
    "the `udp` feature needs the non-vendored `tokio` (features [\"full\"]) and \
     `parking_lot` crates: add them to crates/overlay/Cargo.toml on a machine with \
     crates.io access (see vendor/README.md), then delete this guard"
);
#[cfg(feature = "udp")]
pub mod udp;

pub use config::{Algorithm, MembershipMode, NodeConfig};
pub use membership::{Coordinator, MembershipView};
pub use node::{Outbox, OverlayNode};
pub use simnode::SimNode;
