//! The tokio UDP driver — the "deployment" half of the paper's evaluation.
//!
//! Runs the identical [`OverlayNode`] state machine as the simulator, but
//! against a real socket and the real clock. One task per node owns the
//! socket and the timer wheel; shutdown is explicit (a watch channel), per
//! the structured-concurrency guidance: the driver task never outlives
//! [`UdpOverlay::shutdown`], which joins it and hands the node state back.

use crate::node::{Outbox, OverlayNode};
use apor_quorum::NodeId;
use parking_lot::Mutex;
use std::collections::{BinaryHeap, HashMap};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::net::UdpSocket;
use tokio::sync::watch;
use tokio::time::{Duration, Instant};

/// Peer address book: identity → UDP address.
pub type PeerMap = HashMap<NodeId, SocketAddr>;

/// A timer entry: fire time + token, min-ordered.
#[derive(PartialEq, Eq)]
struct TimerEntry {
    fire_at: Instant,
    seq: u64,
    token: u64,
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed for a min-heap.
        other
            .fire_at
            .cmp(&self.fire_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A running overlay node on a real UDP socket.
pub struct UdpOverlay {
    node: Arc<Mutex<OverlayNode>>,
    local_addr: SocketAddr,
    shutdown_tx: watch::Sender<bool>,
    task: tokio::task::JoinHandle<std::io::Result<()>>,
}

impl UdpOverlay {
    /// Start a node on an already-bound socket with a static peer address
    /// book.
    ///
    /// # Errors
    /// Returns any socket error surfaced while starting.
    pub async fn spawn(
        node: OverlayNode,
        socket: UdpSocket,
        peers: PeerMap,
    ) -> std::io::Result<UdpOverlay> {
        let local_addr = socket.local_addr()?;
        let node = Arc::new(Mutex::new(node));
        let (shutdown_tx, shutdown_rx) = watch::channel(false);
        let task = tokio::spawn(drive(Arc::clone(&node), socket, peers, shutdown_rx));
        Ok(UdpOverlay {
            node,
            local_addr,
            shutdown_tx,
            task,
        })
    }

    /// The bound local address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Shared handle to the node state (lock briefly; the driver holds the
    /// lock during each callback).
    #[must_use]
    pub fn node(&self) -> Arc<Mutex<OverlayNode>> {
        Arc::clone(&self.node)
    }

    /// Stop the driver task, wait for it to finish, and return any socket
    /// error it hit. Before exiting, the driver runs the node's
    /// graceful-shutdown path ([`OverlayNode::on_shutdown`]) and flushes
    /// the departure announcement (SWIM `Left` gossip or a centralized
    /// `Leave`) onto the wire, so peers reconfigure immediately instead
    /// of waiting out failure detection.
    ///
    /// # Errors
    /// Propagates driver I/O errors.
    ///
    /// # Panics
    /// Panics if the driver task itself panicked.
    pub async fn shutdown(self) -> std::io::Result<()> {
        let _ = self.shutdown_tx.send(true);
        self.task.await.expect("driver task panicked")
    }
}

async fn drive(
    node: Arc<Mutex<OverlayNode>>,
    socket: UdpSocket,
    peers: PeerMap,
    mut shutdown: watch::Receiver<bool>,
) -> std::io::Result<()> {
    let t0 = Instant::now();
    let now_s = |at: Instant| at.duration_since(t0).as_secs_f64();
    let mut timers: BinaryHeap<TimerEntry> = BinaryHeap::new();
    let mut timer_seq = 0u64;
    let mut buf = vec![0u8; 64 * 1024];

    let flush = |out: Outbox,
                 timers: &mut BinaryHeap<TimerEntry>,
                 timer_seq: &mut u64,
                 at: Instant|
     -> Vec<(SocketAddr, bytes::Bytes)> {
        let mut sends = Vec::new();
        for (to, _class, payload) in out.sends {
            if let Some(&addr) = peers.get(&to) {
                sends.push((addr, payload));
            }
        }
        for (delay_s, token) in out.timers {
            *timer_seq += 1;
            timers.push(TimerEntry {
                fire_at: at + Duration::from_secs_f64(delay_s),
                seq: *timer_seq,
                token,
            });
        }
        sends
    };

    // Start the node.
    {
        let mut out = Outbox::default();
        let at = Instant::now();
        node.lock().on_start(now_s(at), &mut out);
        for (addr, payload) in flush(out, &mut timers, &mut timer_seq, at) {
            let _ = socket.send_to(&payload, addr).await;
        }
    }

    loop {
        let next_deadline = timers
            .peek()
            .map_or_else(|| Instant::now() + Duration::from_secs(3600), |t| t.fire_at);
        tokio::select! {
            _ = shutdown.changed() => {
                if *shutdown.borrow() {
                    // Graceful exit: flush the departure gossip before
                    // the socket closes.
                    let at = Instant::now();
                    let mut out = Outbox::default();
                    node.lock().on_shutdown(now_s(at), &mut out);
                    for (addr, payload) in flush(out, &mut timers, &mut timer_seq, at) {
                        let _ = socket.send_to(&payload, addr).await;
                    }
                    return Ok(());
                }
            }
            () = tokio::time::sleep_until(next_deadline) => {
                let at = Instant::now();
                // Fire every due timer.
                while timers.peek().is_some_and(|t| t.fire_at <= at) {
                    let entry = timers.pop().expect("peeked");
                    let mut out = Outbox::default();
                    node.lock().on_timer(now_s(at), entry.token, &mut out);
                    for (addr, payload) in flush(out, &mut timers, &mut timer_seq, at) {
                        let _ = socket.send_to(&payload, addr).await;
                    }
                }
            }
            recv = socket.recv_from(&mut buf) => {
                let (len, _from) = recv?;
                let at = Instant::now();
                let mut out = Outbox::default();
                node.lock().on_packet(now_s(at), &buf[..len], &mut out);
                for (addr, payload) in flush(out, &mut timers, &mut timer_seq, at) {
                    let _ = socket.send_to(&payload, addr).await;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, NodeConfig};
    use apor_routing::ProtocolConfig;

    /// Protocol constants scaled ~60× down so the test runs in seconds.
    fn fast_protocol() -> ProtocolConfig {
        let mut p = ProtocolConfig::quorum();
        p.probe_interval_s = 0.6;
        p.probe_timeout_s = 0.05;
        p.rapid_probe_interval_s = 0.1;
        p.routing_interval_s = 0.4;
        p
    }

    async fn spawn_cluster(n: u16, algo: Algorithm) -> Vec<UdpOverlay> {
        // Bind all sockets first so the peer map is complete before any
        // node starts.
        let mut sockets = Vec::new();
        let mut peers = PeerMap::new();
        for i in 0..n {
            let s = UdpSocket::bind("127.0.0.1:0").await.expect("bind");
            peers.insert(NodeId(i), s.local_addr().expect("addr"));
            sockets.push(s);
        }
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let mut overlays = Vec::new();
        for (i, socket) in sockets.into_iter().enumerate() {
            let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), algo)
                .with_static_members(members.clone());
            cfg.protocol = fast_protocol();
            let node = OverlayNode::new(cfg);
            overlays.push(
                UdpOverlay::spawn(node, socket, peers.clone())
                    .await
                    .unwrap(),
            );
        }
        overlays
    }

    /// Real sockets, real clock: a 4-node quorum overlay measures latency,
    /// exchanges link state / recommendations and knows routes to all
    /// destinations — then shuts down cleanly.
    #[tokio::test(flavor = "multi_thread")]
    async fn udp_overlay_end_to_end() {
        let overlays = spawn_cluster(4, Algorithm::Quorum).await;
        tokio::time::sleep(Duration::from_secs(4)).await;

        {
            let node0 = overlays[0].node();
            let n0 = node0.lock();
            assert!(n0.is_member());
            // Loopback latency is sub-millisecond → quantized near 0.
            for id in 1..4u16 {
                let l = n0
                    .measured_latency_ms(NodeId(id))
                    .unwrap_or_else(|| panic!("no latency to {id}"));
                assert!(l < 50.0, "loopback latency {l} ms");
            }
            // Every destination has a route (direct, on loopback).
            let now = 4.0;
            for id in 1..4u16 {
                assert!(n0.best_hop(NodeId(id), now).is_some(), "no route to {id}");
            }
        }

        for o in overlays {
            o.shutdown().await.expect("clean shutdown");
        }
    }

    /// The same binary logic drives full-mesh mode over UDP.
    #[tokio::test(flavor = "multi_thread")]
    async fn udp_fullmesh_smoke() {
        let overlays = spawn_cluster(3, Algorithm::FullMesh).await;
        tokio::time::sleep(Duration::from_secs(3)).await;
        let node = overlays[1].node();
        {
            let n = node.lock();
            assert!(n.is_member());
            assert!(n.best_hop(NodeId(0), 3.0).is_some());
            assert_eq!(n.double_rendezvous_failures(3.0), 0);
        }
        for o in overlays {
            o.shutdown().await.unwrap();
        }
    }

    /// Graceful SWIM shutdown flushes `Left` gossip: survivors drop the
    /// leaver from their views without waiting for failure detection.
    #[tokio::test(flavor = "multi_thread")]
    async fn graceful_leave_reconfigures_survivors() {
        use apor_membership::SwimConfig;
        let n = 3u16;
        let mut sockets = Vec::new();
        let mut peers = PeerMap::new();
        for i in 0..n {
            let s = UdpSocket::bind("127.0.0.1:0").await.expect("bind");
            peers.insert(NodeId(i), s.local_addr().expect("addr"));
            sockets.push(s);
        }
        let members: Vec<NodeId> = (0..n).map(NodeId).collect();
        let swim = SwimConfig {
            period_s: 0.4,
            ping_timeout_s: 0.1,
            publish_period_s: 0.2,
            ..SwimConfig::default()
        };
        let mut overlays = Vec::new();
        for (i, socket) in sockets.into_iter().enumerate() {
            let mut cfg = NodeConfig::new(NodeId(i as u16), NodeId(0), Algorithm::Quorum)
                .with_static_members(members.clone())
                .with_swim_config(swim.clone());
            cfg.protocol = fast_protocol();
            let node = OverlayNode::new(cfg);
            overlays.push(
                UdpOverlay::spawn(node, socket, peers.clone())
                    .await
                    .unwrap(),
            );
        }
        tokio::time::sleep(Duration::from_secs(1)).await;
        // Node 2 leaves gracefully.
        overlays.pop().unwrap().shutdown().await.unwrap();
        tokio::time::sleep(Duration::from_secs(2)).await;
        for (i, o) in overlays.iter().enumerate() {
            let node = o.node();
            let node = node.lock();
            let view = node.view().expect("view installed");
            assert!(
                !view.contains(NodeId(2)),
                "node {i} still sees the leaver: {:?}",
                view.members
            );
        }
        for o in overlays {
            o.shutdown().await.unwrap();
        }
    }

    /// Shutdown is prompt even with timers pending.
    #[tokio::test(flavor = "multi_thread")]
    async fn shutdown_is_prompt() {
        let overlays = spawn_cluster(2, Algorithm::Quorum).await;
        let started = std::time::Instant::now();
        for o in overlays {
            o.shutdown().await.unwrap();
        }
        assert!(started.elapsed() < Duration::from_secs(2), "slow shutdown");
    }
}
