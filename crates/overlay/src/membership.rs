//! The centralized membership service (section 5, "Membership Service").
//!
//! "Because the focus of this paper is to evaluate the effectiveness of
//! the overlay routing, we use a simple centralized membership service,
//! running on a coordinator node" — we follow the paper. The coordinator
//! keeps the live member set; any change bumps a monotonic view version
//! and broadcasts the *sorted* member list. Every node with the same view
//! populates its quorum grid from that sorted list in row-major order, so
//! identical views imply identical grids.
//!
//! Membership lifetimes are long (30-minute timeout); transient failures
//! are the failover machinery's business, not membership's.

use apor_quorum::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An installed membership view: version + sorted members.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MembershipView {
    /// Monotonic version.
    pub version: u32,
    /// Members sorted ascending by id; grid index = position here.
    pub members: Vec<NodeId>,
}

impl MembershipView {
    /// Build a view (sorts and deduplicates the member list).
    #[must_use]
    pub fn new(version: u32, mut members: Vec<NodeId>) -> Self {
        members.sort_unstable();
        members.dedup();
        MembershipView { version, members }
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the view has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The grid index of `id` in this view.
    #[must_use]
    pub fn index_of(&self, id: NodeId) -> Option<usize> {
        self.members.binary_search(&id).ok()
    }

    /// The member at grid index `idx`.
    #[must_use]
    pub fn id_of(&self, idx: usize) -> Option<NodeId> {
        self.members.get(idx).copied()
    }

    /// Does the view contain `id`?
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.index_of(id).is_some()
    }
}

/// Coordinator-side membership state.
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// Member → last time we heard a join/keepalive from it.
    last_heard: BTreeMap<NodeId, f64>,
    version: u32,
    member_timeout_s: f64,
}

impl Coordinator {
    /// A coordinator that knows only itself.
    #[must_use]
    pub fn new(self_id: NodeId, now: f64, member_timeout_s: f64) -> Self {
        let mut last_heard = BTreeMap::new();
        last_heard.insert(self_id, now);
        Coordinator {
            last_heard,
            version: 1,
            member_timeout_s,
        }
    }

    /// Current view.
    #[must_use]
    pub fn view(&self) -> MembershipView {
        MembershipView::new(self.version, self.last_heard.keys().copied().collect())
    }

    /// Handle a join or keepalive. Returns `true` when the view changed
    /// (⇒ broadcast).
    pub fn on_join(&mut self, id: NodeId, now: f64) -> bool {
        let is_new = self.last_heard.insert(id, now).is_none();
        if is_new {
            self.version += 1;
        }
        is_new
    }

    /// Handle an explicit leave. Returns `true` when the view changed.
    pub fn on_leave(&mut self, id: NodeId) -> bool {
        let removed = self.last_heard.remove(&id).is_some();
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Expire members not heard from within the timeout. Returns `true`
    /// when the view changed. The coordinator never expires itself
    /// (callers keep its own entry fresh).
    pub fn expire(&mut self, now: f64) -> bool {
        let before = self.last_heard.len();
        let timeout = self.member_timeout_s;
        self.last_heard
            .retain(|_, &mut heard| now - heard <= timeout);
        if self.last_heard.len() != before {
            self.version += 1;
            true
        } else {
            false
        }
    }

    /// Refresh the coordinator's own liveness entry.
    pub fn heartbeat_self(&mut self, self_id: NodeId, now: f64) {
        self.last_heard.insert(self_id, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_sorted_and_deduped() {
        let v = MembershipView::new(3, vec![NodeId(5), NodeId(1), NodeId(5), NodeId(9)]);
        assert_eq!(v.members, vec![NodeId(1), NodeId(5), NodeId(9)]);
        assert_eq!(v.index_of(NodeId(5)), Some(1));
        assert_eq!(v.id_of(2), Some(NodeId(9)));
        assert_eq!(v.index_of(NodeId(7)), None);
        assert!(v.contains(NodeId(1)));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn joins_bump_version_once() {
        let mut c = Coordinator::new(NodeId(0), 0.0, 1800.0);
        assert_eq!(c.view().version, 1);
        assert!(c.on_join(NodeId(4), 1.0));
        assert!(!c.on_join(NodeId(4), 2.0), "keepalive is not a change");
        assert_eq!(c.view().version, 2);
        assert_eq!(c.view().members, vec![NodeId(0), NodeId(4)]);
    }

    #[test]
    fn leave_and_expire() {
        let mut c = Coordinator::new(NodeId(0), 0.0, 100.0);
        c.on_join(NodeId(1), 0.0);
        c.on_join(NodeId(2), 10.0);
        assert!(c.on_leave(NodeId(1)));
        assert!(!c.on_leave(NodeId(1)));
        // At t=120 node 2 (heard at 10) exceeds the 100 s timeout; the
        // coordinator keeps itself alive with a heartbeat.
        c.heartbeat_self(NodeId(0), 120.0);
        assert!(c.expire(120.0), "node heard at t=10 should expire");
        let v = c.view();
        assert_eq!(v.members, vec![NodeId(0)]);
        assert!(!c.expire(121.0), "no further change");
    }

    #[test]
    fn identical_views_identical_grids() {
        use apor_quorum::Grid;
        let v1 = MembershipView::new(2, vec![NodeId(9), NodeId(3), NodeId(7), NodeId(1)]);
        let v2 = MembershipView::new(2, vec![NodeId(1), NodeId(3), NodeId(7), NodeId(9)]);
        assert_eq!(v1, v2);
        // The grid is derived from len() alone plus index order, so the
        // grids coincide member-for-member.
        let g1 = Grid::new(v1.len());
        let g2 = Grid::new(v2.len());
        assert_eq!(g1, g2);
        assert_eq!(v1.id_of(0), v2.id_of(0));
    }
}
