//! Property tests for the incremental view remap (`overlay::remap`):
//!
//! 1. **Identity-model equivalence** — one remap across an arbitrary
//!    membership change equals a rebuild-from-scratch fed the same
//!    (surviving) row messages, keyed purely by `NodeId`; stale rows
//!    are dropped per the 3-routing-interval freshness rule.
//! 2. **Join/leave/rejoin chains** — remapping through an arbitrary
//!    sequence of views keeps exactly the rows whose origin (and the
//!    entries whose destination) stayed a member through *every*
//!    intermediate view: leaving destroys measurements, rejoining does
//!    not resurrect them.
//! 3. **Entitlement on import** — feeding remapped rows through a
//!    `QuorumRouter` keeps only the rows the node's new grid role
//!    grants it (own row + rendezvous clients), so a remap can never
//!    re-grow `O(n)` rows.

use apor_linkstate::{LinkEntry, LinkStateStore, RowStore};
use apor_overlay::membership::MembershipView;
use apor_overlay::remap::remap_rows;
use apor_quorum::NodeId;
use apor_routing::{ProtocolConfig, QuorumRouter, RoutingAlgorithm};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MAX_AGE: f64 = 45.0;

/// A sorted, deduplicated member set drawn from a small id universe.
fn arb_members(universe: u16) -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec(0u16..universe, 2..12).prop_map(|mut ids| {
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter().map(NodeId).collect()
    })
}

/// Per-origin row messages: `origin id → (receipt time, latency by dst id)`.
/// Latencies are keyed by *identity* over the whole universe so the model
/// below never touches index space.
fn arb_rows(universe: u16) -> impl Strategy<Value = BTreeMap<u16, (f64, Vec<u16>)>> {
    prop::collection::vec(
        (
            0u16..universe,
            0.0f64..100.0,
            prop::collection::vec(1u16..500, universe as usize),
        ),
        0..10,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(origin, t, lats)| (origin, (t, lats)))
            .collect()
    })
}

/// Load the generated rows into a store shaped by `view` (index space).
fn load_store(view: &MembershipView, rows: &BTreeMap<u16, (f64, Vec<u16>)>) -> RowStore {
    let mut store = RowStore::new(view.len());
    for (&origin_id, (t, lats)) in rows {
        let Some(origin) = view.index_of(NodeId(origin_id)) else {
            continue; // message from a non-member is never delivered
        };
        let entries: Vec<LinkEntry> = view
            .members
            .iter()
            .map(|d| LinkEntry::live(lats[d.0 as usize], 0.0))
            .collect();
        store.update_row(origin, &entries, *t);
    }
    store
}

fn export(store: &RowStore) -> Vec<(usize, f64, Vec<LinkEntry>)> {
    store
        .present_rows()
        .into_iter()
        .map(|o| (o, store.row_time(o).unwrap(), store.row_dense(o).unwrap()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// One remap equals the identity-keyed rebuild: for every origin id
    /// in both views with a fresh row, the remapped row holds the
    /// original entry for every surviving destination id and dead for
    /// joiners; departed origins and stale rows vanish.
    #[test]
    fn remap_matches_identity_model(
        old_ids in arb_members(20),
        new_ids in arb_members(20),
        rows in arb_rows(20),
        now in 50.0f64..150.0,
    ) {
        let old_view = MembershipView::new(1, old_ids);
        let new_view = MembershipView::new(2, new_ids);
        let store = load_store(&old_view, &rows);
        let remapped = remap_rows(&export(&store), &old_view, &new_view, now, MAX_AGE);

        // No fabricated origins, no duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for (origin, _, entries) in &remapped {
            prop_assert!(seen.insert(*origin), "duplicate remapped origin");
            prop_assert_eq!(entries.len(), new_view.len());
        }

        for (&origin_id, (t, lats)) in &rows {
            let in_old = old_view.contains(NodeId(origin_id));
            let new_origin = new_view.index_of(NodeId(origin_id));
            let fresh = now - t <= MAX_AGE;
            let expected_carried = in_old && new_origin.is_some() && fresh;
            let carried = remapped.iter().find(|(o, _, _)| Some(*o) == new_origin && new_origin.is_some());
            if !expected_carried {
                if in_old {
                    prop_assert!(
                        carried.is_none() || new_origin.is_none(),
                        "row for {origin_id} should have been dropped"
                    );
                }
                continue;
            }
            let (_, carried_t, entries) = carried.expect("fresh surviving row must be carried");
            prop_assert_eq!(*carried_t, *t, "receipt time must be preserved");
            for (new_dst, d) in new_view.members.iter().enumerate() {
                if old_view.contains(*d) {
                    prop_assert_eq!(
                        entries[new_dst].latency_ms, lats[d.0 as usize],
                        "entry {}→{} must move by identity", origin_id, d.0
                    );
                    prop_assert!(entries[new_dst].alive);
                } else {
                    prop_assert!(!entries[new_dst].alive, "joined dst must start dead");
                }
            }
        }
    }

    /// Chaining remaps through an arbitrary join/leave/rejoin sequence
    /// keeps exactly the rows/entries whose ids were members of every
    /// view in the chain — and for those, the values equal a single
    /// direct rebuild into the final view.
    #[test]
    fn chained_remap_keeps_only_continuous_members(
        views in prop::collection::vec(arb_members(16), 2..5),
        rows in arb_rows(16),
    ) {
        let views: Vec<MembershipView> = views
            .into_iter()
            .enumerate()
            .map(|(i, m)| MembershipView::new(1 + i as u32, m))
            .collect();
        // All rows stamped inside the fresh window; all remaps at now=0-ish
        // so staleness never interferes with the membership argument.
        let rows: BTreeMap<u16, (f64, Vec<u16>)> =
            rows.into_iter().map(|(o, (_, l))| (o, (0.0, l))).collect();
        let mut store = load_store(&views[0], &rows);
        for w in views.windows(2) {
            let remapped = remap_rows(&export(&store), &w[0], &w[1], 1.0, MAX_AGE);
            let mut next = RowStore::new(w[1].len());
            for (origin, t, entries) in remapped {
                next.update_row(origin, &entries, t);
            }
            store = next;
        }
        let last = views.last().unwrap();
        for (&origin_id, (_, lats)) in &rows {
            let continuous = views.iter().all(|v| v.contains(NodeId(origin_id)));
            let final_origin = last.index_of(NodeId(origin_id));
            match (continuous, final_origin) {
                (true, Some(origin)) => {
                    let row = store.row_dense(origin).expect("continuous member's row survives");
                    for (new_dst, d) in last.members.iter().enumerate() {
                        let dst_continuous = views.iter().all(|v| v.contains(*d));
                        if dst_continuous {
                            prop_assert_eq!(row[new_dst].latency_ms, lats[d.0 as usize]);
                            prop_assert!(row[new_dst].alive);
                        } else {
                            prop_assert!(
                                !row[new_dst].alive,
                                "dst {} left mid-chain: entry must stay dead even after rejoin",
                                d.0
                            );
                        }
                    }
                }
                (false, Some(origin)) => {
                    prop_assert!(
                        store.row_ref(origin).is_none(),
                        "origin {} left mid-chain: its row must not be resurrected",
                        origin_id
                    );
                }
                (_, None) => {}
            }
        }
    }

    /// Importing remapped rows into a quorum router keeps only the
    /// entitled ones: the node's own row and its rendezvous clients' in
    /// the *new* grid.
    #[test]
    fn quorum_import_enforces_new_grid_entitlement(
        old_ids in arb_members(20),
        new_ids in arb_members(20),
        rows in arb_rows(20),
        me_pick in 0usize..12,
    ) {
        // `me` must be a member of both views.
        let mut old_ids = old_ids;
        let new_view = MembershipView::new(2, new_ids);
        let me_id = new_view.members[me_pick % new_view.len()];
        if !old_ids.contains(&me_id) {
            old_ids.push(me_id);
        }
        let old_view = MembershipView::new(1, old_ids);
        let store = load_store(&old_view, &rows);
        let remapped = remap_rows(&export(&store), &old_view, &new_view, 10.0, 200.0);

        let me = new_view.index_of(me_id).unwrap();
        let n = new_view.len();
        let mut router = QuorumRouter::new(me, n, 2, ProtocolConfig::quorum());
        for (origin, t, entries) in &remapped {
            router.import_row(*origin, entries, *t);
        }
        let grid = router.grid().clone();
        for (origin, _, _) in &remapped {
            let entitled = *origin == me || grid.serves(*origin, me);
            prop_assert_eq!(
                router.table().row_time(*origin).is_some(),
                entitled,
                "origin {} entitled={}", origin, entitled
            );
        }
        prop_assert!(
            router.table().row_count() <= QuorumRouter::row_entitlement(n),
            "remap must never exceed the O(√n) entitlement"
        );
    }
}

/// End-to-end through the overlay node: a view change must carry fresh
/// rows into the new router instead of rebuilding from empty — the
/// surviving route is answerable immediately, without waiting for a new
/// probe/exchange cycle.
#[test]
fn view_change_preserves_routes_end_to_end() {
    use apor_linkstate::{LinkStateMsg, Message};
    use apor_overlay::config::{Algorithm, NodeConfig};
    use apor_overlay::node::Outbox;
    use apor_overlay::OverlayNode;

    // Members {0, 1, 2, 9}; node 0 is us. Node 1 (a rendezvous client
    // of 0 in the 2×2 grid) sends its link-state row; then node 9
    // leaves. After the view change, node 1's row must still be present
    // (remapped from index 1 → 1, entry for 9 dropped).
    let members: Vec<NodeId> = [0u16, 1, 2, 9].iter().map(|&i| NodeId(i)).collect();
    let mut node = OverlayNode::new(
        NodeConfig::new(NodeId(0), NodeId(0), Algorithm::Quorum).with_static_members(members),
    );
    let mut out = Outbox::default();
    node.on_start(0.0, &mut out);
    assert_eq!(node.my_index(), Some(0));

    let row1 = vec![
        LinkEntry::live(40, 0.0),
        LinkEntry::live(0, 0.0),
        LinkEntry::live(25, 0.0),
        LinkEntry::live(30, 0.0),
    ];
    let ls = Message::LinkState(LinkStateMsg {
        from: NodeId(1),
        to: NodeId(0),
        view: 1,
        round: 1,
        basis_ms: 0,
        entries: row1,
        seqno: 0,
        retractions: vec![],
    });
    let mut out = Outbox::default();
    node.on_packet(5.0, &ls.encode(), &mut out);
    let store_has_row = |node: &OverlayNode, idx: usize| {
        node.quorum_router()
            .is_some_and(|r| r.table().row_time(idx).is_some())
    };
    assert!(store_has_row(&node, 1), "row received in view 1");

    // Node 9 departs: view version 2 with {0, 1, 2}.
    let view2 = Message::View(apor_linkstate::wire::ViewMsg {
        from: NodeId(0),
        to: NodeId(0),
        view: 2,
        members: [0u16, 1, 2].iter().map(|&i| NodeId(i)).collect(),
    });
    let mut out = Outbox::default();
    node.on_packet(10.0, &view2.encode(), &mut out);

    let router = node.quorum_router().expect("router rebuilt");
    assert_eq!(
        router.table().row_time(1),
        Some(5.0),
        "node 1's row must survive the view change with its original receipt time"
    );
    let row = router.table().row_dense(1).expect("remapped row present");
    assert_eq!(row.len(), 3, "row width follows the new view");
    assert_eq!(row[0].latency_ms, 40, "1→0 carried");
    assert_eq!(row[2].latency_ms, 25, "1→2 carried");

    // A control node that really is rebuilt from scratch (started
    // directly in view 2, no messages) knows nothing — the difference
    // the incremental remap makes.
    let members2: Vec<NodeId> = [0u16, 1, 2].iter().map(|&i| NodeId(i)).collect();
    let mut control = OverlayNode::new(
        NodeConfig::new(NodeId(0), NodeId(0), Algorithm::Quorum).with_static_members(members2),
    );
    let mut out = Outbox::default();
    control.on_start(10.0, &mut out);
    assert!(
        !store_has_row(&control, 1),
        "rebuild-from-empty holds nothing"
    );
}

/// Stale rows (older than 3 routing intervals at the moment of the view
/// change) are *not* carried — the freshness rule applies to the remap
/// exactly as it applies to the kernel.
#[test]
fn view_change_drops_stale_rows() {
    use apor_linkstate::{LinkStateMsg, Message};
    use apor_overlay::config::{Algorithm, NodeConfig};
    use apor_overlay::node::Outbox;
    use apor_overlay::OverlayNode;

    let members: Vec<NodeId> = [0u16, 1, 2, 9].iter().map(|&i| NodeId(i)).collect();
    let mut node = OverlayNode::new(
        NodeConfig::new(NodeId(0), NodeId(0), Algorithm::Quorum).with_static_members(members),
    );
    let mut out = Outbox::default();
    node.on_start(0.0, &mut out);
    let ls = Message::LinkState(LinkStateMsg {
        from: NodeId(1),
        to: NodeId(0),
        view: 1,
        round: 1,
        basis_ms: 0,
        entries: vec![LinkEntry::live(40, 0.0); 4],
        seqno: 0,
        retractions: vec![],
    });
    let mut out = Outbox::default();
    node.on_packet(5.0, &ls.encode(), &mut out);

    // The quorum staleness window is 3 × 15 s = 45 s; remap at t = 100.
    let view2 = Message::View(apor_linkstate::wire::ViewMsg {
        from: NodeId(0),
        to: NodeId(0),
        view: 2,
        members: [0u16, 1, 2].iter().map(|&i| NodeId(i)).collect(),
    });
    let mut out = Outbox::default();
    node.on_packet(100.0, &view2.encode(), &mut out);
    let router = node.quorum_router().expect("router rebuilt");
    assert_eq!(
        router.table().row_time(1),
        None,
        "a stale row must not survive the remap"
    );
}
