//! Per-node, per-class, time-bucketed traffic accounting.
//!
//! Figure 9 reports *average per-node routing traffic (incoming and
//! outgoing)*; figure 10 reports the CDF over nodes of the mean and of the
//! worst 1-minute window. Both need bytes classified (probing vs routing
//! vs membership), separated by direction, and bucketed in time — which is
//! exactly the structure here.

/// Traffic classes, matching how the paper splits its bandwidth figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Probes and probe replies.
    Probing,
    /// Link-state and recommendation messages.
    Routing,
    /// Membership service traffic (join/leave/view).
    Membership,
}

impl TrafficClass {
    /// All classes, for iteration.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Probing,
        TrafficClass::Routing,
        TrafficClass::Membership,
    ];

    fn idx(self) -> usize {
        match self {
            TrafficClass::Probing => 0,
            TrafficClass::Routing => 1,
            TrafficClass::Membership => 2,
        }
    }
}

/// Traffic direction relative to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bytes leaving the node.
    Out,
    /// Bytes arriving at the node.
    In,
}

/// Byte counters: `n` nodes × 3 classes × 2 directions × time buckets.
#[derive(Debug, Clone)]
pub struct TrafficStats {
    n: usize,
    bucket_secs: f64,
    /// `buckets[node][class][dir]` -> `Vec<u64>` indexed by bucket.
    buckets: Vec<Vec<u64>>,
}

const CLASSES: usize = 3;
const DIRS: usize = 2;

impl TrafficStats {
    /// New accounting over `n` nodes with the given bucket width.
    ///
    /// # Panics
    /// Panics unless `bucket_secs > 0`.
    #[must_use]
    pub fn new(n: usize, bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        TrafficStats {
            n,
            bucket_secs,
            buckets: vec![Vec::new(); n * CLASSES * DIRS],
        }
    }

    /// Bucket width in seconds.
    #[must_use]
    pub fn bucket_secs(&self) -> f64 {
        self.bucket_secs
    }

    fn series_index(&self, node: usize, class: TrafficClass, dir: Direction) -> usize {
        let d = match dir {
            Direction::Out => 0,
            Direction::In => 1,
        };
        (node * CLASSES + class.idx()) * DIRS + d
    }

    /// Record `bytes` for `node` at time `t`.
    pub fn record(
        &mut self,
        node: usize,
        class: TrafficClass,
        dir: Direction,
        bytes: usize,
        t: f64,
    ) {
        assert!(node < self.n && t >= 0.0);
        let bucket = (t / self.bucket_secs) as usize;
        let idx = self.series_index(node, class, dir);
        let series = &mut self.buckets[idx];
        if series.len() <= bucket {
            series.resize(bucket + 1, 0);
        }
        series[bucket] += bytes as u64;
    }

    /// Total bytes for `node` in the given classes and directions over
    /// `[from_s, to_s)`.
    #[must_use]
    pub fn total_bytes(
        &self,
        node: usize,
        classes: &[TrafficClass],
        dirs: &[Direction],
        from_s: f64,
        to_s: f64,
    ) -> u64 {
        let first = (from_s / self.bucket_secs) as usize;
        let last = (to_s / self.bucket_secs).ceil() as usize;
        let mut total = 0;
        for &c in classes {
            for &d in dirs {
                let series = &self.buckets[self.series_index(node, c, d)];
                for b in first..last.min(series.len()) {
                    total += series[b];
                }
            }
        }
        total
    }

    /// Mean bits/s for `node` (both directions) in the given classes over
    /// `[from_s, to_s)`.
    #[must_use]
    pub fn mean_bps(&self, node: usize, classes: &[TrafficClass], from_s: f64, to_s: f64) -> f64 {
        let bytes = self.total_bytes(
            node,
            classes,
            &[Direction::In, Direction::Out],
            from_s,
            to_s,
        );
        bytes as f64 * 8.0 / (to_s - from_s)
    }

    /// Worst single-bucket bits/s for `node` (both directions, given
    /// classes) over `[from_s, to_s)` — figure 10's "max (any 1-min
    /// window)" when buckets are 60 s wide.
    #[must_use]
    pub fn max_bucket_bps(
        &self,
        node: usize,
        classes: &[TrafficClass],
        from_s: f64,
        to_s: f64,
    ) -> f64 {
        let first = (from_s / self.bucket_secs) as usize;
        let last = (to_s / self.bucket_secs).ceil() as usize;
        let mut worst = 0u64;
        for b in first..last {
            let mut in_bucket = 0u64;
            for &c in classes {
                for d in [Direction::In, Direction::Out] {
                    let series = &self.buckets[self.series_index(node, c, d)];
                    if b < series.len() {
                        in_bucket += series[b];
                    }
                }
            }
            worst = worst.max(in_bucket);
        }
        worst as f64 * 8.0 / self.bucket_secs
    }

    /// Mean over all nodes of [`mean_bps`](Self::mean_bps).
    #[must_use]
    pub fn fleet_mean_bps(&self, classes: &[TrafficClass], from_s: f64, to_s: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (0..self.n)
            .map(|i| self.mean_bps(i, classes, from_s, to_s))
            .sum::<f64>()
            / self.n as f64
    }

    /// Number of nodes tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when tracking no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_total() {
        let mut s = TrafficStats::new(2, 60.0);
        s.record(0, TrafficClass::Routing, Direction::Out, 100, 10.0);
        s.record(0, TrafficClass::Routing, Direction::In, 50, 70.0);
        s.record(0, TrafficClass::Probing, Direction::Out, 999, 10.0);
        let routing = s.total_bytes(
            0,
            &[TrafficClass::Routing],
            &[Direction::In, Direction::Out],
            0.0,
            120.0,
        );
        assert_eq!(routing, 150);
        let probing = s.total_bytes(0, &[TrafficClass::Probing], &[Direction::Out], 0.0, 120.0);
        assert_eq!(probing, 999);
        // Node 1 saw nothing.
        assert_eq!(
            s.total_bytes(
                1,
                &TrafficClass::ALL,
                &[Direction::In, Direction::Out],
                0.0,
                120.0
            ),
            0
        );
    }

    #[test]
    fn mean_bps_is_bits_over_window() {
        let mut s = TrafficStats::new(1, 60.0);
        // 750 bytes over a 60 s window = 100 bps.
        s.record(0, TrafficClass::Routing, Direction::Out, 750, 30.0);
        let bps = s.mean_bps(0, &[TrafficClass::Routing], 0.0, 60.0);
        assert!((bps - 100.0).abs() < 1e-9, "bps {bps}");
    }

    #[test]
    fn max_bucket_finds_burst() {
        let mut s = TrafficStats::new(1, 60.0);
        for minute in 0..5 {
            s.record(
                0,
                TrafficClass::Routing,
                Direction::Out,
                100,
                minute as f64 * 60.0 + 1.0,
            );
        }
        // A burst in minute 3.
        s.record(0, TrafficClass::Routing, Direction::In, 10_000, 185.0);
        let max = s.max_bucket_bps(0, &[TrafficClass::Routing], 0.0, 300.0);
        assert!((max - (10_100.0 * 8.0 / 60.0)).abs() < 1e-9);
    }

    #[test]
    fn window_bounds_respected() {
        let mut s = TrafficStats::new(1, 10.0);
        s.record(0, TrafficClass::Routing, Direction::Out, 100, 5.0);
        s.record(0, TrafficClass::Routing, Direction::Out, 100, 25.0);
        // Window [10, 20) excludes both? bucket of t=5 is [0,10), t=25 is [20,30).
        assert_eq!(
            s.total_bytes(0, &[TrafficClass::Routing], &[Direction::Out], 10.0, 20.0),
            0
        );
        assert_eq!(
            s.total_bytes(0, &[TrafficClass::Routing], &[Direction::Out], 0.0, 30.0),
            200
        );
    }

    #[test]
    fn fleet_mean_averages_nodes() {
        let mut s = TrafficStats::new(2, 60.0);
        s.record(0, TrafficClass::Routing, Direction::Out, 750, 0.0);
        // node 1: nothing. Fleet mean = (100 + 0)/2 = 50 bps.
        let bps = s.fleet_mean_bps(&[TrafficClass::Routing], 0.0, 60.0);
        assert!((bps - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_rejected() {
        let _ = TrafficStats::new(1, 0.0);
    }
}
