//! The simulator core: event loop, network model and node harness.

use crate::queue::EventQueue;
use crate::stats::{Direction, TrafficClass, TrafficStats};
use apor_telemetry::{Counter, DropCause, EventKind, Histogram, Severity, Snapshot, Telemetry};
use apor_topology::{FailureSchedule, LatencyMatrix};
use bytes::Bytes;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Simulator tuning knobs.
#[derive(Debug, Clone)]
pub struct SimulatorConfig {
    /// Master seed; the run is a pure function of it (plus inputs).
    pub seed: u64,
    /// Per-packet delay jitter as a fraction of the one-way delay
    /// (uniform in `±jitter_frac`). Desynchronizes otherwise lock-stepped
    /// nodes, like real networks do.
    pub jitter_frac: f64,
    /// Width of the traffic-accounting buckets (60 s = figure 10's
    /// 1-minute windows).
    pub bucket_secs: f64,
    /// Safety valve: abort after this many events.
    pub max_events: u64,
    /// Bytes of per-packet framing added to every transmission in the
    /// bandwidth accounting. Defaults to 0 (the simulator is
    /// protocol-agnostic); drivers set it from their real wire constant
    /// — the overlay uses `apor_overlay::simnode::overlay_sim_config()`,
    /// which injects `apor_linkstate::wire::UDP_IP_OVERHEAD`.
    pub per_packet_overhead: usize,
    /// Per-node bound on packets in flight *towards* a node (its
    /// ingress queue). A packet that would exceed it is dropped with
    /// [`DropCause::QueueOverflow`] — distinguishable in the metrics
    /// from partition/outage drops ([`DropCause::LinkDown`]). The
    /// default is unbounded, which leaves the delivery schedule (and
    /// the RNG stream) of existing experiments untouched.
    pub rx_queue_cap: usize,
}

impl Default for SimulatorConfig {
    fn default() -> Self {
        SimulatorConfig {
            seed: 1,
            jitter_frac: 0.03,
            bucket_secs: 60.0,
            max_events: 200_000_000,
            per_packet_overhead: 0,
            rx_queue_cap: usize::MAX,
        }
    }
}

impl SimulatorConfig {
    /// Same configuration, accounting `bytes` of framing per packet.
    #[must_use]
    pub fn with_per_packet_overhead(mut self, bytes: usize) -> Self {
        self.per_packet_overhead = bytes;
        self
    }
}

/// What a node may do during a callback. Commands are buffered and applied
/// by the simulator after the callback returns.
enum Command {
    Send {
        to: usize,
        class: TrafficClass,
        payload: Bytes,
    },
    Timer {
        delay_s: f64,
        token: u64,
    },
}

/// The callback context handed to node behaviors.
///
/// Mirrors a sans-io driver: a node can learn the time, send packets, arm
/// timers and draw randomness — nothing else. The identical behavior can
/// therefore be driven by the tokio UDP transport instead.
pub struct Ctx<'a> {
    now: f64,
    node: usize,
    n: usize,
    rng: &'a mut ChaCha8Rng,
    cmds: &'a mut Vec<Command>,
}

impl Ctx<'_> {
    /// Current simulation time, seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// This node's index.
    #[must_use]
    pub fn node(&self) -> usize {
        self.node
    }

    /// Number of nodes in the simulation.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Send an encoded message to `to`. Self-sends are ignored (a real
    /// socket could loop back, but the overlay never needs it).
    pub fn send(&mut self, to: usize, class: TrafficClass, payload: Bytes) {
        if to == self.node {
            return;
        }
        self.cmds.push(Command::Send { to, class, payload });
    }

    /// Arm a one-shot timer that fires `delay_s` from now with `token`.
    /// There is no cancellation: handlers must ignore stale tokens.
    pub fn set_timer(&mut self, delay_s: f64, token: u64) {
        assert!(delay_s >= 0.0, "timer delay must be non-negative");
        self.cmds.push(Command::Timer { delay_s, token });
    }

    /// Deterministic per-run randomness (jitter, random failover picks).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }
}

/// A simulated node: a pure event-driven state machine.
pub trait NodeBehavior {
    /// Called once when the node starts.
    fn on_start(&mut self, ctx: &mut Ctx<'_>);
    /// Called when a packet addressed to this node arrives.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: usize, payload: &[u8]);
    /// Called when a timer armed with `token` fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64);
    /// Called when the node is shut down gracefully (via
    /// [`Simulator::shutdown_node`]): the last chance to flush farewell
    /// traffic — e.g. departure gossip — before the process "exits".
    /// Default: no farewell.
    fn on_shutdown(&mut self, _ctx: &mut Ctx<'_>) {}
    /// Downcast hook so experiment harnesses can inspect node state after
    /// a run (`sim.node(i).as_any().downcast_ref::<MyNode>()`).
    fn as_any(&self) -> &dyn std::any::Any;
}

enum Event {
    Start {
        node: usize,
    },
    Deliver {
        from: usize,
        to: usize,
        class: TrafficClass,
        payload: Bytes,
        sent_at: f64,
    },
    Timer {
        node: usize,
        token: u64,
    },
}

/// Pre-registered per-node network metrics: the packet fate counters
/// (one per [`DropCause`], so partition drops never collapse into the
/// same cell as queue overflows) and the delivery latency histogram.
struct NetMetrics {
    telemetry: Telemetry,
    sent: Counter,
    delivered: Counter,
    queued: Counter,
    drops: [Counter; 5],
    deliver_latency_us: Histogram,
}

fn drop_slot(cause: DropCause) -> usize {
    match cause {
        DropCause::LinkDown => 0,
        DropCause::Unreachable => 1,
        DropCause::Loss => 2,
        DropCause::QueueOverflow => 3,
        DropCause::ReceiverDown => 4,
    }
}

impl NetMetrics {
    fn new(node: u32) -> Self {
        let telemetry = Telemetry::new(node);
        NetMetrics {
            sent: telemetry.counter("netsim", "pkt_sent"),
            delivered: telemetry.counter("netsim", "pkt_delivered"),
            queued: telemetry.counter("netsim", "pkt_queued"),
            drops: [
                telemetry.counter("netsim", "drop_link_down"),
                telemetry.counter("netsim", "drop_unreachable"),
                telemetry.counter("netsim", "drop_loss"),
                telemetry.counter("netsim", "drop_queue_overflow"),
                telemetry.counter("netsim", "drop_receiver_down"),
            ],
            deliver_latency_us: telemetry.histogram("netsim", "deliver_latency_us"),
            telemetry,
        }
    }
}

/// Sentinel node id under which the simulator core's own metrics (the
/// event-queue depth histogram) are recorded. Picked from the top of the
/// id space so it can never collide with a real node index.
pub const CORE_TELEMETRY_NODE: u32 = u32::MAX - 1;

/// The discrete-event simulator.
pub struct Simulator {
    nodes: Vec<Box<dyn NodeBehavior>>,
    latency: LatencyMatrix,
    schedule: FailureSchedule,
    config: SimulatorConfig,
    queue: EventQueue<Event>,
    now: f64,
    rng: ChaCha8Rng,
    stats: TrafficStats,
    events_processed: u64,
    cmd_buf: Vec<Command>,
    net: Vec<NetMetrics>,
    /// Packets currently in flight towards each node (its ingress
    /// queue, bounded by `SimulatorConfig::rx_queue_cap`).
    inflight: Vec<usize>,
    /// The core's own metrics, keyed by [`CORE_TELEMETRY_NODE`].
    core: Telemetry,
    /// Queue depth observed on every event insertion: the working-set
    /// metric the idle-aware scheduler is meant to shrink.
    event_queue_depth: Histogram,
}

impl Simulator {
    /// Create a simulator over the given network. Nodes are added with
    /// [`add_node`](Self::add_node) and start at their given offsets.
    #[must_use]
    pub fn new(latency: LatencyMatrix, schedule: FailureSchedule, config: SimulatorConfig) -> Self {
        let n = latency.len();
        assert_eq!(
            schedule.len(),
            n,
            "failure schedule and latency matrix disagree on n"
        );
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let stats = TrafficStats::new(n, config.bucket_secs);
        let core = Telemetry::new(CORE_TELEMETRY_NODE);
        let event_queue_depth = core.histogram("netsim", "event_queue_depth");
        Simulator {
            nodes: Vec::with_capacity(n),
            latency,
            schedule,
            config,
            queue: EventQueue::new(),
            now: 0.0,
            rng,
            stats,
            events_processed: 0,
            cmd_buf: Vec::new(),
            net: (0..n).map(|i| NetMetrics::new(i as u32)).collect(),
            inflight: vec![0; n],
            core,
            event_queue_depth,
        }
    }

    /// Insert an event and record the resulting queue depth, so the
    /// telemetry captures the simulator's working set over time.
    fn enqueue(&mut self, time: f64, event: Event) {
        self.queue.push(time, event);
        self.event_queue_depth.observe(self.queue.len() as u64);
    }

    /// Add the next node (index = insertion order), starting at
    /// `start_at_s`.
    ///
    /// # Panics
    /// Panics if more nodes are added than the latency matrix covers.
    pub fn add_node(&mut self, behavior: Box<dyn NodeBehavior>, start_at_s: f64) {
        let idx = self.nodes.len();
        assert!(idx < self.latency.len(), "more nodes than matrix rows");
        self.nodes.push(behavior);
        self.enqueue(start_at_s, Event::Start { node: idx });
    }

    /// Current simulation time, seconds.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The traffic accounting so far.
    #[must_use]
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Node `i`'s network-layer telemetry handle (packet fate counters
    /// and the delivery-latency histogram).
    #[must_use]
    pub fn telemetry(&self, i: usize) -> &Telemetry {
        &self.net[i].telemetry
    }

    /// Every node's network metrics, plus the simulator core's own
    /// (under [`CORE_TELEMETRY_NODE`]), merged into one fleet snapshot.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for m in &self.net {
            snap.merge(&m.telemetry.snapshot());
        }
        snap.merge(&self.core.snapshot());
        snap
    }

    /// Number of events processed so far.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Borrow a node's behavior (for post-run inspection).
    #[must_use]
    pub fn node(&self, i: usize) -> &dyn NodeBehavior {
        self.nodes[i].as_ref()
    }

    /// Gracefully shut node `i` down at the current simulation time:
    /// its [`NodeBehavior::on_shutdown`] runs immediately and any
    /// farewell packets it emits are transmitted through the normal
    /// network model (timers it arms are dropped — the node is gone).
    /// Call between [`Simulator::run_until`] segments. The behavior
    /// itself decides whether to ignore later deliveries; packets *to*
    /// the slot are not blocked by the simulator unless the failure
    /// schedule also marks the node down.
    pub fn shutdown_node(&mut self, i: usize) {
        debug_assert!(self.cmd_buf.is_empty());
        let mut ctx = Ctx {
            now: self.now,
            node: i,
            n: self.latency.len(),
            rng: &mut self.rng,
            cmds: &mut self.cmd_buf,
        };
        self.nodes[i].on_shutdown(&mut ctx);
        let cmds = std::mem::take(&mut self.cmd_buf);
        for cmd in cmds {
            match cmd {
                Command::Send { to, class, payload } => self.transmit(i, to, class, payload),
                Command::Timer { .. } => {} // a departing node has no future
            }
        }
    }

    /// The failure schedule driving this run.
    #[must_use]
    pub fn schedule(&self) -> &FailureSchedule {
        &self.schedule
    }

    /// The latency matrix driving this run.
    #[must_use]
    pub fn latency(&self) -> &LatencyMatrix {
        &self.latency
    }

    /// Run until the queue is empty or simulated time reaches `until_s`.
    ///
    /// # Panics
    /// Panics when the `max_events` safety valve trips (a runaway
    /// behavior, not a normal condition).
    pub fn run_until(&mut self, until_s: f64) {
        while let Some(t) = self.queue.peek_time() {
            if t > until_s {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked event");
            self.now = scheduled.time.max(self.now);
            self.events_processed += 1;
            assert!(
                self.events_processed <= self.config.max_events,
                "event budget exceeded: runaway behavior?"
            );
            self.dispatch(scheduled.event);
        }
        self.now = self.now.max(until_s);
    }

    fn dispatch(&mut self, event: Event) {
        debug_assert!(self.cmd_buf.is_empty());
        let node_idx;
        match event {
            Event::Start { node } => {
                node_idx = node;
                let mut ctx = Ctx {
                    now: self.now,
                    node,
                    n: self.latency.len(),
                    rng: &mut self.rng,
                    cmds: &mut self.cmd_buf,
                };
                self.nodes[node].on_start(&mut ctx);
            }
            Event::Deliver {
                from,
                to,
                class,
                payload,
                sent_at,
            } => {
                node_idx = to;
                self.inflight[to] = self.inflight[to].saturating_sub(1);
                // A crashed receiver takes no delivery.
                if !self.schedule.is_node_up(to, self.now) {
                    self.drop_packet(from, to, DropCause::ReceiverDown);
                    return;
                }
                self.net[to].delivered.inc();
                self.net[to]
                    .deliver_latency_us
                    .observe(((self.now - sent_at).max(0.0) * 1e6) as u64);
                self.stats.record(
                    to,
                    class,
                    Direction::In,
                    payload.len() + self.config.per_packet_overhead,
                    self.now,
                );
                let mut ctx = Ctx {
                    now: self.now,
                    node: to,
                    n: self.latency.len(),
                    rng: &mut self.rng,
                    cmds: &mut self.cmd_buf,
                };
                self.nodes[to].on_packet(&mut ctx, from, &payload);
            }
            Event::Timer { node, token } => {
                node_idx = node;
                let mut ctx = Ctx {
                    now: self.now,
                    node,
                    n: self.latency.len(),
                    rng: &mut self.rng,
                    cmds: &mut self.cmd_buf,
                };
                self.nodes[node].on_timer(&mut ctx, token);
            }
        }
        self.apply_commands(node_idx);
    }

    fn apply_commands(&mut self, from: usize) {
        let cmds = std::mem::take(&mut self.cmd_buf);
        for cmd in cmds {
            match cmd {
                Command::Send { to, class, payload } => self.transmit(from, to, class, payload),
                Command::Timer { delay_s, token } => {
                    self.enqueue(self.now + delay_s, Event::Timer { node: from, token });
                }
            }
        }
    }

    /// Account a dropped packet to the node that owns the failure:
    /// send-side causes (down link, unreachable pair, Bernoulli loss)
    /// bill the sender, receive-side causes (ingress overflow, crashed
    /// receiver) bill the receiver. Each cause has its own counter, so
    /// a partition cut never collapses into the same cell as a queue
    /// overflow.
    fn drop_packet(&mut self, from: usize, to: usize, cause: DropCause) {
        let owner = match cause {
            DropCause::LinkDown | DropCause::Unreachable | DropCause::Loss => from,
            DropCause::QueueOverflow | DropCause::ReceiverDown => to,
        };
        let m = &self.net[owner];
        m.drops[drop_slot(cause)].inc();
        m.telemetry.event(
            self.now,
            Severity::Warn,
            EventKind::PacketDropped {
                to: to as u32,
                cause,
            },
        );
    }

    /// The network model: account the transmission, then decide loss and
    /// delay.
    fn transmit(&mut self, from: usize, to: usize, class: TrafficClass, payload: Bytes) {
        let size = payload.len() + self.config.per_packet_overhead;
        // The sender pays for the transmission whether or not it arrives.
        self.stats
            .record(from, class, Direction::Out, size, self.now);
        self.net[from].sent.inc();

        // A down link (or endpoint) swallows the packet.
        if !self.schedule.is_link_up(from, to, self.now) {
            self.drop_packet(from, to, DropCause::LinkDown);
            return;
        }
        if !self.latency.reachable(from, to) {
            self.drop_packet(from, to, DropCause::Unreachable);
            return;
        }
        // Bernoulli loss.
        if self.latency.loss(from, to) > 0.0 && self.rng.gen::<f64>() < self.latency.loss(from, to)
        {
            self.drop_packet(from, to, DropCause::Loss);
            return;
        }
        // The receiver's bounded ingress queue. Checked after the loss
        // draw so an unbounded queue (the default) leaves the RNG
        // stream — and therefore every existing experiment's schedule —
        // bit-identical.
        if self.inflight[to] >= self.config.rx_queue_cap {
            self.drop_packet(from, to, DropCause::QueueOverflow);
            return;
        }
        let base = self.latency.one_way(from, to) / 1000.0; // ms → s
        let jitter = if self.config.jitter_frac > 0.0 {
            1.0 + self.config.jitter_frac * self.rng.gen_range(-1.0..1.0)
        } else {
            1.0
        };
        let arrival = self.now + (base * jitter).max(0.0);
        self.inflight[to] += 1;
        self.net[to].queued.inc();
        self.net[to].telemetry.event(
            self.now,
            Severity::Debug,
            EventKind::PacketQueued { to: to as u32 },
        );
        self.enqueue(
            arrival,
            Event::Deliver {
                from,
                to,
                class,
                payload,
                sent_at: self.now,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apor_topology::FailureParams;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Node 0 pings node 1 on start; node 1 echoes; node 0 records the RTT.
    struct Pinger {
        peer: usize,
        sent_at: f64,
        log: Rc<RefCell<Vec<f64>>>,
    }

    impl NodeBehavior for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            self.sent_at = ctx.now();
            ctx.send(
                self.peer,
                TrafficClass::Probing,
                Bytes::from_static(b"ping"),
            );
        }
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _from: usize, payload: &[u8]) {
            if payload == b"pong" {
                self.log.borrow_mut().push(ctx.now() - self.sent_at);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    struct Echoer;
    impl NodeBehavior for Echoer {
        fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, from: usize, payload: &[u8]) {
            if payload == b"ping" {
                ctx.send(from, TrafficClass::Probing, Bytes::from_static(b"pong"));
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    fn no_jitter_config(seed: u64) -> SimulatorConfig {
        SimulatorConfig {
            seed,
            jitter_frac: 0.0,
            // The 28 bytes of IP+UDP framing an overlay driver would
            // configure; these tests assert overhead accounting.
            per_packet_overhead: 28,
            ..Default::default()
        }
    }

    fn two_node_sim(rtt_ms: f64, seed: u64) -> (Simulator, Rc<RefCell<Vec<f64>>>) {
        let m = LatencyMatrix::uniform(2, rtt_ms);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(seed));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        (sim, log)
    }

    #[test]
    fn ping_rtt_matches_matrix() {
        let (mut sim, log) = two_node_sim(80.0, 7);
        sim.run_until(10.0);
        let rtts = log.borrow();
        assert_eq!(rtts.len(), 1);
        // 80 ms RTT = 0.080 s round trip.
        assert!((rtts[0] - 0.080).abs() < 1e-9, "rtt {}", rtts[0]);
    }

    #[test]
    fn stats_account_both_directions_with_overhead() {
        let (mut sim, _log) = two_node_sim(10.0, 7);
        sim.run_until(10.0);
        let s = sim.stats();
        // ping out of 0: 4 bytes + 28; pong out of 1: same.
        assert_eq!(
            s.total_bytes(0, &[TrafficClass::Probing], &[Direction::Out], 0.0, 10.0),
            32
        );
        assert_eq!(
            s.total_bytes(0, &[TrafficClass::Probing], &[Direction::In], 0.0, 10.0),
            32
        );
        assert_eq!(
            s.total_bytes(1, &[TrafficClass::Probing], &[Direction::In], 0.0, 10.0),
            32
        );
    }

    #[test]
    fn total_loss_blocks_delivery() {
        let mut m = LatencyMatrix::uniform(2, 10.0);
        m.set_loss(0, 1, 1.0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        assert!(log.borrow().is_empty());
        // Sender still paid for the transmission.
        assert_eq!(
            sim.stats()
                .total_bytes(0, &[TrafficClass::Probing], &[Direction::Out], 0.0, 10.0),
            32
        );
    }

    #[test]
    fn directed_loss_only_drops_one_direction() {
        // Kill only the 1 → 0 direction: the ping still reaches the
        // echoer, the echo never makes it back.
        let mut m = LatencyMatrix::uniform(2, 10.0);
        m.set_loss_directed(1, 0, 1.0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        assert!(log.borrow().is_empty(), "echo direction is fully lossy");
        // The forward direction delivered: the echoer received the ping.
        assert_eq!(
            sim.stats()
                .total_bytes(1, &[TrafficClass::Probing], &[Direction::In], 0.0, 10.0),
            32
        );
        // And the loss was billed to node 1, the sender of the echo.
        assert_eq!(drop_counts(&sim, 1), [0, 0, 1, 0, 0]);
        assert_eq!(drop_counts(&sim, 0), [0, 0, 0, 0, 0]);
    }

    #[test]
    fn unreachable_pair_never_delivers() {
        let m = LatencyMatrix::unreachable(2);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        assert!(log.borrow().is_empty());
    }

    #[test]
    fn failure_schedule_blocks_link() {
        use apor_topology::failures::NodeOutage;
        let m = LatencyMatrix::uniform(2, 10.0);
        let mut params = FailureParams::with_n(2);
        params.median_concurrent = 1e-9;
        params.duration_s = 1e6;
        params.node_outages = vec![NodeOutage {
            node: 1,
            start_s: 0.0,
            end_s: 100.0,
        }];
        let schedule = apor_topology::FailureSchedule::generate(&params);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, schedule, no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            0.0, // pings while node 1 is down
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(200.0);
        assert!(log.borrow().is_empty(), "ping during outage must be lost");
    }

    /// Timers fire in order and re-arming works.
    struct Ticker {
        ticks: Rc<RefCell<Vec<f64>>>,
        period: f64,
        remaining: u32,
    }
    impl NodeBehavior for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(self.period, 1);
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, _payload: &[u8]) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            assert_eq!(token, 1);
            self.ticks.borrow_mut().push(ctx.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(self.period, 1);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    #[test]
    fn periodic_timers() {
        let m = LatencyMatrix::uniform(1, 1.0);
        let ticks = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(1, 1e6), no_jitter_config(1));
        sim.add_node(
            Box::new(Ticker {
                ticks: Rc::clone(&ticks),
                period: 5.0,
                remaining: 3,
            }),
            0.0,
        );
        sim.run_until(100.0);
        assert_eq!(*ticks.borrow(), vec![5.0, 10.0, 15.0, 20.0]);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let m = LatencyMatrix::uniform(1, 1.0);
        let ticks = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(1, 1e6), no_jitter_config(1));
        sim.add_node(
            Box::new(Ticker {
                ticks: Rc::clone(&ticks),
                period: 10.0,
                remaining: u32::MAX,
            }),
            0.0,
        );
        sim.run_until(35.0);
        assert_eq!(ticks.borrow().len(), 3);
        assert_eq!(sim.now(), 35.0);
        sim.run_until(45.0);
        assert_eq!(ticks.borrow().len(), 4);
    }

    #[test]
    fn deterministic_event_counts() {
        let run = |seed| {
            let t = apor_topology::Topology::generate(&apor_topology::PlanetLabParams {
                n: 10,
                ..Default::default()
            });
            let mut sim = Simulator::new(
                t.latency,
                FailureParams::none(10, 1e6),
                SimulatorConfig {
                    seed,
                    ..Default::default()
                },
            );
            let log = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10 {
                if i == 0 {
                    sim.add_node(
                        Box::new(Pinger {
                            peer: 5,
                            sent_at: 0.0,
                            log: Rc::clone(&log),
                        }),
                        0.0,
                    );
                } else {
                    sim.add_node(Box::new(Echoer), 0.0);
                }
            }
            sim.run_until(60.0);
            let rtts = log.borrow().clone();
            (sim.events_processed(), rtts)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn shutdown_hook_flushes_farewell_traffic() {
        struct Farewell {
            peer: usize,
        }
        impl NodeBehavior for Farewell {
            fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, _payload: &[u8]) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
            fn on_shutdown(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(
                    self.peer,
                    TrafficClass::Membership,
                    Bytes::from_static(b"bye"),
                );
                ctx.set_timer(1.0, 9); // must be dropped, not fire
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        struct Recorder {
            got: Rc<RefCell<Vec<Vec<u8>>>>,
        }
        impl NodeBehavior for Recorder {
            fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, payload: &[u8]) {
                self.got.borrow_mut().push(payload.to_vec());
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let got = Rc::new(RefCell::new(Vec::new()));
        let m = LatencyMatrix::uniform(2, 10.0);
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(4));
        sim.add_node(Box::new(Farewell { peer: 1 }), 0.0);
        sim.add_node(
            Box::new(Recorder {
                got: Rc::clone(&got),
            }),
            0.0,
        );
        sim.run_until(5.0);
        sim.shutdown_node(0);
        let before = sim.events_processed();
        sim.run_until(20.0);
        assert_eq!(*got.borrow(), vec![b"bye".to_vec()]);
        // Only the farewell delivery — the shutdown timer never fired.
        assert_eq!(sim.events_processed(), before + 1);
    }

    /// Every drop cause must land in its own counter — a partition cut
    /// and a queue overflow are different diagnoses.
    fn drop_counts(sim: &Simulator, node: usize) -> [u64; 5] {
        let snap = sim.telemetry(node).snapshot();
        [
            "drop_link_down",
            "drop_unreachable",
            "drop_loss",
            "drop_queue_overflow",
            "drop_receiver_down",
        ]
        .map(|name| snap.counter(node as u32, "netsim", name).unwrap_or(0))
    }

    #[test]
    fn loss_drop_is_counted_as_loss() {
        let mut m = LatencyMatrix::uniform(2, 10.0);
        m.set_loss(0, 1, 1.0);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log,
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        assert_eq!(drop_counts(&sim, 0), [0, 0, 1, 0, 0], "loss bills sender");
        assert_eq!(drop_counts(&sim, 1), [0, 0, 0, 0, 0]);
    }

    #[test]
    fn unreachable_drop_is_counted_as_unreachable() {
        let m = LatencyMatrix::unreachable(2);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log,
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        assert_eq!(drop_counts(&sim, 0), [0, 1, 0, 0, 0]);
    }

    #[test]
    fn partition_drop_is_counted_as_link_down() {
        use apor_topology::failures::NodeOutage;
        let m = LatencyMatrix::uniform(2, 10.0);
        let mut params = FailureParams::with_n(2);
        params.median_concurrent = 1e-9;
        params.duration_s = 1e6;
        params.node_outages = vec![NodeOutage {
            node: 1,
            start_s: 0.0,
            end_s: 100.0,
        }];
        let schedule = apor_topology::FailureSchedule::generate(&params);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, schedule, no_jitter_config(3));
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log,
            }),
            0.0,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(50.0);
        assert_eq!(drop_counts(&sim, 0), [1, 0, 0, 0, 0]);
        // The journal carries the structured drop event with its cause.
        let events = sim.telemetry(0).events();
        assert!(events.iter().any(|e| matches!(
            e.kind,
            apor_telemetry::EventKind::PacketDropped {
                to: 1,
                cause: DropCause::LinkDown
            }
        )));
    }

    #[test]
    fn rx_queue_overflow_drop_is_counted_and_bills_receiver() {
        struct Burst {
            peer: usize,
        }
        impl NodeBehavior for Burst {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..3 {
                    ctx.send(self.peer, TrafficClass::Probing, Bytes::from_static(b"x"));
                }
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, _payload: &[u8]) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let m = LatencyMatrix::uniform(2, 10.0);
        let cfg = SimulatorConfig {
            rx_queue_cap: 2,
            ..no_jitter_config(3)
        };
        let mut sim = Simulator::new(m, FailureParams::none(2, 1e6), cfg);
        sim.add_node(Box::new(Burst { peer: 1 }), 0.0);
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(10.0);
        // Three packets burst into a queue of two: one overflow, billed
        // to the receiver, and the two queued ones still deliver.
        assert_eq!(drop_counts(&sim, 0), [0, 0, 0, 0, 0]);
        assert_eq!(drop_counts(&sim, 1), [0, 0, 0, 1, 0]);
        let snap = sim.telemetry(1).snapshot();
        assert_eq!(snap.counter(1, "netsim", "pkt_delivered"), Some(2));
        assert_eq!(snap.counter(1, "netsim", "pkt_queued"), Some(2));
        // After delivery the queue drains: a later burst fits again.
        assert_eq!(sim.inflight[1], 0);
    }

    #[test]
    fn mid_flight_crash_is_counted_as_receiver_down() {
        use apor_topology::failures::NodeOutage;
        let m = LatencyMatrix::uniform(2, 100.0); // 50 ms one-way
        let mut params = FailureParams::with_n(2);
        params.median_concurrent = 1e-9;
        params.duration_s = 1e6;
        params.node_outages = vec![NodeOutage {
            node: 1,
            start_s: 5.0,
            end_s: 100.0,
        }];
        let schedule = apor_topology::FailureSchedule::generate(&params);
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(m, schedule, no_jitter_config(3));
        // Sent at t=4.99 (link up), arrives t=5.04 (receiver down).
        sim.add_node(
            Box::new(Pinger {
                peer: 1,
                sent_at: 0.0,
                log: Rc::clone(&log),
            }),
            4.99,
        );
        sim.add_node(Box::new(Echoer), 0.0);
        sim.run_until(50.0);
        assert!(log.borrow().is_empty());
        assert_eq!(drop_counts(&sim, 0), [0, 0, 0, 0, 0]);
        assert_eq!(drop_counts(&sim, 1), [0, 0, 0, 0, 1]);
    }

    #[test]
    fn delivery_metrics_and_latency_histogram() {
        let (mut sim, _log) = two_node_sim(80.0, 7);
        sim.run_until(10.0);
        let fleet = sim.telemetry_snapshot();
        // Ping (0→1) and pong (1→0): one delivery each.
        assert_eq!(fleet.counter(0, "netsim", "pkt_delivered"), Some(1));
        assert_eq!(fleet.counter(1, "netsim", "pkt_delivered"), Some(1));
        assert_eq!(fleet.counter_total("netsim", "pkt_sent"), 2);
        let h = fleet.histogram(0, "netsim", "deliver_latency_us").unwrap();
        // 40 ms one-way = 40 000 µs.
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 40_000);
    }

    #[test]
    fn event_queue_depth_histogram_is_recorded() {
        let (mut sim, _log) = two_node_sim(80.0, 7);
        sim.run_until(10.0);
        let fleet = sim.telemetry_snapshot();
        let h = fleet
            .histogram(CORE_TELEMETRY_NODE, "netsim", "event_queue_depth")
            .expect("core records queue depth");
        // Two Start events + ping + pong = four insertions.
        assert_eq!(h.count, 4);
        assert!(h.max >= 1);
    }

    #[test]
    fn self_send_is_ignored() {
        struct SelfSender;
        impl NodeBehavior for SelfSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let me = ctx.node();
                ctx.send(me, TrafficClass::Probing, Bytes::from_static(b"x"));
            }
            fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, _payload: &[u8]) {
                panic!("self-delivery must not happen");
            }
            fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let m = LatencyMatrix::uniform(1, 1.0);
        let mut sim = Simulator::new(m, FailureParams::none(1, 1e6), no_jitter_config(1));
        sim.add_node(Box::new(SelfSender), 0.0);
        sim.run_until(10.0);
    }
}
