//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates its system twice: in an *emulation* ("the emulated
//! nodes run on one physical machine … the emulation uses the same
//! implementation as the one deployed on the Internet", section 6.1) and
//! in a real PlanetLab deployment. This crate is the emulation half: the
//! same sans-io overlay node that runs on tokio UDP sockets runs here
//! against a simulated network with
//!
//! * per-pair latency from a [`LatencyMatrix`](apor_topology::LatencyMatrix),
//! * per-pair Bernoulli packet loss,
//! * link/node failure injection from a
//!   [`FailureSchedule`](apor_topology::FailureSchedule),
//! * and per-packet, per-class, time-bucketed **bandwidth accounting** —
//!   the measurement behind figures 9 and 10.
//!
//! Determinism: events are processed in `(time, sequence)` order and all
//! randomness flows from one seeded ChaCha stream, so a run is a pure
//! function of `(topology, schedule, behaviors, seed)`.
//!
//! The simulator transports opaque byte buffers: nodes hand it *encoded*
//! messages, so every simulated run also exercises the real wire codec.

#![forbid(unsafe_code)]
// The numeric kernels index several arrays with one loop counter;
// iterator rewrites obscure them without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod queue;
mod sim;
mod stats;

pub use apor_telemetry::DropCause;
pub use sim::{Ctx, NodeBehavior, Simulator, SimulatorConfig};
pub use stats::{Direction, TrafficClass, TrafficStats};
