//! A deterministic discrete-event network simulator.
//!
//! The paper evaluates its system twice: in an *emulation* ("the emulated
//! nodes run on one physical machine … the emulation uses the same
//! implementation as the one deployed on the Internet", section 6.1) and
//! in a real PlanetLab deployment. This crate is the emulation half: the
//! same sans-io overlay node that runs on tokio UDP sockets runs here
//! against a simulated network with
//!
//! * per-pair latency from a [`LatencyMatrix`](apor_topology::LatencyMatrix),
//! * per-pair Bernoulli packet loss,
//! * link/node failure injection from a
//!   [`FailureSchedule`](apor_topology::FailureSchedule),
//! * and per-packet, per-class, time-bucketed **bandwidth accounting** —
//!   the measurement behind figures 9 and 10.
//!
//! Determinism: events are processed in `(time, sequence)` order and all
//! randomness flows from one seeded ChaCha stream, so a run is a pure
//! function of `(topology, schedule, behaviors, seed)`.
//!
//! # The idle-aware scheduling contract
//!
//! Simulated time advances *only* through the binary-heap event queue:
//! there is no global tick, no per-node polling loop, and no cost
//! proportional to wall-clock or simulated duration. A node that arms no
//! timer and receives no packet consumes **zero** events — an idle
//! overlay of 4096 nodes is exactly as cheap to simulate as an idle
//! overlay of 2. The flip side of the contract binds the behaviors:
//!
//! * Timers are one-shot and **uncancellable** ([`Ctx::set_timer`]).
//!   A behavior that wants fewer wakeups must *coalesce* — track its own
//!   earliest-pending-work time and only arm a timer that undercuts the
//!   one already armed (see `apor_overlay`'s `Scheduling::Coalesced`).
//!   Stale timers will still fire; handlers must treat them as harmless
//!   polls, not as authoritative deadlines.
//! * Because wakeups are heap-driven, the queue depth *is* the
//!   simulator's working set. The core records it on every insertion
//!   into the `netsim/event_queue_depth` histogram (under the
//!   [`CORE_TELEMETRY_NODE`] sentinel id, merged into
//!   [`Simulator::telemetry_snapshot`]), which is how the scale study
//!   verifies that idle nodes really cost nothing.
//!
//! The simulator transports opaque byte buffers: nodes hand it *encoded*
//! messages, so every simulated run also exercises the real wire codec.

#![forbid(unsafe_code)]
// The numeric kernels index several arrays with one loop counter;
// iterator rewrites obscure them without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod queue;
mod sim;
mod stats;

pub use apor_telemetry::DropCause;
pub use sim::{Ctx, NodeBehavior, Simulator, SimulatorConfig, CORE_TELEMETRY_NODE};
pub use stats::{Direction, TrafficClass, TrafficStats};
