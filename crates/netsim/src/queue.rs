//! The event queue: a binary heap ordered by `(time, sequence)`.
//!
//! `f64` time is ordered with `total_cmp`; the monotonically increasing
//! sequence number breaks ties so that simultaneous events are processed
//! in insertion order — this is what makes runs bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the event queue.
#[derive(Debug)]
pub(crate) struct Scheduled<E> {
    pub time: f64,
    pub seq: u64,
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time) == Ordering::Equal && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-queue of timestamped events.
#[derive(Debug)]
pub(crate) struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: f64, event: E) {
        debug_assert!(time.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.peek_time(), Some(1.0));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_broken_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5.0, 1);
        q.push(5.0, 2);
        q.push(5.0, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|s| s.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(10.0, "late");
        q.push(1.0, "early");
        assert_eq!(q.pop().unwrap().event, "early");
        q.push(5.0, "mid");
        assert_eq!(q.pop().unwrap().event, "mid");
        assert_eq!(q.pop().unwrap().event, "late");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
