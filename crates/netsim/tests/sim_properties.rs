//! Simulator invariants under randomized workloads.

use apor_netsim::{Ctx, NodeBehavior, Simulator, SimulatorConfig, TrafficClass};
use apor_topology::{FailureParams, LatencyMatrix, PlanetLabParams, Topology};
use bytes::Bytes;
use proptest::prelude::*;

/// A chatty node: every second, sends a payload to a rotating peer.
struct Chatter {
    payload: usize,
    received: u64,
}

impl NodeBehavior for Chatter {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(1.0, 1);
    }
    fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _from: usize, payload: &[u8]) {
        assert_eq!(payload.len(), self.payload, "payload corrupted in flight");
        self.received += 1;
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let n = ctx.node_count();
        let to = (ctx.node() + 1 + (ctx.now() as usize)) % n;
        ctx.send(
            to,
            TrafficClass::Routing,
            Bytes::from(vec![0u8; self.payload]),
        );
        ctx.set_timer(1.0, 1);
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

fn run_chatter(n: usize, seed: u64, loss: f64, payload: usize) -> (u64, u64, u64) {
    let mut m = LatencyMatrix::uniform(n, 50.0);
    for i in 0..n {
        for j in (i + 1)..n {
            m.set_loss(i, j, loss);
        }
    }
    let mut sim = Simulator::new(
        m,
        FailureParams::none(n, 1e9),
        SimulatorConfig {
            seed,
            ..Default::default()
        },
    );
    for _ in 0..n {
        sim.add_node(
            Box::new(Chatter {
                payload,
                received: 0,
            }),
            0.0,
        );
    }
    sim.run_until(120.0);
    let sent: u64 = (0..n)
        .map(|i| {
            sim.stats().total_bytes(
                i,
                &[TrafficClass::Routing],
                &[apor_netsim::Direction::Out],
                0.0,
                130.0,
            )
        })
        .sum();
    let received: u64 = (0..n)
        .map(|i| {
            sim.stats().total_bytes(
                i,
                &[TrafficClass::Routing],
                &[apor_netsim::Direction::In],
                0.0,
                130.0,
            )
        })
        .sum();
    let delivered: u64 = (0..n)
        .map(|i| {
            sim.node(i)
                .as_any()
                .downcast_ref::<Chatter>()
                .unwrap()
                .received
        })
        .sum();
    (sent, received, delivered)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Conservation: bytes received never exceed bytes sent; with zero
    /// loss they match exactly (all packets delivered within horizon +
    /// in-flight slack handled by the margin in send cadence).
    #[test]
    fn byte_conservation(n in 2usize..10, seed in any::<u64>(), payload in 1usize..500) {
        let (sent, received, _delivered) = run_chatter(n, seed, 0.0, payload);
        prop_assert!(sent > 0);
        // Packets in flight at the horizon may be unreceived; allow one
        // packet per node of slack.
        let slack = (n * (payload + 28)) as u64;
        prop_assert!(received <= sent, "received {received} > sent {sent}");
        prop_assert!(sent - received <= slack, "lost {} bytes with zero loss", sent - received);
    }

    /// With total loss, nothing is delivered but sending is still charged.
    #[test]
    fn total_loss_charges_sender_only(n in 2usize..8, seed in any::<u64>()) {
        let (sent, received, delivered) = run_chatter(n, seed, 1.0, 64);
        prop_assert!(sent > 0);
        prop_assert_eq!(received, 0);
        prop_assert_eq!(delivered, 0);
    }

    /// Bit-determinism: identical seeds give identical traffic and event
    /// counts on an arbitrary synthetic topology.
    #[test]
    fn determinism(seed in any::<u64>(), n in 3usize..12) {
        let run = || {
            let topo = Topology::generate(&PlanetLabParams { n, seed: 1, ..Default::default() });
            let mut sim = Simulator::new(
                topo.latency,
                FailureParams::none(n, 1e9),
                SimulatorConfig { seed, ..Default::default() },
            );
            for _ in 0..n {
                sim.add_node(Box::new(Chatter { payload: 32, received: 0 }), 0.0);
            }
            sim.run_until(60.0);
            let events = sim.events_processed();
            let bytes: Vec<u64> = (0..n)
                .map(|i| sim.stats().total_bytes(
                    i,
                    &TrafficClass::ALL,
                    &[apor_netsim::Direction::In, apor_netsim::Direction::Out],
                    0.0,
                    70.0,
                ))
                .collect();
            (events, bytes)
        };
        prop_assert_eq!(run(), run());
    }
}
