//! The view-agreement ledger: from gossip events to agreed, versioned
//! membership views.
//!
//! ## The invariant
//!
//! The overlay's quorum grid is derived from the *sorted member list* of
//! the current view, and routing messages are tagged with the *view
//! version*; two nodes that exchange grid-indexed state while holding
//! the same version must hold the same list. A centralized coordinator
//! gets this for free by numbering its broadcasts. A gossip protocol
//! has no single sequencer, so this module makes both the list and the
//! version **pure functions of converged state**:
//!
//! * Per member, the ledger keeps `(incarnation, dead)` — a
//!   join-semilattice ordered by incarnation first, then `dead > alive`.
//!   Applying events in any order, with any duplication, converges to
//!   the same per-member state (eventual-consistency workhorse).
//! * The **version** is the sum over members of `2·incarnation + dead + 1`.
//!   Every lattice step strictly increases one summand (or adds one), so
//!   the version is monotone along every node's local history, and equal
//!   ledgers give equal versions — no counter exchange needed.
//!
//! Transient *suspicion* never enters the ledger: only confirmed events
//! (join, refutation, confirmed-faulty, leave) move views, which keeps
//! the grid stable under probe noise.

use apor_quorum::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Converged per-member state: the lattice point `(incarnation, dead)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemberState {
    /// The member's self-asserted incarnation (bumped to refute
    /// suspicion).
    pub incarnation: u32,
    /// Confirmed faulty or departed at this incarnation.
    pub dead: bool,
}

impl MemberState {
    /// A fresh, live member at incarnation 0.
    #[must_use]
    pub fn joined() -> Self {
        MemberState {
            incarnation: 0,
            dead: false,
        }
    }

    /// Does `(incarnation, dead)` supersede `self` in the lattice?
    #[must_use]
    pub fn superseded_by(self, incarnation: u32, dead: bool) -> bool {
        incarnation > self.incarnation || (incarnation == self.incarnation && dead && !self.dead)
    }

    /// This state's contribution to the view version, scaled by the
    /// member's salt so that *different* concurrent events almost
    /// never sum to the same version (see [`ViewLedger::version`]).
    fn version_weight(self, id: NodeId) -> u32 {
        (2 * self.incarnation + u32::from(self.dead) + 1).saturating_mul(version_salt(id))
    }
}

/// A deterministic per-member multiplier in `1..=16`, so two ledgers
/// that diverge by events about *different* members disagree on the
/// version with high probability (equal-sum collisions need
/// `salt(a)·Δa = salt(b)·Δb`).
fn version_salt(id: NodeId) -> u32 {
    let mut z = u32::from(id.0).wrapping_mul(0x9E37_79B9);
    z ^= z >> 16;
    1 + (z & 0xF)
}

/// The grow-only membership ledger shared (by convergence, not by
/// consensus) across all nodes.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewLedger {
    records: BTreeMap<NodeId, MemberState>,
}

impl ViewLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        ViewLedger::default()
    }

    /// A ledger bootstrapped with `members` all live at incarnation 0 —
    /// every node bootstrapped with the same set derives the identical
    /// initial view.
    #[must_use]
    pub fn bootstrap(members: &[NodeId]) -> Self {
        let mut ledger = ViewLedger::new();
        for &m in members {
            ledger.records.insert(m, MemberState::joined());
        }
        ledger
    }

    /// Apply one confirmed event. Returns `true` when the ledger moved
    /// (⇒ the event is news worth re-gossiping).
    pub fn apply(&mut self, id: NodeId, incarnation: u32, dead: bool) -> bool {
        match self.records.get_mut(&id) {
            Some(state) => {
                if state.superseded_by(incarnation, dead) {
                    *state = MemberState { incarnation, dead };
                    true
                } else {
                    false
                }
            }
            None => {
                self.records.insert(id, MemberState { incarnation, dead });
                true
            }
        }
    }

    /// The member's converged state, if ever heard of.
    #[must_use]
    pub fn state(&self, id: NodeId) -> Option<MemberState> {
        self.records.get(&id).copied()
    }

    /// The member's current incarnation (0 when unknown).
    #[must_use]
    pub fn incarnation(&self, id: NodeId) -> u32 {
        self.records.get(&id).map_or(0, |s| s.incarnation)
    }

    /// Is `id` currently a live member?
    #[must_use]
    pub fn is_live(&self, id: NodeId) -> bool {
        self.records.get(&id).is_some_and(|s| !s.dead)
    }

    /// Number of live members, without materializing the list.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.records.values().filter(|s| !s.dead).count()
    }

    /// The live members, sorted ascending — the quorum grid's order.
    #[must_use]
    pub fn members(&self) -> Vec<NodeId> {
        // BTreeMap iteration is already sorted and deduplicated.
        self.records
            .iter()
            .filter(|(_, s)| !s.dead)
            .map(|(&id, _)| id)
            .collect()
    }

    /// The view version: monotone along any application order, equal
    /// for equal ledgers.
    ///
    /// ## The transient-collision window
    ///
    /// No monotone 32-bit scalar can injectively name every member
    /// list, so two ledgers that have diverged by *different*
    /// concurrent events could in principle share a version while
    /// holding different lists — a transient violation of the
    /// identical-views ⇒ identical-grids invariant, healed at the
    /// next gossip convergence (the union of the events is a strictly
    /// higher version, which rebuilds the grid). The per-member salt
    /// in [`version_salt`] makes such collisions require
    /// `salt(a)·Δa = salt(b)·Δb` rather than the common symmetric
    /// case `Δa = Δb`; eliminating the window entirely needs a
    /// content digest in the routing wire (ROADMAP follow-on).
    #[must_use]
    pub fn version(&self) -> u32 {
        self.records
            .iter()
            .map(|(&id, s)| s.version_weight(id))
            .fold(0u32, u32::saturating_add)
    }

    /// Number of members ever heard of (live + dead).
    #[must_use]
    pub fn known(&self) -> usize {
        self.records.len()
    }

    /// A 32-bit content fingerprint: FNV-1a over the sorted records,
    /// folded from 64 bits. Equal ledgers give equal fingerprints;
    /// *different* ledgers collide with probability ≈ 2⁻³², not the
    /// percent-level odds of the salted [`version`](Self::version) sum
    /// — which is why anti-entropy digests compare this, never the
    /// version. (Unlike the version it is not monotone; it only
    /// answers "same or different?".)
    #[must_use]
    pub fn fingerprint(&self) -> u32 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        };
        for (&id, s) in &self.records {
            for b in id.0.to_be_bytes() {
                eat(b);
            }
            for b in s.incarnation.to_be_bytes() {
                eat(b);
            }
            eat(u8::from(s.dead));
        }
        (h ^ (h >> 32)) as u32
    }

    /// Iterate over all records (diagnostics, anti-entropy follow-on).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, MemberState)> + '_ {
        self.records.iter().map(|(&id, &s)| (id, s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_is_order_insensitive_and_idempotent() {
        let events = [
            (NodeId(3), 0, false),
            (NodeId(5), 0, false),
            (NodeId(3), 0, true),
            (NodeId(3), 1, false),
            (NodeId(9), 2, true),
        ];
        let mut forward = ViewLedger::new();
        for &(id, inc, dead) in &events {
            forward.apply(id, inc, dead);
            forward.apply(id, inc, dead); // duplicate delivery
        }
        let mut backward = ViewLedger::new();
        for &(id, inc, dead) in events.iter().rev() {
            backward.apply(id, inc, dead);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.version(), backward.version());
        assert_eq!(forward.members(), vec![NodeId(3), NodeId(5)]);
    }

    #[test]
    fn version_is_monotone() {
        let mut ledger = ViewLedger::bootstrap(&[NodeId(1), NodeId(2)]);
        let mut last = ledger.version();
        let events = [
            (NodeId(7), 0, false), // join
            (NodeId(2), 0, true),  // confirmed faulty
            (NodeId(2), 1, false), // rejoin at next incarnation
            (NodeId(1), 3, false), // refutations skipped ahead
            (NodeId(1), 3, true),  // then confirmed dead
        ];
        for &(id, inc, dead) in &events {
            assert!(ledger.apply(id, inc, dead));
            let v = ledger.version();
            assert!(v > last, "version must strictly increase, {v} vs {last}");
            last = v;
        }
        // Stale news moves nothing.
        assert!(!ledger.apply(NodeId(2), 0, true));
        assert_eq!(ledger.version(), last);
    }

    #[test]
    fn dead_beats_alive_within_incarnation_only() {
        let mut ledger = ViewLedger::new();
        ledger.apply(NodeId(4), 1, true);
        assert!(
            !ledger.apply(NodeId(4), 1, false),
            "alive(1) loses to dead(1)"
        );
        assert!(!ledger.is_live(NodeId(4)));
        assert!(ledger.apply(NodeId(4), 2, false), "alive(2) resurrects");
        assert!(ledger.is_live(NodeId(4)));
    }

    #[test]
    fn fingerprint_separates_what_the_version_sum_conflates() {
        // Two ledgers diverged by different events can share a version
        // (the salted sum has percent-level collisions); the content
        // fingerprint must still tell them apart. Construct a real sum
        // collision: two dead-flips whose salts are equal.
        let ids: Vec<NodeId> = (0..200).map(NodeId).collect();
        let (a_id, b_id) = {
            let mut found = None;
            'outer: for &a in &ids {
                for &b in &ids {
                    if a != b {
                        let base = ViewLedger::bootstrap(&[a, b]);
                        let mut da = base.clone();
                        da.apply(a, 0, true);
                        let mut db = base.clone();
                        db.apply(b, 0, true);
                        if da.version() == db.version() {
                            found = Some((a, b));
                            break 'outer;
                        }
                    }
                }
            }
            found.expect("16 salt values over 200 ids must collide")
        };
        let base = ViewLedger::bootstrap(&[a_id, b_id]);
        let mut da = base.clone();
        da.apply(a_id, 0, true);
        let mut db = base.clone();
        db.apply(b_id, 0, true);
        assert_eq!(da.version(), db.version(), "constructed version collision");
        assert_ne!(da, db);
        assert_ne!(
            da.fingerprint(),
            db.fingerprint(),
            "the content fingerprint must separate diverged ledgers"
        );
        // Equal ledgers always agree.
        assert_eq!(
            base.fingerprint(),
            ViewLedger::bootstrap(&[b_id, a_id]).fingerprint()
        );
    }

    #[test]
    fn bootstrap_views_identical() {
        let a = ViewLedger::bootstrap(&[NodeId(9), NodeId(1), NodeId(4)]);
        let b = ViewLedger::bootstrap(&[NodeId(1), NodeId(4), NodeId(9)]);
        assert_eq!(a.version(), b.version());
        assert_eq!(a.members(), b.members());
        assert_eq!(a.members(), vec![NodeId(1), NodeId(4), NodeId(9)]);
    }
}
