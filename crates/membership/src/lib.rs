//! Decentralized SWIM-style gossip membership (`apor-membership`).
//!
//! The paper runs "a simple centralized membership service, running on a
//! coordinator node" — a single point of failure and the first
//! bottleneck on the way to a production-scale overlay. This crate
//! replaces it with a coordinator-free design in the SWIM family
//! (Das et al., *SWIM: Scalable Weakly-consistent Infection-style
//! Process Group Membership Protocol*, DSN 2002):
//!
//! * **Failure detection** ([`swim`]) — every protocol period each node
//!   pings one peer from a shuffled rotation; on a missed ack it asks
//!   `k` helpers to ping indirectly (`ping-req`); still-silent targets
//!   become *suspected* and, after a suspicion timeout, *confirmed
//!   faulty*. Per-node probe traffic is constant in `n`.
//! * **Dissemination** — membership events (alive / suspect / faulty /
//!   left) piggyback on the ping/ack traffic, each retransmitted a
//!   bounded number of times (infection-style, no broadcast hot spot).
//! * **Anti-entropy** ([`AntiEntropyConfig`]) — piggybacking spreads
//!   *fresh* events; state that diverged while a node was unreachable
//!   has no retransmission budget left. So every
//!   `anti_entropy.sync_period_s` a node picks one partner uniformly
//!   from every member it has ever heard of — **including
//!   confirmed-dead ones, which is what lets a healed partition
//!   re-merge**: each side of a split holds the other dead, and a
//!   live-only choice would never cross the boundary. The initiator
//!   pushes its full ledger ([`SwimMsg::SyncReq`], chunked into
//!   MTU-sized frames); the partner merges and, once all chunks of the
//!   round arrived, pulls back one delta of everything it knows better
//!   ([`SwimMsg::SyncRsp`]). Because the ledger is a
//!   join-semilattice, push-pull over random pairs converges any
//!   divergence in `O(log n)` rounds, and a node that discovers it was
//!   declared dead refutes with a bumped incarnation exactly as under
//!   ordinary suspicion.
//! * **Adaptive suspicion** — the suspicion lifetime is
//!   `max(suspicion_periods, suspicion_log_scale · log₂ n)` protocol
//!   periods (`n` = live members), the SWIM scaling that keeps the
//!   false-positive rate flat as refutations need more gossip hops in
//!   bigger clusters; and each node multiplies *its own* verdicts by
//!   `1 + local_health`, a Lifeguard-style counter raised by missed
//!   acks and self-refutations and drained by clean probe rounds — a
//!   lossy node slows its own judgments instead of falsely accusing
//!   well-connected peers.
//! * **View agreement** ([`view`]) — confirmed events accumulate in a
//!   [`ViewLedger`], a join-semilattice per member (incarnation, then
//!   dead-beats-alive). Both the **member list** and the **view
//!   version** are pure functions of the converged ledger, so any two
//!   nodes whose ledgers agree install byte-identical
//!   `(version, sorted members)` views *without any coordination* —
//!   exactly the invariant the overlay's quorum grid needs (identical
//!   views ⇒ identical grids). Versions are monotone: every lattice
//!   step strictly increases the version.
//!
//! The state machine is sans-io and deterministic: `on_tick` /
//! `on_message` in, messages out, all randomness from a seeded ChaCha
//! stream. The netsim driver and any real transport run the identical
//! code, like every other protocol core in this workspace.
//!
//! Measured in `experiments::partition`: a 5-node minority cut off a
//! 32-node overlay for 60 s reconverges to identical views within a
//! few protocol periods of the heal with anti-entropy on, and never
//! without it (each side permanently holds the other dead).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod swim;
pub mod view;
pub mod wire;

pub use swim::{AntiEntropyConfig, Swim, SwimConfig, SyncStats};
pub use view::{MemberState, ViewLedger};
pub use wire::{SwimMsg, SwimStatus, SwimUpdate};
