//! Decentralized SWIM-style gossip membership (`apor-membership`).
//!
//! The paper runs "a simple centralized membership service, running on a
//! coordinator node" — a single point of failure and the first
//! bottleneck on the way to a production-scale overlay. This crate
//! replaces it with a coordinator-free design in the SWIM family
//! (Das et al., *SWIM: Scalable Weakly-consistent Infection-style
//! Process Group Membership Protocol*, DSN 2002):
//!
//! * **Failure detection** ([`swim`]) — every protocol period each node
//!   pings one peer from a shuffled rotation; on a missed ack it asks
//!   `k` helpers to ping indirectly (`ping-req`); still-silent targets
//!   become *suspected* and, after a suspicion timeout, *confirmed
//!   faulty*. Per-node probe traffic is constant in `n`.
//! * **Dissemination** — membership events (alive / suspect / faulty /
//!   left) piggyback on the ping/ack traffic, each retransmitted a
//!   bounded number of times (infection-style, no broadcast hot spot).
//! * **View agreement** ([`view`]) — confirmed events accumulate in a
//!   [`ViewLedger`], a join-semilattice per member (incarnation, then
//!   dead-beats-alive). Both the **member list** and the **view
//!   version** are pure functions of the converged ledger, so any two
//!   nodes whose ledgers agree install byte-identical
//!   `(version, sorted members)` views *without any coordination* —
//!   exactly the invariant the overlay's quorum grid needs (identical
//!   views ⇒ identical grids). Versions are monotone: every lattice
//!   step strictly increases the version.
//!
//! The state machine is sans-io and deterministic: `on_tick` /
//! `on_message` in, messages out, all randomness from a seeded ChaCha
//! stream. The netsim driver and any real transport run the identical
//! code, like every other protocol core in this workspace.
//!
//! What this deliberately does **not** solve (recorded in ROADMAP.md):
//! partition healing needs an anti-entropy full-state sync, and a
//! long-partitioned minority keeps a stale view until it is re-infected.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod swim;
pub mod view;
pub mod wire;

pub use swim::{Swim, SwimConfig};
pub use view::{MemberState, ViewLedger};
pub use wire::{SwimMsg, SwimStatus, SwimUpdate};
