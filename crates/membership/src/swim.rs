//! The sans-io SWIM state machine.
//!
//! ## Protocol sketch (Das et al., DSN 2002)
//!
//! Time is divided into *protocol periods* of [`SwimConfig::period_s`]
//! seconds. Each period the node picks one live peer from a shuffled
//! rotation and sends it a [`SwimMsg::Ping`]. If no ack arrives within
//! [`SwimConfig::ping_timeout_s`], the node asks
//! [`SwimConfig::ping_req_fanout`] other peers to probe the target
//! indirectly ([`SwimMsg::PingReq`] → [`SwimMsg::ProxyAck`]), which
//! distinguishes a dead target from a lossy direct path. A target that
//! stays silent through the whole period becomes **suspected**; the
//! suspicion gossips through the cluster, and the target can refute it
//! by bumping its *incarnation* and gossiping a fresh `Alive`. A
//! suspicion that survives [`SwimConfig::suspicion_periods`] periods is
//! **confirmed faulty** — only then does the membership view change.
//!
//! Every outgoing message piggybacks up to
//! [`SwimConfig::max_piggyback`] pending membership events, each
//! retransmitted at most [`SwimConfig::gossip_transmissions`] times —
//! infection-style dissemination with per-node traffic constant in `n`.
//!
//! ## Interface
//!
//! Strictly sans-io, like every protocol core in this workspace: the
//! driver calls [`Swim::on_tick`] on a coarse timer and
//! [`Swim::on_message`] per datagram; both append `(destination,
//! message)` pairs to an output vector. View installation goes through
//! [`Swim::poll_view`], which batches ledger changes on the
//! [`SwimConfig::publish_period_s`] cadence and returns monotonically
//! versioned `(version, sorted members)` snapshots (see
//! [`crate::view`] for why concurrent publishers agree).

use crate::view::ViewLedger;
use crate::wire::{
    SwimMsg, SwimStatus, SwimUpdate, SWIM_MAX_FRAME_ENTRIES, SWIM_MTU_FRAME_ENTRIES,
};
use apor_quorum::NodeId;
use apor_telemetry::trace::{episode_id, episode_root_span};
use apor_telemetry::{Counter, EventKind, Severity, SpanKind, Telemetry, TraceCtx, Tracer};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Anti-entropy (push-pull full-ledger sync) knobs.
///
/// Piggybacked gossip disseminates *fresh* events; a node that missed
/// an event while partitioned (or that holds verdicts the other side of
/// a healed partition never saw) has no retransmission left to learn
/// from. Anti-entropy closes that gap: each `sync_period_s` a node
/// picks one partner uniformly from **every member it has ever heard
/// of — dead or alive** — and pushes its full ledger
/// ([`SwimMsg::SyncReq`]); the partner merges and pulls back the delta
/// it knows better ([`SwimMsg::SyncRsp`]). Including confirmed-dead
/// partners is what heals partitions: each side of a split considers
/// the other dead, so a live-only choice would never cross the healed
/// boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AntiEntropyConfig {
    /// Run the periodic push-pull sync at all.
    pub enabled: bool,
    /// Seconds between sync rounds initiated by this node. Random pair
    /// selection mixes any divergence through the cluster in `O(log n)`
    /// rounds.
    pub sync_period_s: f64,
    /// Ledger records per sync frame; ledgers larger than this are
    /// chunked across frames. Defaults to the MTU-safe
    /// [`SWIM_MTU_FRAME_ENTRIES`]; hard wire cap
    /// [`SWIM_MAX_FRAME_ENTRIES`].
    pub max_entries_per_frame: usize,
    /// Open each sync round with a 15-byte version digest
    /// ([`SwimMsg::SyncDigest`]) instead of the `O(n)` full-ledger
    /// push. A partner whose ledger fingerprint matches answers with an
    /// empty delta and the transfer is skipped; on mismatch the partner
    /// echoes its digest and the initiator proceeds with the full push
    /// (one extra RTT). In steady state almost every pair agrees, so
    /// this turns the per-period sync cost from `O(n)` bytes into
    /// `O(1)` — worthwhile past a few hundred members.
    pub digest_first: bool,
    /// Piggyback the responder's first ledger chunk on the mismatch
    /// echo ([`SwimMsg::SyncDigestPush`]). Without it, a diverged
    /// initiator learns the responder's records only from the
    /// [`SwimMsg::SyncRsp`] pull *after* its own full push — one RTT
    /// later. With it, the responder→initiator half of the transfer
    /// rides the echo itself, so a pair whose ledgers fit one frame
    /// reconciles that direction a full round-trip earlier (counted by
    /// the `sync_piggyback_rtt_saved` telemetry counter and
    /// [`SyncStats::piggyback_saved`]).
    pub digest_piggyback: bool,
    /// Dead-record GC: a member that has been confirmed dead for this
    /// many sync periods is *tombstone-expired* — it stops being chosen
    /// as a sync partner, so long-lived ledgers stop wasting sync
    /// rounds on permanently dead members. `0` disables expiry.
    ///
    /// The window must comfortably exceed any partition you expect to
    /// heal: partition healing works precisely because dead members
    /// stay in the partner pool (see the struct docs), and it keeps
    /// working as long as the split is shorter than
    /// `tombstone_gc_syncs · sync_period_s`. The records themselves
    /// are never deleted from the ledger — removal would break the
    /// version lattice's monotonicity and resurrect tombstones through
    /// peers that still hold them; only *partner selection* forgets.
    pub tombstone_gc_syncs: u32,
}

impl Default for AntiEntropyConfig {
    fn default() -> Self {
        AntiEntropyConfig {
            enabled: true,
            sync_period_s: 4.0,
            max_entries_per_frame: SWIM_MTU_FRAME_ENTRIES,
            digest_first: true,
            digest_piggyback: true,
            tombstone_gc_syncs: 50,
        }
    }
}

impl AntiEntropyConfig {
    /// An explicitly disabled configuration (ablation baselines).
    #[must_use]
    pub fn disabled() -> Self {
        AntiEntropyConfig {
            enabled: false,
            ..AntiEntropyConfig::default()
        }
    }
}

/// SWIM protocol knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwimConfig {
    /// Protocol period: one probe round per period, seconds.
    pub period_s: f64,
    /// Deadline for the direct ack before indirect probing kicks in,
    /// seconds.
    pub ping_timeout_s: f64,
    /// Number of helpers asked to probe indirectly after a direct miss.
    pub ping_req_fanout: usize,
    /// Minimum suspicion lifetime before a silent member is confirmed
    /// faulty, in protocol periods. The *effective* lifetime scales
    /// with cluster size and local health — see
    /// [`SwimConfig::suspicion_periods_for`].
    pub suspicion_periods: f64,
    /// Protocol periods of suspicion per `log₂ n` of cluster size: the
    /// effective base lifetime is
    /// `max(suspicion_periods, suspicion_log_scale · log₂ n)`, the
    /// SWIM/Lifeguard scaling that keeps the false-positive rate flat
    /// as gossip needs more hops to refute. `0` pins the constant.
    pub suspicion_log_scale: f64,
    /// Cap on the Lifeguard local-health counter. A node that misses
    /// acks or has to refute its own suspicion is probably the lossy
    /// one; its counter rises and *its own* suspicion verdicts slow by
    /// `1 + health` until evidence of good connectivity drains it.
    pub max_local_health: u32,
    /// Maximum membership events piggybacked per message.
    pub max_piggyback: usize,
    /// Times each event is retransmitted before leaving the gossip
    /// queue (≈ λ·log n in the SWIM paper; a safe constant here).
    pub gossip_transmissions: u32,
    /// Cadence at which ledger changes are batched into installed
    /// views, seconds.
    pub publish_period_s: f64,
    /// Periodic push-pull full-ledger reconciliation.
    pub anti_entropy: AntiEntropyConfig,
    /// Seed for this node's probe-order and helper-choice randomness.
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            period_s: 2.0,
            ping_timeout_s: 0.5,
            ping_req_fanout: 3,
            suspicion_periods: 3.0,
            suspicion_log_scale: 1.0,
            max_local_health: 8,
            max_piggyback: 10,
            gossip_transmissions: 10,
            publish_period_s: 2.0,
            anti_entropy: AntiEntropyConfig::default(),
            seed: 0x5111_0000,
        }
    }
}

impl SwimConfig {
    /// Same configuration, different randomness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Same configuration, different anti-entropy knobs.
    #[must_use]
    pub fn with_anti_entropy(mut self, anti_entropy: AntiEntropyConfig) -> Self {
        self.anti_entropy = anti_entropy;
        self
    }

    /// The minimum suspicion timeout in seconds (cluster of 1, healthy
    /// node).
    #[must_use]
    pub fn suspicion_timeout_s(&self) -> f64 {
        self.suspicion_periods * self.period_s
    }

    /// The effective base suspicion lifetime, in protocol periods, for
    /// a cluster of `n` live members:
    /// `max(suspicion_periods, suspicion_log_scale · log₂ n)`.
    #[must_use]
    pub fn suspicion_periods_for(&self, n: usize) -> f64 {
        let log_n = (n.max(1) as f64).log2();
        self.suspicion_periods.max(self.suspicion_log_scale * log_n)
    }

    /// [`SwimConfig::suspicion_periods_for`] in seconds.
    #[must_use]
    pub fn suspicion_timeout_s_for(&self, n: usize) -> f64 {
        self.suspicion_periods_for(n) * self.period_s
    }

    /// Worst-case seconds from a member's crash to every live ledger
    /// confirming it, assuming gossip reaches the cluster within one
    /// period per hop: one period until somebody's rotation probes it,
    /// one period of ping/ping-req silence, then the (size-scaled)
    /// suspicion timeout. Assumes healthy observers (local-health
    /// multiplier 1); a lossy observer's verdict is deliberately
    /// slower.
    #[must_use]
    pub fn detection_budget_s(&self, n: usize) -> f64 {
        let rotation = (n as f64).max(1.0) * self.period_s;
        rotation + self.period_s + self.suspicion_timeout_s_for(n) + self.publish_period_s
    }

    /// Sanity-check the timing invariants.
    ///
    /// # Panics
    /// Panics when the indirect probe cannot possibly finish within a
    /// period, or any knob is non-positive.
    pub fn validate(&self) {
        assert!(self.period_s > 0.0, "period must be positive");
        assert!(
            self.ping_timeout_s > 0.0 && self.ping_timeout_s < self.period_s / 2.0,
            "ping timeout must leave room for the indirect round"
        );
        assert!(self.suspicion_periods >= 1.0, "suspicion below one period");
        assert!(
            self.suspicion_log_scale >= 0.0,
            "negative suspicion scaling"
        );
        assert!(self.max_piggyback >= 1, "piggybacking disabled");
        assert!(self.gossip_transmissions >= 1, "gossip disabled");
        assert!(
            self.publish_period_s > 0.0,
            "publish period must be positive"
        );
        // The frame bound holds even with anti-entropy disabled: this
        // node still *answers* other nodes' syncs and chunks its
        // responses with it.
        assert!(
            (1..=SWIM_MAX_FRAME_ENTRIES).contains(&self.anti_entropy.max_entries_per_frame),
            "sync frame size out of range"
        );
        if self.anti_entropy.enabled {
            assert!(
                self.anti_entropy.sync_period_s > 0.0,
                "sync period must be positive"
            );
        }
    }
}

/// The probe in flight during the current protocol period.
#[derive(Debug, Clone)]
struct Outstanding {
    target: NodeId,
    seq: u32,
    direct_deadline: f64,
    indirect_sent: bool,
    acked: bool,
}

/// A ping we performed on behalf of a ping-req origin.
#[derive(Debug, Clone)]
struct Relay {
    origin: NodeId,
    origin_seq: u32,
    target: NodeId,
    seq: u32,
    deadline: f64,
}

/// An active suspicion (transient; never in the ledger).
#[derive(Debug, Clone, Copy)]
struct Suspicion {
    incarnation: u32,
    deadline: f64,
    /// When the suspicion opened — the start of the causal-trace
    /// suspicion span if it later confirms.
    started_s: f64,
}

/// A gossip-queue entry with its remaining retransmission budget.
#[derive(Debug, Clone)]
struct Gossip {
    update: SwimUpdate,
    remaining: u32,
}

/// A partially reassembled multi-chunk sync push (one per sender at
/// most; a newer `seq` from the same sender replaces it, so a lost
/// chunk costs one round, not a leak).
#[derive(Debug, Clone)]
struct PendingSync {
    seq: u32,
    total: u8,
    chunks: BTreeMap<u8, Vec<SwimUpdate>>,
}

/// Anti-entropy round accounting (per node; experiments sum these
/// across the fleet).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SyncStats {
    /// Digest-only rounds this node opened as initiator.
    pub digest_rounds: u64,
    /// Rounds where this node, as *responder*, matched the initiator's
    /// digest — each one is a full-ledger transfer that never happened.
    pub digest_skips: u64,
    /// Full-ledger pushes this node sent (digest mismatch, or digests
    /// disabled).
    pub full_pushes: u64,
    /// Mismatch echoes this node received *with* a piggybacked ledger
    /// chunk — each one a round-trip the slow path did not spend
    /// waiting for the responder's pull delta.
    pub piggyback_saved: u64,
}

/// The SWIM plane's registry-backed counters (component
/// `"membership"`). Handles are plain atomic cells, so counting costs
/// one relaxed add whether or not a real [`Telemetry`] registry is
/// attached; [`Swim::sync_stats`] reads the sync counters back out.
#[derive(Debug, Clone)]
struct SwimMetrics {
    probe_sent: Counter,
    probe_acked: Counter,
    suspicion_raised: Counter,
    suspicion_refuted: Counter,
    digest_rounds: Counter,
    digest_skips: Counter,
    full_pushes: Counter,
    piggyback_saved: Counter,
}

impl SwimMetrics {
    fn new(t: &Telemetry) -> Self {
        SwimMetrics {
            probe_sent: t.counter("membership", "probe_sent"),
            probe_acked: t.counter("membership", "probe_acked"),
            suspicion_raised: t.counter("membership", "suspicion_raised"),
            suspicion_refuted: t.counter("membership", "suspicion_refuted"),
            digest_rounds: t.counter("membership", "sync_digest_rounds"),
            digest_skips: t.counter("membership", "sync_digest_skips"),
            full_pushes: t.counter("membership", "sync_full_pushes"),
            piggyback_saved: t.counter("membership", "sync_piggyback_rtt_saved"),
        }
    }
}

/// The per-node SWIM state machine.
#[derive(Debug, Clone)]
pub struct Swim {
    me: NodeId,
    cfg: SwimConfig,
    incarnation: u32,
    ledger: ViewLedger,
    rng: ChaCha8Rng,
    seq: u32,
    probe_order: Vec<NodeId>,
    probe_pos: usize,
    next_period_at: Option<f64>,
    outstanding: Option<Outstanding>,
    relays: Vec<Relay>,
    suspicions: BTreeMap<NodeId, Suspicion>,
    gossip: VecDeque<Gossip>,
    next_publish_at: f64,
    published_version: u32,
    local_health: u32,
    next_sync_at: Option<f64>,
    pending_syncs: BTreeMap<NodeId, PendingSync>,
    answered_syncs: BTreeMap<NodeId, u32>,
    /// When each currently-dead member was (last) confirmed dead here —
    /// the clock behind [`AntiEntropyConfig::tombstone_gc_syncs`].
    /// Entries vanish on resurrection.
    tombstones: BTreeMap<NodeId, f64>,
    /// The digest round in flight: `(partner, seq)` — a matching echo
    /// triggers the full push.
    outstanding_digest: Option<(NodeId, u32)>,
    /// Last digest `seq` answered per sender. A duplicated (or late)
    /// digest frame is dropped instead of re-answered: without this, a
    /// single duplicated mismatch echo bounces between two diverged
    /// peers forever (each side sees a "fresh" digest, mismatches, and
    /// echoes back) — the digest analogue of `answered_syncs`.
    answered_digests: BTreeMap<NodeId, u32>,
    telemetry: Telemetry,
    metrics: SwimMetrics,
    tracer: Tracer,
    /// The convergence episode this node currently propagates on its
    /// outgoing gossip (adopted locally when a suspicion opens, or from
    /// a traced inbound frame).
    active_trace: Option<TraceCtx>,
    /// Frames carry `active_trace` only until this sim-time — a hot
    /// window refreshed by episode activity, so steady-state gossip
    /// stays trailer-free.
    trace_hot_until: f64,
    /// `(episode, confirm-span id)` of the most recent local
    /// confirmation, letting the driver parent its view-install span
    /// under the confirm that caused it.
    last_confirm: Option<(u32, u64)>,
    departed: bool,
}

impl Swim {
    /// A joining node: knows itself plus `seeds` (its introducers). Its
    /// own `Alive` gossips outward from the first ping, so the rest of
    /// the cluster learns of the join without any coordinator.
    #[must_use]
    pub fn new(me: NodeId, cfg: SwimConfig, seeds: &[NodeId]) -> Self {
        cfg.validate();
        let mut initial: Vec<NodeId> = seeds.iter().copied().filter(|&s| s != me).collect();
        initial.push(me);
        let mut swim = Swim::with_ledger(me, cfg, ViewLedger::bootstrap(&initial));
        swim.enqueue_gossip(SwimUpdate {
            id: me,
            incarnation: 0,
            status: SwimStatus::Alive,
        });
        swim
    }

    /// A statically bootstrapped node: the full initial membership is
    /// known up front (the steady-state experiments), so every node
    /// derives the identical initial view with zero join traffic.
    #[must_use]
    pub fn bootstrap(me: NodeId, cfg: SwimConfig, members: &[NodeId]) -> Self {
        cfg.validate();
        let mut all: Vec<NodeId> = members.to_vec();
        if !all.contains(&me) {
            all.push(me);
        }
        Swim::with_ledger(me, cfg, ViewLedger::bootstrap(&all))
    }

    fn with_ledger(me: NodeId, cfg: SwimConfig, ledger: ViewLedger) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let telemetry = Telemetry::disabled();
        let metrics = SwimMetrics::new(&telemetry);
        Swim {
            me,
            cfg,
            incarnation: 0,
            ledger,
            rng,
            seq: 0,
            probe_order: Vec::new(),
            probe_pos: 0,
            next_period_at: None,
            outstanding: None,
            relays: Vec::new(),
            suspicions: BTreeMap::new(),
            gossip: VecDeque::new(),
            next_publish_at: 0.0,
            published_version: 0,
            local_health: 0,
            next_sync_at: None,
            pending_syncs: BTreeMap::new(),
            answered_syncs: BTreeMap::new(),
            tombstones: BTreeMap::new(),
            outstanding_digest: None,
            answered_digests: BTreeMap::new(),
            telemetry,
            metrics,
            tracer: Tracer::disabled(),
            active_trace: None,
            trace_hot_until: f64::NEG_INFINITY,
            last_confirm: None,
            departed: false,
        }
    }

    /// Attach a telemetry handle: probe, suspicion and sync counters
    /// register under component `"membership"` and protocol milestones
    /// enter the event journal. Call before driving the node — the
    /// attached registry starts with fresh (zeroed) counter cells.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.metrics = SwimMetrics::new(&telemetry);
        self.telemetry = telemetry;
        self
    }

    /// Attach a causal tracer: suspicion/confirm/sync spans enter its
    /// flight recorder, and gossip sent during a convergence episode's
    /// hot window carries the episode's [`TraceCtx`] on the wire. With
    /// the default disabled tracer every trace call is a single
    /// relaxed-bool no-op and frames stay trailer-free.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached causal tracer (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// `(episode, confirm-span id)` of the most recent locally
    /// confirmed suspicion, if any — the causal parent for the view
    /// install it triggers.
    #[must_use]
    pub fn last_confirm(&self) -> Option<(u32, u64)> {
        self.last_confirm
    }

    /// The trace context outgoing gossip should carry at `now`: the
    /// active episode while its hot window is open, `None` otherwise
    /// (the steady-state case — frames stay bit-identical to the
    /// legacy format).
    #[must_use]
    pub fn gossip_trace(&self, now: f64) -> Option<TraceCtx> {
        if self.tracer.enabled() && now <= self.trace_hot_until {
            self.active_trace
        } else {
            None
        }
    }

    /// Adopt the episode context of a traced inbound frame and refresh
    /// the hot window, so this node relays the episode onward with an
    /// incremented hop. Called by the driver *before* handing the
    /// message to [`Swim::on_message`].
    pub fn note_remote_trace(&mut self, now: f64, ctx: TraceCtx) {
        if !self.tracer.enabled() {
            return;
        }
        // A different episode replaces the current one; the same
        // episode only refreshes the window (keeping our lowest hop).
        match self.active_trace {
            Some(cur) if cur.episode == ctx.episode => {}
            _ => self.active_trace = Some(ctx),
        }
        self.trace_hot_until = now + self.trace_window_s();
    }

    /// How long episode context stays attached to outgoing frames
    /// after the last episode activity: long enough for the suspicion
    /// to confirm and the confirmation wavefront to gossip out.
    fn trace_window_s(&self) -> f64 {
        self.effective_suspicion_timeout_s() + 4.0 * self.cfg.period_s
    }

    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// This node's current incarnation.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// The converged-state ledger (diagnostics and tests).
    #[must_use]
    pub fn ledger(&self) -> &ViewLedger {
        &self.ledger
    }

    /// Is `id` currently under active suspicion here?
    #[must_use]
    pub fn is_suspected(&self, id: NodeId) -> bool {
        self.suspicions.contains_key(&id)
    }

    /// The Lifeguard local-health counter: 0 = healthy; each missed
    /// ack or self-refutation raises it (capped), each clean probe
    /// round lowers it. This node's suspicion verdicts take
    /// `1 + local_health` times the base timeout.
    #[must_use]
    pub fn local_health(&self) -> u32 {
        self.local_health
    }

    /// The suspicion timeout this node currently applies to new
    /// suspicions: cluster-size-scaled base times the local-health
    /// multiplier.
    #[must_use]
    pub fn effective_suspicion_timeout_s(&self) -> f64 {
        let n = self.ledger.live_count();
        self.cfg.suspicion_timeout_s_for(n) * f64::from(1 + self.local_health)
    }

    /// The current `(version, sorted members)` snapshot, regardless of
    /// the publish cadence.
    #[must_use]
    pub fn current_view(&self) -> (u32, Vec<NodeId>) {
        (self.ledger.version(), self.ledger.members())
    }

    /// Anti-entropy round accounting, read back from the registry
    /// counters (the counters are the single source of truth).
    #[must_use]
    pub fn sync_stats(&self) -> SyncStats {
        SyncStats {
            digest_rounds: self.metrics.digest_rounds.get(),
            digest_skips: self.metrics.digest_skips.get(),
            full_pushes: self.metrics.full_pushes.get(),
            piggyback_saved: self.metrics.piggyback_saved.get(),
        }
    }

    /// Is `id` tombstone-expired at `now` — confirmed dead long enough
    /// that anti-entropy partner selection has forgotten it?
    #[must_use]
    pub fn is_tombstone_expired(&self, id: NodeId, now: f64) -> bool {
        let k = self.cfg.anti_entropy.tombstone_gc_syncs;
        if k == 0 {
            return false;
        }
        let window = f64::from(k) * self.cfg.anti_entropy.sync_period_s;
        self.tombstones
            .get(&id)
            .is_some_and(|&dead_at| now - dead_at >= window)
    }

    /// Apply one confirmed event to the ledger, maintaining the
    /// tombstone clock: a member that (re-)enters the dead state is
    /// stamped `now`; a resurrection clears the stamp.
    fn ledger_apply(&mut self, now: f64, id: NodeId, incarnation: u32, dead: bool) -> bool {
        let moved = self.ledger.apply(id, incarnation, dead);
        if moved {
            if dead {
                self.tombstones.insert(id, now);
            } else {
                self.tombstones.remove(&id);
            }
        }
        moved
    }

    // ------------------------------------------------------------------
    // Driver interface
    // ------------------------------------------------------------------

    /// Advance timers. The driver calls this on a coarse tick (a few
    /// times per [`SwimConfig::ping_timeout_s`]); all deadlines are
    /// computed from `now`, so tick jitter only delays, never corrupts.
    pub fn on_tick(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        self.relays.retain(|r| r.deadline > now);
        self.fire_indirect_probes(now, out);
        self.confirm_expired_suspicions(now);
        let period_start = match self.next_period_at {
            None => true,
            Some(t) => now >= t,
        };
        if period_start {
            self.next_period_at = Some(now + self.cfg.period_s);
            self.finish_probe_round(now);
            self.start_probe_round(now, out);
        }
        self.run_anti_entropy(now, out);
    }

    /// The earliest time at which [`on_tick`](Self::on_tick) (or a
    /// [`poll_view`](Self::poll_view) call after it) could have work:
    /// the minimum over the next protocol period, the outstanding
    /// probe's direct deadline, suspicion and relay expiries, the next
    /// anti-entropy sync, and — when the ledger has moved past the last
    /// published version — the publish cadence. Drivers using
    /// wake-coalescing schedule exactly one timer at this instant
    /// instead of polling on a fixed sub-second tick; ticking earlier
    /// or later than the returned time is still correct (all deadlines
    /// are absolute), it just wastes or delays work.
    #[must_use]
    pub fn next_wake(&self, now: f64) -> f64 {
        let mut wake = self.next_period_at.unwrap_or(now);
        if let Some(o) = &self.outstanding {
            if !o.acked && !o.indirect_sent {
                wake = wake.min(o.direct_deadline);
            }
        }
        for s in self.suspicions.values() {
            wake = wake.min(s.deadline);
        }
        for r in &self.relays {
            wake = wake.min(r.deadline);
        }
        if self.cfg.anti_entropy.enabled && !self.departed {
            wake = wake.min(self.next_sync_at.unwrap_or(now));
        }
        if self.ledger.version() > self.published_version {
            wake = wake.min(self.next_publish_at);
        }
        wake.max(now)
    }

    /// Handle one decoded SWIM datagram.
    pub fn on_message(&mut self, now: f64, msg: &SwimMsg, out: &mut Vec<(NodeId, SwimMsg)>) {
        self.apply_updates(now, msg.updates());
        match msg {
            SwimMsg::Ping { from, seq, .. } => {
                // A ping proves the sender exists; incarnation 0 is the
                // weakest claim, so stale knowledge is never overwritten.
                self.ledger_apply(now, *from, 0, false);
                let mut updates = self.take_piggyback();
                // A pinger our ledger marks dead doesn't know it was
                // confirmed faulty (the original gossip has long left
                // the queue): echo the verdict so it can refute with a
                // higher incarnation and rejoin instead of staying
                // split-brained forever.
                if let Some(state) = self.ledger.state(*from) {
                    if state.dead && !updates.iter().any(|u| u.id == *from) {
                        updates.push(SwimUpdate {
                            id: *from,
                            incarnation: state.incarnation,
                            status: SwimStatus::Faulty,
                        });
                    }
                }
                out.push((
                    *from,
                    SwimMsg::Ack {
                        from: self.me,
                        to: *from,
                        seq: *seq,
                        updates,
                    },
                ));
            }
            SwimMsg::Ack { from, seq, .. } => {
                if let Some(o) = &mut self.outstanding {
                    if o.seq == *seq && o.target == *from && !o.acked {
                        o.acked = true;
                        self.metrics.probe_acked.inc();
                        self.telemetry.event(
                            now,
                            Severity::Debug,
                            EventKind::ProbeAcked {
                                from: u32::from(from.0),
                            },
                        );
                    }
                }
                // Serve any ping-req this ack answers.
                if let Some(pos) = self
                    .relays
                    .iter()
                    .position(|r| r.seq == *seq && r.target == *from)
                {
                    let relay = self.relays.swap_remove(pos);
                    let updates = self.take_piggyback();
                    out.push((
                        relay.origin,
                        SwimMsg::ProxyAck {
                            from: self.me,
                            to: relay.origin,
                            target: relay.target,
                            seq: relay.origin_seq,
                            updates,
                        },
                    ));
                }
            }
            SwimMsg::PingReq {
                from, target, seq, ..
            } => {
                self.ledger_apply(now, *from, 0, false);
                self.seq = self.seq.wrapping_add(1);
                self.relays.push(Relay {
                    origin: *from,
                    origin_seq: *seq,
                    target: *target,
                    seq: self.seq,
                    deadline: now + 2.0 * self.cfg.ping_timeout_s + self.cfg.period_s,
                });
                let updates = self.take_piggyback();
                out.push((
                    *target,
                    SwimMsg::Ping {
                        from: self.me,
                        to: *target,
                        seq: self.seq,
                        updates,
                    },
                ));
            }
            SwimMsg::ProxyAck { target, seq, .. } => {
                if let Some(o) = &mut self.outstanding {
                    if o.seq == *seq && o.target == *target && !o.acked {
                        o.acked = true;
                        self.metrics.probe_acked.inc();
                        self.telemetry.event(
                            now,
                            Severity::Debug,
                            EventKind::ProbeAcked {
                                from: u32::from(target.0),
                            },
                        );
                    }
                }
            }
            SwimMsg::SyncReq {
                from,
                seq,
                chunk,
                chunks,
                updates,
                ..
            } => {
                // The push half was already merged chunk-by-chunk by
                // `apply_updates` above; the pull half — everything we
                // know better than the push claimed — answers once per
                // `seq`, over the reassembled claim set, so a chunked
                // sync still costs O(n) per round. The answered-`seq`
                // memory also keeps a duplicated (or replayed) request
                // from re-eliciting the delta — the merge above is an
                // idempotent no-op, the response would be an amplifier.
                if self.answered_syncs.get(from) == Some(seq) {
                    return;
                }
                let claims = if *chunks == 1 {
                    Some(updates.clone())
                } else {
                    self.absorb_sync_chunk(*from, *seq, *chunk, *chunks, updates)
                };
                if let Some(claims) = claims {
                    self.answered_syncs.insert(*from, *seq);
                    // An explicitly empty response is still sent so the
                    // initiator learns the pair is converged (and the
                    // partner reachable).
                    let delta = self.sync_delta(&claims);
                    let mut frames: Vec<Vec<SwimUpdate>> = delta
                        .chunks(self.cfg.anti_entropy.max_entries_per_frame)
                        .map(<[SwimUpdate]>::to_vec)
                        .collect();
                    if frames.is_empty() {
                        frames.push(Vec::new());
                    }
                    for frame in frames {
                        out.push((
                            *from,
                            SwimMsg::SyncRsp {
                                from: self.me,
                                to: *from,
                                seq: *seq,
                                updates: frame,
                            },
                        ));
                    }
                }
            }
            // The pull half: the generic merge above does the work;
            // an (empty or not) response also closes any digest round
            // in flight with this partner.
            SwimMsg::SyncRsp { from, seq, .. } => {
                if self.outstanding_digest == Some((*from, *seq)) {
                    self.outstanding_digest = None;
                }
            }
            SwimMsg::SyncDigest {
                from,
                seq,
                fingerprint,
                known,
                ..
            } => {
                if self.outstanding_digest == Some((*from, *seq)) {
                    // The partner echoed our round's digest back: the
                    // fingerprints disagree, so the short-circuit
                    // failed — proceed with the full push-pull.
                    self.outstanding_digest = None;
                    self.count_full_push(now, *from);
                    self.push_full_ledger(*from, out);
                } else if self.answered_digests.get(from) == Some(seq) {
                    // Duplicated or stale frame from an already-answered
                    // round: answering again would start a data-free
                    // digest ping-pong between diverged peers (and act
                    // as a replay amplifier).
                } else {
                    self.answered_digests.insert(*from, *seq);
                    let (my_fingerprint, my_known) = self.digest_fingerprint();
                    if *fingerprint == my_fingerprint && *known == my_known {
                        // Converged pair: skip the transfer. The empty
                        // response still tells the initiator the
                        // partner is reachable and the round is done.
                        self.metrics.digest_skips.inc();
                        self.telemetry.event(
                            now,
                            Severity::Info,
                            EventKind::SyncSkip {
                                peer: u32::from(from.0),
                            },
                        );
                        out.push((
                            *from,
                            SwimMsg::SyncRsp {
                                from: self.me,
                                to: *from,
                                seq: *seq,
                                updates: Vec::new(),
                            },
                        ));
                    } else if self.cfg.anti_entropy.digest_piggyback {
                        // Mismatch: echo our digest so the initiator
                        // pushes its full ledger — and piggyback the
                        // first chunk of ours on the echo, sparing the
                        // initiator the round-trip it would otherwise
                        // spend waiting for our pull delta.
                        let updates = self.first_ledger_chunk();
                        out.push((
                            *from,
                            SwimMsg::SyncDigestPush {
                                from: self.me,
                                to: *from,
                                seq: *seq,
                                fingerprint: my_fingerprint,
                                known: my_known,
                                updates,
                            },
                        ));
                    } else {
                        // Mismatch: echo our digest so the initiator
                        // pushes its full ledger.
                        out.push((
                            *from,
                            SwimMsg::SyncDigest {
                                from: self.me,
                                to: *from,
                                seq: *seq,
                                fingerprint: my_fingerprint,
                                known: my_known,
                            },
                        ));
                    }
                }
            }
            SwimMsg::SyncDigestPush { from, seq, .. } => {
                // The piggybacked chunk was already merged by the
                // generic `apply_updates` above; what remains is the
                // mismatch echo closing our digest round. A frame that
                // matches no round in flight (duplicate or replay) is
                // dropped — the merge above was an idempotent no-op and
                // answering would amplify.
                if self.outstanding_digest == Some((*from, *seq)) {
                    self.outstanding_digest = None;
                    self.metrics.piggyback_saved.inc();
                    self.count_full_push(now, *from);
                    self.push_full_ledger(*from, out);
                }
            }
        }
    }

    /// Count one full-ledger push towards `peer` (counter + journal).
    fn count_full_push(&mut self, now: f64, peer: NodeId) {
        self.metrics.full_pushes.inc();
        self.telemetry.event(
            now,
            Severity::Info,
            EventKind::SyncPush {
                peer: u32::from(peer.0),
            },
        );
    }

    /// The first frame's worth of the full ledger — what a mismatch
    /// echo piggybacks.
    fn first_ledger_chunk(&self) -> Vec<SwimUpdate> {
        let mut entries = self.ledger_entries();
        entries.truncate(self.cfg.anti_entropy.max_entries_per_frame);
        entries
    }

    /// Stash one chunk of a multi-chunk sync; `Some(all claims)` once
    /// the set is complete. At most one pending sync per sender: a
    /// different `seq` (or shape) from the same sender replaces the old
    /// one, so a lost chunk wastes one round and leaks nothing.
    fn absorb_sync_chunk(
        &mut self,
        from: NodeId,
        seq: u32,
        chunk: u8,
        total: u8,
        updates: &[SwimUpdate],
    ) -> Option<Vec<SwimUpdate>> {
        let pending = self
            .pending_syncs
            .entry(from)
            .and_modify(|p| {
                if p.seq != seq || p.total != total {
                    *p = PendingSync {
                        seq,
                        total,
                        chunks: BTreeMap::new(),
                    };
                }
            })
            .or_insert_with(|| PendingSync {
                seq,
                total,
                chunks: BTreeMap::new(),
            });
        pending.chunks.insert(chunk, updates.to_vec());
        if pending.chunks.len() < usize::from(total) {
            return None;
        }
        let complete = self.pending_syncs.remove(&from).expect("just inserted");
        Some(complete.chunks.into_values().flatten().collect())
    }

    /// Batched view publication: `Some((version, members))` when the
    /// publish cadence has elapsed *and* the ledger moved past the last
    /// published version. All events confirmed since the previous
    /// publication collapse into one installed view.
    pub fn poll_view(&mut self, now: f64) -> Option<(u32, Vec<NodeId>)> {
        if now < self.next_publish_at {
            return None;
        }
        self.next_publish_at = now + self.cfg.publish_period_s;
        let version = self.ledger.version();
        if version > self.published_version {
            self.published_version = version;
            Some((version, self.ledger.members()))
        } else {
            None
        }
    }

    /// Announce a voluntary departure: gossip `Left` directly to a few
    /// live peers (the node stops ticking afterwards, so the update
    /// must leave immediately rather than ride the queue).
    pub fn leave(&mut self, out: &mut Vec<(NodeId, SwimMsg)>) {
        let update = SwimUpdate {
            id: self.me,
            incarnation: self.incarnation,
            status: SwimStatus::Left,
        };
        self.departed = true;
        self.ledger.apply(self.me, self.incarnation, true);
        let peers: Vec<NodeId> = self.live_peers();
        let fanout = self.cfg.ping_req_fanout.max(1);
        let chosen: Vec<NodeId> = peers
            .choose_multiple(&mut self.rng, fanout)
            .copied()
            .collect();
        for peer in chosen {
            self.seq = self.seq.wrapping_add(1);
            out.push((
                peer,
                SwimMsg::Ping {
                    from: self.me,
                    to: peer,
                    seq: self.seq,
                    updates: vec![update],
                },
            ));
        }
    }

    // ------------------------------------------------------------------
    // Probe rounds
    // ------------------------------------------------------------------

    fn live_peers(&self) -> Vec<NodeId> {
        self.ledger
            .members()
            .into_iter()
            .filter(|&m| m != self.me)
            .collect()
    }

    fn start_probe_round(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        let Some(target) = self.next_target() else {
            return;
        };
        self.seq = self.seq.wrapping_add(1);
        self.outstanding = Some(Outstanding {
            target,
            seq: self.seq,
            direct_deadline: now + self.cfg.ping_timeout_s,
            indirect_sent: false,
            acked: false,
        });
        self.metrics.probe_sent.inc();
        self.telemetry.event(
            now,
            Severity::Debug,
            EventKind::ProbeSent {
                to: u32::from(target.0),
            },
        );
        let updates = self.take_piggyback();
        out.push((
            target,
            SwimMsg::Ping {
                from: self.me,
                to: target,
                seq: self.seq,
                updates,
            },
        ));
    }

    /// Judge the previous period's probe: a silent target becomes
    /// suspected. The outcome also feeds the Lifeguard local-health
    /// counter — a missed ack is as likely our own lossy link as the
    /// target's crash, so it slows *our* future verdicts; a clean round
    /// drains the counter. The suspicion just started is judged with
    /// the health accumulated *before* this round, so one isolated miss
    /// doesn't inflate its own verdict.
    fn finish_probe_round(&mut self, now: f64) {
        let Some(o) = self.outstanding.take() else {
            return;
        };
        if o.acked {
            self.local_health = self.local_health.saturating_sub(1);
            return;
        }
        if !self.ledger.is_live(o.target) {
            return;
        }
        let incarnation = self.ledger.incarnation(o.target);
        self.start_suspicion(now, o.target, incarnation);
        self.bump_local_health();
    }

    fn bump_local_health(&mut self) {
        self.local_health = (self.local_health + 1).min(self.cfg.max_local_health);
    }

    fn fire_indirect_probes(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        let Some(o) = &self.outstanding else { return };
        if o.acked || o.indirect_sent || now < o.direct_deadline {
            return;
        }
        let (target, seq) = (o.target, o.seq);
        let helpers: Vec<NodeId> = {
            let pool: Vec<NodeId> = self
                .live_peers()
                .into_iter()
                .filter(|&p| p != target)
                .collect();
            pool.choose_multiple(&mut self.rng, self.cfg.ping_req_fanout)
                .copied()
                .collect()
        };
        for helper in helpers {
            let updates = self.take_piggyback();
            out.push((
                helper,
                SwimMsg::PingReq {
                    from: self.me,
                    to: helper,
                    target,
                    seq,
                    updates,
                },
            ));
        }
        if let Some(o) = &mut self.outstanding {
            o.indirect_sent = true;
        }
    }

    /// Round-robin over a shuffled rotation of live peers; reshuffles
    /// when the rotation is exhausted (every peer is probed once per
    /// `n − 1` periods — SWIM's bounded-detection-time property).
    fn next_target(&mut self) -> Option<NodeId> {
        for _rebuild in 0..2 {
            while self.probe_pos < self.probe_order.len() {
                let candidate = self.probe_order[self.probe_pos];
                self.probe_pos += 1;
                if candidate != self.me && self.ledger.is_live(candidate) {
                    return Some(candidate);
                }
            }
            let mut rotation = self.live_peers();
            rotation.shuffle(&mut self.rng);
            self.probe_order = rotation;
            self.probe_pos = 0;
            if self.probe_order.is_empty() {
                return None;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Suspicion and dissemination
    // ------------------------------------------------------------------

    fn start_suspicion(&mut self, now: f64, id: NodeId, incarnation: u32) {
        let deadline = now + self.effective_suspicion_timeout_s();
        match self.suspicions.get_mut(&id) {
            Some(existing) if existing.incarnation >= incarnation => {}
            Some(existing) => {
                existing.incarnation = incarnation;
                existing.deadline = deadline;
            }
            None => {
                self.suspicions.insert(
                    id,
                    Suspicion {
                        incarnation,
                        deadline,
                        started_s: now,
                    },
                );
                self.metrics.suspicion_raised.inc();
                self.telemetry.event(
                    now,
                    Severity::Warn,
                    EventKind::SuspicionRaised {
                        about: u32::from(id.0),
                    },
                );
                if self.tracer.enabled() {
                    // A fresh suspicion opens (or re-activates) the
                    // convergence episode for the suspect — derived
                    // deterministically from (member, incarnation), so
                    // every node that suspects independently lands on
                    // the same episode id with no coordination.
                    let episode = episode_id(id.0, incarnation);
                    if self.active_trace.is_none_or(|c| c.episode != episode) {
                        self.active_trace = Some(TraceCtx {
                            episode,
                            origin: self.me.0,
                            hop: 0,
                        });
                    }
                    self.trace_hot_until = now + self.trace_window_s();
                }
            }
        }
        self.enqueue_gossip(SwimUpdate {
            id,
            incarnation,
            status: SwimStatus::Suspect,
        });
    }

    fn confirm_expired_suspicions(&mut self, now: f64) {
        let expired: Vec<(NodeId, u32, f64)> = self
            .suspicions
            .iter()
            .filter(|(_, s)| s.deadline <= now)
            .map(|(&id, s)| (id, s.incarnation, s.started_s))
            .collect();
        for (id, incarnation, started_s) in expired {
            self.suspicions.remove(&id);
            if self.ledger_apply(now, id, incarnation, true) {
                if self.tracer.enabled() {
                    // The suspicion span covers open → confirm; the
                    // confirm instant hangs beneath it. Parented on the
                    // episode root so every node's spans assemble into
                    // one tree without cross-node id exchange.
                    let episode = episode_id(id.0, incarnation);
                    let suspicion = self.tracer.record(
                        SpanKind::Suspicion,
                        episode,
                        episode_root_span(episode),
                        u32::from(id.0),
                        started_s,
                        now,
                    );
                    let confirm = self.tracer.instant(
                        SpanKind::Confirm,
                        episode,
                        suspicion,
                        u32::from(id.0),
                        now,
                    );
                    self.last_confirm = Some((episode, confirm));
                    if self.active_trace.is_none_or(|c| c.episode != episode) {
                        self.active_trace = Some(TraceCtx {
                            episode,
                            origin: self.me.0,
                            hop: 0,
                        });
                    }
                    self.trace_hot_until = now + self.trace_window_s();
                }
                self.enqueue_gossip(SwimUpdate {
                    id,
                    incarnation,
                    status: SwimStatus::Faulty,
                });
            }
        }
    }

    fn apply_updates(&mut self, now: f64, updates: &[SwimUpdate]) {
        for u in updates {
            if u.id == self.me {
                self.refute_if_needed(now, *u);
                continue;
            }
            match u.status {
                SwimStatus::Alive => {
                    if self.ledger_apply(now, u.id, u.incarnation, false) {
                        // A higher incarnation refutes any older suspicion.
                        if self
                            .suspicions
                            .get(&u.id)
                            .is_some_and(|s| u.incarnation > s.incarnation)
                        {
                            self.suspicions.remove(&u.id);
                            self.metrics.suspicion_refuted.inc();
                            self.telemetry.event(
                                now,
                                Severity::Info,
                                EventKind::SuspicionRefuted {
                                    about: u32::from(u.id.0),
                                },
                            );
                        }
                        self.enqueue_gossip(*u);
                    }
                }
                SwimStatus::Suspect => {
                    if self.ledger.state(u.id).is_some_and(|s| s.dead)
                        || u.incarnation < self.ledger.incarnation(u.id)
                    {
                        continue; // stale suspicion
                    }
                    // A suspected member is still a member at that
                    // incarnation.
                    self.ledger_apply(now, u.id, u.incarnation, false);
                    let fresh = match self.suspicions.get(&u.id) {
                        Some(s) => u.incarnation > s.incarnation,
                        None => true,
                    };
                    if fresh {
                        self.start_suspicion(now, u.id, u.incarnation);
                    }
                }
                SwimStatus::Faulty | SwimStatus::Left => {
                    if self.ledger_apply(now, u.id, u.incarnation, true) {
                        self.suspicions.remove(&u.id);
                        self.enqueue_gossip(*u);
                    }
                }
            }
        }
    }

    /// Somebody claims *we* are suspected/faulty: bump our incarnation
    /// and gossip a fresh `Alive`, the SWIM refutation. A node that
    /// announced its own departure stops refuting — otherwise its
    /// `Left` gossip echoing back would resurrect it.
    fn refute_if_needed(&mut self, now: f64, u: SwimUpdate) {
        if self.departed || u.status == SwimStatus::Alive || u.incarnation < self.incarnation {
            return;
        }
        self.incarnation = u.incarnation.wrapping_add(1);
        self.ledger.apply(self.me, self.incarnation, false);
        self.metrics.suspicion_refuted.inc();
        self.telemetry.event(
            now,
            Severity::Info,
            EventKind::SuspicionRefuted {
                about: u32::from(self.me.0),
            },
        );
        self.enqueue_gossip(SwimUpdate {
            id: self.me,
            incarnation: self.incarnation,
            status: SwimStatus::Alive,
        });
        // Lifeguard: needing to defend ourselves is evidence our acks
        // are getting lost — slow our own verdicts.
        self.bump_local_health();
    }

    // ------------------------------------------------------------------
    // Anti-entropy (push-pull full-ledger sync)
    // ------------------------------------------------------------------

    /// Initiate one push-pull sync round when the cadence has elapsed.
    /// The first round is staggered uniformly inside one sync period so
    /// a fleet bootstrapped at the same instant doesn't synchronize its
    /// sync traffic.
    fn run_anti_entropy(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        if !self.cfg.anti_entropy.enabled || self.departed {
            return;
        }
        let period = self.cfg.anti_entropy.sync_period_s;
        match self.next_sync_at {
            None => {
                self.next_sync_at = Some(now + self.rng.gen_range(0.0..period));
            }
            Some(t) if now >= t => {
                self.next_sync_at = Some(now + period);
                self.start_sync(now, out);
            }
            Some(_) => {}
        }
    }

    /// The ledger fingerprint carried by digest frames: the FNV content
    /// hash plus the known-member count. Never the salted version sum —
    /// its small-integer weights would let two *diverged* ledgers
    /// (e.g. the two sides of a healed partition) collide at
    /// percent-level odds and silently pin anti-entropy off between
    /// them; the content hash collides at ≈ 2⁻³².
    fn digest_fingerprint(&self) -> (u32, u16) {
        let known = self.ledger.known().min(usize::from(u16::MAX)) as u16;
        (self.ledger.fingerprint(), known)
    }

    /// Open one sync round towards a partner chosen uniformly from
    /// every member ever heard of — dead or alive (see
    /// [`AntiEntropyConfig`] for why dead partners must stay in the
    /// pool) — except members whose tombstone has expired
    /// ([`AntiEntropyConfig::tombstone_gc_syncs`]): a ledger full of
    /// permanently dead members would otherwise waste a growing share
    /// of rounds syncing into silence. With `digest_first` the round
    /// opens with a 15-byte fingerprint; otherwise with the full push.
    fn start_sync(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        let candidates: Vec<NodeId> = self
            .ledger
            .iter()
            .map(|(id, _)| id)
            .filter(|&id| id != self.me)
            .filter(|&id| !self.is_tombstone_expired(id, now))
            .collect();
        let Some(&target) = candidates.choose(&mut self.rng) else {
            return;
        };
        if let Some(ctx) = self.gossip_trace(now) {
            // Sync rounds inside an episode's hot window are part of
            // the heal story — record which partner this round chose.
            self.tracer.instant(
                SpanKind::SyncRound,
                ctx.episode,
                0,
                u32::from(target.0),
                now,
            );
        }
        if self.cfg.anti_entropy.digest_first {
            self.seq = self.seq.wrapping_add(1);
            self.outstanding_digest = Some((target, self.seq));
            self.metrics.digest_rounds.inc();
            let (fingerprint, known) = self.digest_fingerprint();
            out.push((
                target,
                SwimMsg::SyncDigest {
                    from: self.me,
                    to: target,
                    seq: self.seq,
                    fingerprint,
                    known,
                },
            ));
        } else {
            self.count_full_push(now, target);
            self.push_full_ledger(target, out);
        }
    }

    /// The push half of a round: the full ledger, chunked, to `target`.
    fn push_full_ledger(&mut self, target: NodeId, out: &mut Vec<(NodeId, SwimMsg)>) {
        self.seq = self.seq.wrapping_add(1);
        let seq = self.seq;
        let mut entries = self.ledger_entries();
        // Widen frames past the MTU-friendly default if the chunk index
        // byte would otherwise overflow; a ledger beyond the wire's
        // 255 × 255 ceiling (impossible to reach before exhausting the
        // u16 id space minus 511) is truncated for this round.
        let mut per_frame = self
            .cfg
            .anti_entropy
            .max_entries_per_frame
            .max(entries.len().div_ceil(u8::MAX.into()));
        if per_frame > SWIM_MAX_FRAME_ENTRIES {
            per_frame = SWIM_MAX_FRAME_ENTRIES;
            entries.truncate(SWIM_MAX_FRAME_ENTRIES * usize::from(u8::MAX));
        }
        let total = entries.chunks(per_frame).count().max(1) as u8;
        for (i, chunk) in entries.chunks(per_frame).enumerate() {
            out.push((
                target,
                SwimMsg::SyncReq {
                    from: self.me,
                    to: target,
                    seq,
                    chunk: i as u8,
                    chunks: total,
                    updates: chunk.to_vec(),
                },
            ));
        }
    }

    /// One ledger record as a wire record: `(incarnation, dead)`
    /// encodes as `Alive` / `Faulty`, the exact event
    /// [`ViewLedger::apply`] replays on the receiving side. Suspicion
    /// is transient and never synced.
    fn record_to_update(id: NodeId, state: crate::view::MemberState) -> SwimUpdate {
        SwimUpdate {
            id,
            incarnation: state.incarnation,
            status: if state.dead {
                SwimStatus::Faulty
            } else {
                SwimStatus::Alive
            },
        }
    }

    /// The full ledger as wire records.
    fn ledger_entries(&self) -> Vec<SwimUpdate> {
        self.ledger
            .iter()
            .map(|(id, state)| Self::record_to_update(id, state))
            .collect()
    }

    /// The pull half of a sync: every record where our (post-merge)
    /// ledger strictly supersedes what the push claimed, plus every
    /// member the push did not mention. Computed once per sync round
    /// over the full (reassembled) claim set.
    fn sync_delta(&self, claimed: &[SwimUpdate]) -> Vec<SwimUpdate> {
        let claims: BTreeMap<NodeId, (u32, bool)> = claimed
            .iter()
            .map(|u| (u.id, (u.incarnation, u.status.is_dead())))
            .collect();
        self.ledger
            .iter()
            .filter(|&(id, state)| match claims.get(&id) {
                None => true,
                Some(&(incarnation, dead)) => crate::view::MemberState { incarnation, dead }
                    .superseded_by(state.incarnation, state.dead),
            })
            .map(|(id, state)| Self::record_to_update(id, state))
            .collect()
    }

    /// Queue an event for dissemination, superseding any queued event
    /// about the same member.
    fn enqueue_gossip(&mut self, update: SwimUpdate) {
        self.gossip.retain(|g| g.update.id != update.id);
        self.gossip.push_back(Gossip {
            update,
            remaining: self.cfg.gossip_transmissions,
        });
    }

    /// Up to `max_piggyback` queued events, round-robin, each drawn
    /// from its retransmission budget.
    fn take_piggyback(&mut self) -> Vec<SwimUpdate> {
        let take = self.cfg.max_piggyback.min(self.gossip.len());
        let mut updates = Vec::with_capacity(take);
        for _ in 0..take {
            let Some(mut g) = self.gossip.pop_front() else {
                break;
            };
            updates.push(g.update);
            g.remaining -= 1;
            if g.remaining > 0 {
                self.gossip.push_back(g);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    /// Probe-centric tests count exact per-tick messages, so the
    /// periodic sync traffic is disabled here; the anti-entropy tests
    /// below enable it explicitly.
    fn cfg(seed: u64) -> SwimConfig {
        SwimConfig::default()
            .with_seed(seed)
            .with_anti_entropy(AntiEntropyConfig::disabled())
    }

    fn sync_cfg(seed: u64, sync_period_s: f64) -> SwimConfig {
        SwimConfig::default()
            .with_seed(seed)
            .with_anti_entropy(AntiEntropyConfig {
                enabled: true,
                sync_period_s,
                ..AntiEntropyConfig::default()
            })
    }

    #[test]
    fn bootstrap_views_agree_without_traffic() {
        let members = ids(&[0, 1, 2, 3]);
        let a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let b = Swim::bootstrap(NodeId(3), cfg(99), &members);
        assert_eq!(a.current_view(), b.current_view());
        assert_eq!(a.current_view().1, members);
    }

    #[test]
    fn probe_round_pings_one_live_peer() {
        let members = ids(&[0, 1, 2, 3]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(7), &members);
        let mut out = Vec::new();
        s.on_tick(0.0, &mut out);
        assert_eq!(out.len(), 1, "one ping per period");
        let SwimMsg::Ping { from, to, .. } = &out[0].1 else {
            panic!("expected ping, got {:?}", out[0].1)
        };
        assert_eq!(*from, NodeId(0));
        assert_ne!(*to, NodeId(0));
        // Within the same period, no further pings.
        let mut out2 = Vec::new();
        s.on_tick(0.1, &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn ack_prevents_suspicion() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let mut b = Swim::bootstrap(NodeId(1), cfg(2), &members);
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out);
        let (_, ping) = out.pop().expect("ping");
        let mut reply = Vec::new();
        b.on_message(0.05, &ping, &mut reply);
        let (back_to, ack) = reply.pop().expect("ack");
        assert_eq!(back_to, NodeId(0));
        a.on_message(0.1, &ack, &mut Vec::new());
        // Period rolls over: no suspicion of node 1.
        a.on_tick(2.0, &mut Vec::new());
        assert!(!a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)));
    }

    #[test]
    fn silent_peer_is_suspected_then_confirmed() {
        let members = ids(&[0, 1]);
        let c = cfg(1);
        let timeout = c.suspicion_timeout_s();
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out); // ping sent, never answered
        a.on_tick(0.6, &mut out); // indirect probes (nobody to ask in n=2)
        a.on_tick(2.0, &mut out); // period judgment → suspect
        assert!(a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)), "suspicion is not removal");
        let before = a.ledger().version();
        a.on_tick(2.0 + timeout + 0.1, &mut out);
        assert!(!a.is_suspected(NodeId(1)));
        assert!(!a.ledger().is_live(NodeId(1)), "confirmed faulty");
        assert!(a.ledger().version() > before);
    }

    #[test]
    fn ping_req_round_trip_defeats_a_dead_direct_path() {
        // a → b direct path is "down" (we simply don't deliver a's
        // ping); helper h relays and b's ack comes back as ProxyAck.
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(5), &members);
        let mut h = Swim::bootstrap(NodeId(2), cfg(6), &members);
        let mut b = Swim::bootstrap(NodeId(1), cfg(7), &members);

        let mut out = Vec::new();
        a.on_tick(0.0, &mut out);
        let (target, _lost_ping) = out.pop().expect("ping");
        // Force the scenario where the probe target is node 1; with
        // seed 5 the first rotation may pick node 2 — then swap roles.
        let (target_node, helper_node) = if target == NodeId(1) {
            (&mut b, &mut h)
        } else {
            (&mut h, &mut b)
        };

        // Direct deadline passes → ping-req to the remaining peer.
        let mut out = Vec::new();
        a.on_tick(0.6, &mut out);
        assert_eq!(out.len(), 1, "one helper available");
        let (helper_id, ping_req) = out.pop().expect("ping-req");
        assert!(matches!(ping_req, SwimMsg::PingReq { .. }));

        let mut relayed = Vec::new();
        helper_node.on_message(0.7, &ping_req, &mut relayed);
        let (relay_to, relay_ping) = relayed.pop().expect("relayed ping");
        assert_eq!(relay_to, target);
        let mut acked = Vec::new();
        target_node.on_message(0.8, &relay_ping, &mut acked);
        let (ack_to, ack) = acked.pop().expect("ack to helper");
        assert_eq!(ack_to, helper_id);
        let mut proxied = Vec::new();
        helper_node.on_message(0.9, &ack, &mut proxied);
        let (proxy_to, proxy_ack) = proxied.pop().expect("proxy-ack to origin");
        assert_eq!(proxy_to, NodeId(0));
        a.on_message(1.0, &proxy_ack, &mut Vec::new());

        // Judgment at the period boundary: no suspicion.
        a.on_tick(2.0, &mut Vec::new());
        assert!(!a.is_suspected(target));
    }

    #[test]
    fn suspicion_is_refuted_by_higher_incarnation() {
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        // Gossip arrives: node 1 suspected at incarnation 0.
        let suspect = SwimMsg::Ping {
            from: NodeId(2),
            to: NodeId(0),
            seq: 1,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        a.on_message(1.0, &suspect, &mut Vec::new());
        assert!(a.is_suspected(NodeId(1)));
        // Node 1 refutes with incarnation 1.
        let refute = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 2,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 1,
                status: SwimStatus::Alive,
            }],
        };
        a.on_message(1.5, &refute, &mut Vec::new());
        assert!(!a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)));
        assert_eq!(a.ledger().incarnation(NodeId(1)), 1);
    }

    #[test]
    fn node_refutes_its_own_suspicion() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let gossip = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 3,
            updates: vec![SwimUpdate {
                id: NodeId(0),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        let mut out = Vec::new();
        a.on_message(0.5, &gossip, &mut out);
        assert_eq!(a.incarnation(), 1, "incarnation bumped to refute");
        // The refutation rides the ack's piggyback.
        let (_, ack) = out.pop().expect("ack");
        assert!(ack
            .updates()
            .iter()
            .any(|u| { u.id == NodeId(0) && u.incarnation == 1 && u.status == SwimStatus::Alive }));
    }

    #[test]
    fn join_via_seed_discovers_both_ways() {
        let mut seed_node = Swim::bootstrap(NodeId(0), cfg(1), &ids(&[0, 1]));
        let mut joiner = Swim::new(NodeId(7), cfg(2), &[NodeId(0)]);
        assert_eq!(joiner.current_view().1, ids(&[0, 7]));
        // Joiner's first period pings the seed.
        let mut out = Vec::new();
        joiner.on_tick(0.0, &mut out);
        let (to, ping) = out.pop().expect("join ping");
        assert_eq!(to, NodeId(0));
        assert!(
            ping.updates()
                .iter()
                .any(|u| u.id == NodeId(7) && u.status == SwimStatus::Alive),
            "join must announce itself"
        );
        let mut reply = Vec::new();
        seed_node.on_message(0.1, &ping, &mut reply);
        assert!(
            seed_node.ledger().is_live(NodeId(7)),
            "seed learned the joiner"
        );
        // And the seed's ack gossips the cluster to the joiner.
        let (_, ack) = reply.pop().expect("ack");
        joiner.on_message(0.2, &ack, &mut Vec::new());
        assert!(joiner.ledger().is_live(NodeId(1)) || !ack.updates().is_empty());
    }

    #[test]
    fn publish_batches_and_is_monotone() {
        let members = ids(&[0, 1, 2]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let first = s.poll_view(0.0).expect("initial publish");
        assert_eq!(first.1, members);
        assert!(s.poll_view(0.5).is_none(), "cadence not elapsed");
        // Two confirmed events between publishes…
        s.apply_updates(
            3.0,
            &[
                SwimUpdate {
                    id: NodeId(9),
                    incarnation: 0,
                    status: SwimStatus::Alive,
                },
                SwimUpdate {
                    id: NodeId(1),
                    incarnation: 0,
                    status: SwimStatus::Faulty,
                },
            ],
        );
        // …collapse into a single new view.
        let (v2, m2) = s.poll_view(3.0).expect("batched publish");
        assert!(v2 > first.0);
        assert_eq!(m2, ids(&[0, 2, 9]));
        assert!(s.poll_view(6.0).is_none(), "no further change");
    }

    #[test]
    fn gossip_budget_drains() {
        let members = ids(&[0, 1]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(1), &members);
        s.enqueue_gossip(SwimUpdate {
            id: NodeId(5),
            incarnation: 0,
            status: SwimStatus::Alive,
        });
        let budget = s.cfg.gossip_transmissions;
        for _ in 0..budget {
            assert_eq!(s.take_piggyback().len(), 1);
        }
        assert!(s.take_piggyback().is_empty(), "budget exhausted");
    }

    #[test]
    fn dead_pinger_is_told_and_rejoins() {
        let members = ids(&[0, 1, 2]);
        let mut alive = Swim::bootstrap(NodeId(0), cfg(1), &members);
        // Node 1 was confirmed faulty at incarnation 0 long ago.
        alive.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        // Drain the gossip queue: the Faulty event is no longer pending.
        while !alive.take_piggyback().is_empty() {}
        // The "dead" node recovers with its old state and pings us.
        let mut zombie = Swim::bootstrap(NodeId(1), cfg(2), &members);
        let mut pings = Vec::new();
        zombie.on_tick(100.0, &mut pings);
        // If the zombie's rotation picked node 2 first, craft the
        // equivalent direct ping.
        let (_, ping) = pings
            .into_iter()
            .find(|(to, _)| *to == NodeId(0))
            .unwrap_or((
                NodeId(0),
                SwimMsg::Ping {
                    from: NodeId(1),
                    to: NodeId(0),
                    seq: 9,
                    updates: vec![],
                },
            ));
        let mut acks = Vec::new();
        alive.on_message(100.1, &ping, &mut acks);
        let (_, ack) = acks.pop().expect("ack");
        assert!(
            ack.updates()
                .iter()
                .any(|u| u.id == NodeId(1) && u.status == SwimStatus::Faulty),
            "ack must echo the faulty verdict to the zombie"
        );
        // The zombie refutes with a higher incarnation…
        zombie.on_message(100.2, &ack, &mut Vec::new());
        assert_eq!(zombie.incarnation(), 1);
        // …and its next ping's piggyback resurrects it in our ledger.
        let refute = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 10,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 1,
                status: SwimStatus::Alive,
            }],
        };
        alive.on_message(100.3, &refute, &mut Vec::new());
        assert!(alive.ledger().is_live(NodeId(1)), "rejoin must succeed");
    }

    #[test]
    fn departed_node_does_not_refute_its_own_left() {
        let members = ids(&[0, 1, 2]);
        let mut s = Swim::bootstrap(NodeId(2), cfg(1), &members);
        s.leave(&mut Vec::new());
        let inc_after_leave = s.incarnation();
        // The node's own Left gossip echoes back before shutdown.
        let echo = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(2),
            seq: 4,
            updates: vec![SwimUpdate {
                id: NodeId(2),
                incarnation: inc_after_leave,
                status: SwimStatus::Left,
            }],
        };
        s.on_message(1.0, &echo, &mut Vec::new());
        assert_eq!(s.incarnation(), inc_after_leave, "no self-resurrection");
        assert!(!s.ledger().is_live(NodeId(2)));
    }

    #[test]
    fn concurrent_distinct_confirmations_get_distinct_versions() {
        // The salted version weights: two ledgers diverging by events
        // about *different* members must (for these members) disagree
        // on the version, so colliding view numbers cannot pair with
        // different member lists.
        let members = ids(&[0, 1, 2, 3, 4]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let mut b = Swim::bootstrap(NodeId(3), cfg(2), &members);
        a.apply_updates(
            1.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        b.apply_updates(
            1.0,
            &[SwimUpdate {
                id: NodeId(2),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        let (va, ma) = a.current_view();
        let (vb, mb) = b.current_view();
        assert_ne!(ma, mb);
        assert_ne!(va, vb, "diverged ledgers must not share a version");
    }

    #[test]
    fn suspicion_periods_scale_with_log_n() {
        let c = SwimConfig::default();
        // Small clusters keep the floor…
        assert_eq!(c.suspicion_periods_for(2), c.suspicion_periods);
        assert_eq!(c.suspicion_periods_for(8), c.suspicion_periods);
        // …large clusters scale ~log₂ n.
        assert_eq!(c.suspicion_periods_for(32), 5.0);
        assert_eq!(c.suspicion_periods_for(1024), 10.0);
        assert!(c.detection_budget_s(1024) > c.detection_budget_s(32));
        // Scaling can be pinned off.
        let pinned = SwimConfig {
            suspicion_log_scale: 0.0,
            ..SwimConfig::default()
        };
        assert_eq!(
            pinned.suspicion_periods_for(1 << 20),
            pinned.suspicion_periods
        );
    }

    #[test]
    fn local_health_slows_own_verdicts_and_drains() {
        let members = ids(&[0, 1]);
        let c = cfg(1);
        let base_timeout = c.suspicion_timeout_s();
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        assert_eq!(a.local_health(), 0);
        assert_eq!(a.effective_suspicion_timeout_s(), base_timeout);
        let ack = |a: &mut Swim, out: &mut Vec<(NodeId, SwimMsg)>, t: f64| {
            let (_, ping) = out.pop().expect("ping");
            let SwimMsg::Ping { seq, .. } = ping else {
                panic!("expected ping")
            };
            a.on_message(
                t,
                &SwimMsg::Ack {
                    from: NodeId(1),
                    to: NodeId(0),
                    seq,
                    updates: vec![],
                },
                &mut Vec::new(),
            );
        };
        // Period 1 answered: health stays 0. Period 2 silent: the
        // suspicion is judged at multiplier 1 (health *before* the
        // miss), then health rises and future verdicts would be slower.
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out);
        ack(&mut a, &mut out, 0.1);
        a.on_tick(2.0, &mut out); // period 2's probe: left silent
        assert_eq!(a.local_health(), 0);
        out.clear();
        a.on_tick(4.0, &mut out); // judgment: suspect + health 1
        assert!(a.is_suspected(NodeId(1)));
        assert_eq!(a.local_health(), 1);
        assert_eq!(a.effective_suspicion_timeout_s(), 2.0 * base_timeout);
        // An answered round drains the counter back to 0.
        ack(&mut a, &mut out, 4.1);
        a.on_tick(6.0, &mut Vec::new());
        assert_eq!(a.local_health(), 0);
    }

    #[test]
    fn local_health_caps_at_config() {
        let members = ids(&[0, 1]);
        // Suspicion long enough that the silent peer is never confirmed
        // dead, so every period keeps missing (and bumping health).
        let c = SwimConfig {
            suspicion_periods: 1_000.0,
            ..cfg(1)
        };
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        let cap = a.cfg.max_local_health;
        let mut t = 0.0;
        for _ in 0..(cap + 5) {
            t += 2.0;
            a.on_tick(t, &mut Vec::new());
        }
        assert_eq!(a.local_health(), cap);
    }

    #[test]
    fn refuting_own_suspicion_raises_local_health() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let gossip = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 3,
            updates: vec![SwimUpdate {
                id: NodeId(0),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        a.on_message(0.5, &gossip, &mut Vec::new());
        assert_eq!(a.incarnation(), 1);
        assert_eq!(a.local_health(), 1);
    }

    #[test]
    fn sync_round_trip_reconciles_divergent_ledgers() {
        let members = ids(&[0, 1, 2, 3]);
        let mut a = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        // Diverge: a confirmed 2 faulty; b learned a join of 9.
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(2),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        b.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(9),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        );
        assert_ne!(a.ledger(), b.ledger());
        // One full push-pull exchange a → b.
        let req = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 7,
            chunk: 0,
            chunks: 1,
            updates: a.ledger_entries(),
        };
        let mut rsp = Vec::new();
        b.on_message(1.0, &req, &mut rsp);
        assert!(!rsp.is_empty(), "pull half must answer");
        for (to, msg) in &rsp {
            assert_eq!(*to, NodeId(0));
            assert!(matches!(msg, SwimMsg::SyncRsp { seq: 7, .. }));
            a.on_message(1.1, msg, &mut Vec::new());
        }
        assert_eq!(a.ledger(), b.ledger(), "push-pull must converge the pair");
        assert_eq!(a.current_view(), b.current_view());
    }

    #[test]
    fn converged_sync_answers_with_empty_delta() {
        let members = ids(&[0, 1, 2]);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        let a = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        let req = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 9,
            chunk: 0,
            chunks: 1,
            updates: a.ledger_entries(),
        };
        let mut rsp = Vec::new();
        b.on_message(1.0, &req, &mut rsp);
        assert_eq!(rsp.len(), 1);
        assert!(rsp[0].1.updates().is_empty(), "no delta when converged");
    }

    #[test]
    fn chunked_sync_answers_once_with_one_delta() {
        let members = ids(&[0, 1, 2, 3]);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        let a = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        let entries = a.ledger_entries();
        assert!(entries.len() >= 2, "need at least two records to chunk");
        let (first, rest) = entries.split_at(1);
        let frame = |chunk: u8, updates: &[SwimUpdate]| SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 5,
            chunk,
            chunks: 2,
            updates: updates.to_vec(),
        };
        // First chunk (delivered out of order): no response yet.
        let mut rsp = Vec::new();
        b.on_message(1.0, &frame(1, rest), &mut rsp);
        assert!(rsp.is_empty(), "partial sync must not answer");
        // Second chunk completes the set: exactly one (empty) delta —
        // the converged pair costs O(n), not O(n) per chunk.
        b.on_message(1.1, &frame(0, first), &mut rsp);
        assert_eq!(rsp.len(), 1);
        assert!(rsp[0].1.updates().is_empty());
        // A replayed chunk from the answered round is suppressed.
        let mut replay = Vec::new();
        b.on_message(1.2, &frame(0, first), &mut replay);
        assert!(replay.is_empty());
    }

    #[test]
    fn duplicated_single_frame_sync_is_answered_once() {
        let members = ids(&[0, 1, 2]);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        let a = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        let req = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 11,
            chunk: 0,
            chunks: 1,
            updates: a.ledger_entries(),
        };
        let mut rsp = Vec::new();
        b.on_message(1.0, &req, &mut rsp);
        assert_eq!(rsp.len(), 1);
        // The network duplicates (or an attacker replays) the request:
        // no fresh delta — the response would be a traffic amplifier.
        let mut dup = Vec::new();
        b.on_message(1.5, &req, &mut dup);
        assert!(dup.is_empty(), "duplicate seq must not be re-answered");
        // The next round (new seq) is served normally.
        let next = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 12,
            chunk: 0,
            chunks: 1,
            updates: a.ledger_entries(),
        };
        let mut rsp2 = Vec::new();
        b.on_message(3.0, &next, &mut rsp2);
        assert_eq!(rsp2.len(), 1);
    }

    #[test]
    fn interrupted_chunked_sync_is_replaced_by_the_next_round() {
        let members = ids(&[0, 1, 2, 3]);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        let a = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        let entries = a.ledger_entries();
        let (first, rest) = entries.split_at(1);
        let frame = |seq: u32, chunk: u8, updates: &[SwimUpdate]| SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq,
            chunk,
            chunks: 2,
            updates: updates.to_vec(),
        };
        let mut rsp = Vec::new();
        // Round 5 loses its second chunk…
        b.on_message(1.0, &frame(5, 0, first), &mut rsp);
        assert!(rsp.is_empty());
        // …round 6 replaces it and completes normally.
        b.on_message(3.0, &frame(6, 0, first), &mut rsp);
        assert!(rsp.is_empty(), "chunk 1 of round 6 still missing");
        b.on_message(3.1, &frame(6, 1, rest), &mut rsp);
        assert_eq!(rsp.len(), 1, "round 6 must complete");
    }

    #[test]
    fn sync_targets_include_confirmed_dead_members() {
        // The partition-healing property: a node whose ledger marks the
        // whole other side dead must still sync *towards* it.
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), sync_cfg(3, 1.0), &members);
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        assert!(!a.ledger().is_live(NodeId(1)));
        // Node 1 is the only possible partner; over a few sync periods
        // a sync round towards it must open even though it is "dead"
        // (with digest_first on, the opener is the digest frame).
        let mut out = Vec::new();
        let mut t = 0.0;
        while t < 10.0 {
            a.on_tick(t, &mut out);
            t += 0.25;
        }
        assert!(
            out.iter().any(|(to, m)| *to == NodeId(1)
                && matches!(m, SwimMsg::SyncReq { .. } | SwimMsg::SyncDigest { .. })),
            "sync must reach across the dead boundary"
        );
    }

    #[test]
    fn digest_round_skips_transfer_when_converged() {
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), sync_cfg(1, 1.0), &members);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 1.0), &members);
        // Drive a until it opens a sync round; with only digest_first
        // rounds, the opener must be a digest, not a full push.
        let mut out = Vec::new();
        let mut t = 0.0;
        while !out
            .iter()
            .any(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
        {
            assert!(t < 20.0, "digest round must open");
            a.on_tick(t, &mut out);
            t += 0.25;
        }
        assert!(
            !out.iter()
                .any(|(_, m)| matches!(m, SwimMsg::SyncReq { .. })),
            "converged steady state must not push full ledgers"
        );
        let (_, digest) = out
            .iter()
            .find(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
            .cloned()
            .unwrap();
        // Every bootstrapped ledger is identical, so b can answer the
        // digest whichever partner a picked: empty delta, skip counted.
        let mut rsp = Vec::new();
        b.on_message(t, &digest, &mut rsp);
        assert_eq!(b.sync_stats().digest_skips, 1);
        assert_eq!(rsp.len(), 1);
        let SwimMsg::SyncRsp { updates, .. } = &rsp[0].1 else {
            panic!("converged digest must be answered with an empty SyncRsp");
        };
        assert!(updates.is_empty());
        // The initiator closes the round; no full push follows.
        let mut follow = Vec::new();
        a.on_message(t + 0.1, &rsp[0].1, &mut follow);
        assert!(follow.is_empty());
        assert_eq!(a.sync_stats().full_pushes, 0);
        assert!(a.sync_stats().digest_rounds >= 1);
    }

    #[test]
    fn digest_mismatch_falls_back_to_full_push_pull() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), sync_cfg(1, 1.0), &members);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 1.0), &members);
        // Diverge the pair.
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(9),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        );
        assert_ne!(a.ledger(), b.ledger());
        // a opens a digest round towards b (the only partner).
        let mut out = Vec::new();
        let mut t = 0.0;
        while !out
            .iter()
            .any(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
        {
            assert!(t < 20.0);
            a.on_tick(t, &mut out);
            t += 0.25;
        }
        let digest = out
            .iter()
            .find(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
            .cloned()
            .unwrap()
            .1;
        // b mismatches: echoes its own digest with its first ledger
        // chunk piggybacked (the default), no pull transfer yet.
        let mut echo = Vec::new();
        b.on_message(t, &digest, &mut echo);
        assert_eq!(echo.len(), 1);
        assert!(matches!(echo[0].1, SwimMsg::SyncDigestPush { .. }));
        assert_eq!(b.sync_stats().digest_skips, 0);
        // The echo triggers a's full push; the normal push-pull then
        // converges the pair.
        let mut push = Vec::new();
        a.on_message(t + 0.1, &echo[0].1, &mut push);
        assert!(!push.is_empty());
        assert!(push
            .iter()
            .all(|(_, m)| matches!(m, SwimMsg::SyncReq { .. })));
        assert_eq!(a.sync_stats().full_pushes, 1);
        assert_eq!(a.sync_stats().piggyback_saved, 1);
        let mut delta = Vec::new();
        for (_, m) in &push {
            b.on_message(t + 0.2, m, &mut delta);
        }
        for (_, m) in &delta {
            a.on_message(t + 0.3, m, &mut Vec::new());
        }
        assert_eq!(a.ledger(), b.ledger(), "push-pull must converge the pair");
    }

    #[test]
    fn piggybacked_echo_reconciles_the_initiator_without_the_pull_rtt() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), sync_cfg(1, 1.0), &members);
        let mut b = Swim::bootstrap(NodeId(1), sync_cfg(2, 1.0), &members);
        // The *responder* holds the newer record this time.
        b.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(9),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        );
        let mut out = Vec::new();
        let mut t = 0.0;
        while !out
            .iter()
            .any(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
        {
            assert!(t < 20.0);
            a.on_tick(t, &mut out);
            t += 0.25;
        }
        let digest = out
            .iter()
            .find(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
            .cloned()
            .unwrap()
            .1;
        let mut echo = Vec::new();
        b.on_message(t, &digest, &mut echo);
        assert_eq!(echo.len(), 1);
        // The echo alone — before b's SyncRsp pull would ever arrive —
        // already hands a the record it was missing.
        a.on_message(t + 0.1, &echo[0].1, &mut Vec::new());
        assert!(a.ledger().is_live(NodeId(9)), "piggyback must merge");
        assert_eq!(a.sync_stats().piggyback_saved, 1);
        // A replayed echo is dropped: the round is closed.
        let mut replay = Vec::new();
        a.on_message(t + 0.2, &echo[0].1, &mut replay);
        assert!(replay.is_empty());
        assert_eq!(a.sync_stats().piggyback_saved, 1);
    }

    #[test]
    fn digest_piggyback_disabled_falls_back_to_plain_echo() {
        let c = |seed: u64| {
            SwimConfig::default()
                .with_seed(seed)
                .with_anti_entropy(AntiEntropyConfig {
                    enabled: true,
                    sync_period_s: 1.0,
                    digest_piggyback: false,
                    ..AntiEntropyConfig::default()
                })
        };
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), c(1), &members);
        let mut b = Swim::bootstrap(NodeId(1), c(2), &members);
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(9),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        );
        let mut out = Vec::new();
        let mut t = 0.0;
        while !out
            .iter()
            .any(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
        {
            assert!(t < 20.0);
            a.on_tick(t, &mut out);
            t += 0.25;
        }
        let digest = out
            .iter()
            .find(|(_, m)| matches!(m, SwimMsg::SyncDigest { .. }))
            .cloned()
            .unwrap()
            .1;
        let mut echo = Vec::new();
        b.on_message(t, &digest, &mut echo);
        assert_eq!(echo.len(), 1);
        assert!(matches!(echo[0].1, SwimMsg::SyncDigest { .. }));
        let mut push = Vec::new();
        a.on_message(t + 0.1, &echo[0].1, &mut push);
        assert!(!push.is_empty());
        assert_eq!(a.sync_stats().piggyback_saved, 0);
    }

    #[test]
    fn telemetry_counts_probes_and_suspicions() {
        use apor_telemetry::Telemetry;
        let members = ids(&[0, 1]);
        let telemetry = Telemetry::new(0);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members).with_telemetry(telemetry.clone());
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out); // ping sent, never answered
        a.on_tick(0.6, &mut out);
        a.on_tick(2.0, &mut out); // judgment → suspicion
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(0, "membership", "probe_sent"), Some(2));
        assert_eq!(snap.counter(0, "membership", "probe_acked"), Some(0));
        assert_eq!(snap.counter(0, "membership", "suspicion_raised"), Some(1));
        // The suspicion milestone is journaled at Warn.
        assert!(telemetry.events().iter().any(|e| matches!(
            e.kind,
            apor_telemetry::EventKind::SuspicionRaised { about: 1 }
        )));
    }

    #[test]
    fn expired_tombstones_leave_the_partner_pool() {
        // k = 3 sync periods of 1 s: the dead member is a valid partner
        // inside the window and excluded after it.
        let c = SwimConfig::default()
            .with_seed(5)
            .with_anti_entropy(AntiEntropyConfig {
                enabled: true,
                sync_period_s: 1.0,
                tombstone_gc_syncs: 3,
                ..AntiEntropyConfig::default()
            });
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        assert!(!a.is_tombstone_expired(NodeId(1), 2.9));
        assert!(a.is_tombstone_expired(NodeId(1), 3.0));
        // Within the window sync rounds still target the dead member…
        let mut early = Vec::new();
        let mut t = 0.0;
        while t < 2.5 {
            a.on_tick(t, &mut early);
            t += 0.25;
        }
        assert!(
            early.iter().any(|(to, m)| *to == NodeId(1)
                && matches!(m, SwimMsg::SyncDigest { .. } | SwimMsg::SyncReq { .. })),
            "dead member must stay a partner inside the tombstone window"
        );
        // …after it, the pool is empty (node 1 was the only partner) and
        // rounds stop entirely. (Rounds firing in [2.5, 3.25) may still
        // legitimately target the not-yet-expired tombstone; drain them.)
        let mut boundary = Vec::new();
        while t < 3.25 {
            a.on_tick(t, &mut boundary);
            t += 0.25;
        }
        let mut late = Vec::new();
        while t < 20.0 {
            a.on_tick(t, &mut late);
            t += 0.25;
        }
        assert!(
            !late.iter().any(|(to, m)| *to == NodeId(1)
                && matches!(m, SwimMsg::SyncDigest { .. } | SwimMsg::SyncReq { .. })),
            "expired tombstones must not be chosen as sync partners"
        );
    }

    #[test]
    fn resurrection_clears_the_tombstone() {
        let c = sync_cfg(1, 1.0);
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        a.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        assert!(a.is_tombstone_expired(NodeId(1), 1e9));
        // The member refutes with a higher incarnation: tombstone gone.
        a.apply_updates(
            5.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 1,
                status: SwimStatus::Alive,
            }],
        );
        assert!(a.ledger().is_live(NodeId(1)));
        assert!(!a.is_tombstone_expired(NodeId(1), 1e9));
    }

    #[test]
    fn sync_tells_a_declared_dead_node_so_it_refutes() {
        let members = ids(&[0, 1, 2]);
        let mut alive = Swim::bootstrap(NodeId(0), sync_cfg(1, 2.0), &members);
        alive.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        let mut zombie = Swim::bootstrap(NodeId(1), sync_cfg(2, 2.0), &members);
        // The zombie syncs with us: our delta carries its death verdict.
        let req = SwimMsg::SyncReq {
            from: NodeId(1),
            to: NodeId(0),
            seq: 4,
            chunk: 0,
            chunks: 1,
            updates: zombie.ledger_entries(),
        };
        let mut rsp = Vec::new();
        alive.on_message(1.0, &req, &mut rsp);
        let verdict = rsp
            .iter()
            .flat_map(|(_, m)| m.updates())
            .find(|u| u.id == NodeId(1));
        assert!(
            verdict.is_some_and(|u| u.status == SwimStatus::Faulty),
            "delta must carry the death verdict"
        );
        for (_, m) in &rsp {
            zombie.on_message(1.1, m, &mut Vec::new());
        }
        assert_eq!(zombie.incarnation(), 1, "zombie must refute");
        assert!(zombie.ledger().is_live(NodeId(1)));
    }

    #[test]
    fn departed_node_stops_syncing() {
        let members = ids(&[0, 1, 2]);
        let mut s = Swim::bootstrap(NodeId(0), sync_cfg(1, 0.5), &members);
        s.leave(&mut Vec::new());
        let mut out = Vec::new();
        for i in 0..40 {
            s.on_tick(f64::from(i) * 0.25, &mut out);
        }
        assert!(
            !out.iter()
                .any(|(_, m)| matches!(m, SwimMsg::SyncReq { .. })),
            "departed nodes must not initiate syncs"
        );
    }

    #[test]
    fn leave_gossips_departure() {
        let members = ids(&[0, 1, 2, 3]);
        let mut s = Swim::bootstrap(NodeId(2), cfg(1), &members);
        let mut out = Vec::new();
        s.leave(&mut out);
        assert!(!out.is_empty());
        for (_, msg) in &out {
            assert!(msg
                .updates()
                .iter()
                .any(|u| u.id == NodeId(2) && u.status == SwimStatus::Left));
        }
        assert!(!s.ledger().is_live(NodeId(2)));
    }
}
