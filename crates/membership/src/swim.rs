//! The sans-io SWIM state machine.
//!
//! ## Protocol sketch (Das et al., DSN 2002)
//!
//! Time is divided into *protocol periods* of [`SwimConfig::period_s`]
//! seconds. Each period the node picks one live peer from a shuffled
//! rotation and sends it a [`SwimMsg::Ping`]. If no ack arrives within
//! [`SwimConfig::ping_timeout_s`], the node asks
//! [`SwimConfig::ping_req_fanout`] other peers to probe the target
//! indirectly ([`SwimMsg::PingReq`] → [`SwimMsg::ProxyAck`]), which
//! distinguishes a dead target from a lossy direct path. A target that
//! stays silent through the whole period becomes **suspected**; the
//! suspicion gossips through the cluster, and the target can refute it
//! by bumping its *incarnation* and gossiping a fresh `Alive`. A
//! suspicion that survives [`SwimConfig::suspicion_periods`] periods is
//! **confirmed faulty** — only then does the membership view change.
//!
//! Every outgoing message piggybacks up to
//! [`SwimConfig::max_piggyback`] pending membership events, each
//! retransmitted at most [`SwimConfig::gossip_transmissions`] times —
//! infection-style dissemination with per-node traffic constant in `n`.
//!
//! ## Interface
//!
//! Strictly sans-io, like every protocol core in this workspace: the
//! driver calls [`Swim::on_tick`] on a coarse timer and
//! [`Swim::on_message`] per datagram; both append `(destination,
//! message)` pairs to an output vector. View installation goes through
//! [`Swim::poll_view`], which batches ledger changes on the
//! [`SwimConfig::publish_period_s`] cadence and returns monotonically
//! versioned `(version, sorted members)` snapshots (see
//! [`crate::view`] for why concurrent publishers agree).

use crate::view::ViewLedger;
use crate::wire::{SwimMsg, SwimStatus, SwimUpdate};
use apor_quorum::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// SWIM protocol knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwimConfig {
    /// Protocol period: one probe round per period, seconds.
    pub period_s: f64,
    /// Deadline for the direct ack before indirect probing kicks in,
    /// seconds.
    pub ping_timeout_s: f64,
    /// Number of helpers asked to probe indirectly after a direct miss.
    pub ping_req_fanout: usize,
    /// Suspicion lifetime before a silent member is confirmed faulty,
    /// in protocol periods.
    pub suspicion_periods: f64,
    /// Maximum membership events piggybacked per message.
    pub max_piggyback: usize,
    /// Times each event is retransmitted before leaving the gossip
    /// queue (≈ λ·log n in the SWIM paper; a safe constant here).
    pub gossip_transmissions: u32,
    /// Cadence at which ledger changes are batched into installed
    /// views, seconds.
    pub publish_period_s: f64,
    /// Seed for this node's probe-order and helper-choice randomness.
    pub seed: u64,
}

impl Default for SwimConfig {
    fn default() -> Self {
        SwimConfig {
            period_s: 2.0,
            ping_timeout_s: 0.5,
            ping_req_fanout: 3,
            suspicion_periods: 3.0,
            max_piggyback: 10,
            gossip_transmissions: 10,
            publish_period_s: 2.0,
            seed: 0x5111_0000,
        }
    }
}

impl SwimConfig {
    /// Same configuration, different randomness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The suspicion timeout in seconds.
    #[must_use]
    pub fn suspicion_timeout_s(&self) -> f64 {
        self.suspicion_periods * self.period_s
    }

    /// Worst-case seconds from a member's crash to every live ledger
    /// confirming it, assuming gossip reaches the cluster within one
    /// period per hop: one period until somebody's rotation probes it,
    /// one period of ping/ping-req silence, then the suspicion timeout.
    #[must_use]
    pub fn detection_budget_s(&self, n: usize) -> f64 {
        let rotation = (n as f64).max(1.0) * self.period_s;
        rotation + self.period_s + self.suspicion_timeout_s() + self.publish_period_s
    }

    /// Sanity-check the timing invariants.
    ///
    /// # Panics
    /// Panics when the indirect probe cannot possibly finish within a
    /// period, or any knob is non-positive.
    pub fn validate(&self) {
        assert!(self.period_s > 0.0, "period must be positive");
        assert!(
            self.ping_timeout_s > 0.0 && self.ping_timeout_s < self.period_s / 2.0,
            "ping timeout must leave room for the indirect round"
        );
        assert!(self.suspicion_periods >= 1.0, "suspicion below one period");
        assert!(self.max_piggyback >= 1, "piggybacking disabled");
        assert!(self.gossip_transmissions >= 1, "gossip disabled");
        assert!(
            self.publish_period_s > 0.0,
            "publish period must be positive"
        );
    }
}

/// The probe in flight during the current protocol period.
#[derive(Debug, Clone)]
struct Outstanding {
    target: NodeId,
    seq: u32,
    direct_deadline: f64,
    indirect_sent: bool,
    acked: bool,
}

/// A ping we performed on behalf of a ping-req origin.
#[derive(Debug, Clone)]
struct Relay {
    origin: NodeId,
    origin_seq: u32,
    target: NodeId,
    seq: u32,
    deadline: f64,
}

/// An active suspicion (transient; never in the ledger).
#[derive(Debug, Clone, Copy)]
struct Suspicion {
    incarnation: u32,
    deadline: f64,
}

/// A gossip-queue entry with its remaining retransmission budget.
#[derive(Debug, Clone)]
struct Gossip {
    update: SwimUpdate,
    remaining: u32,
}

/// The per-node SWIM state machine.
#[derive(Debug, Clone)]
pub struct Swim {
    me: NodeId,
    cfg: SwimConfig,
    incarnation: u32,
    ledger: ViewLedger,
    rng: ChaCha8Rng,
    seq: u32,
    probe_order: Vec<NodeId>,
    probe_pos: usize,
    next_period_at: Option<f64>,
    outstanding: Option<Outstanding>,
    relays: Vec<Relay>,
    suspicions: BTreeMap<NodeId, Suspicion>,
    gossip: VecDeque<Gossip>,
    next_publish_at: f64,
    published_version: u32,
    departed: bool,
}

impl Swim {
    /// A joining node: knows itself plus `seeds` (its introducers). Its
    /// own `Alive` gossips outward from the first ping, so the rest of
    /// the cluster learns of the join without any coordinator.
    #[must_use]
    pub fn new(me: NodeId, cfg: SwimConfig, seeds: &[NodeId]) -> Self {
        cfg.validate();
        let mut initial: Vec<NodeId> = seeds.iter().copied().filter(|&s| s != me).collect();
        initial.push(me);
        let mut swim = Swim::with_ledger(me, cfg, ViewLedger::bootstrap(&initial));
        swim.enqueue_gossip(SwimUpdate {
            id: me,
            incarnation: 0,
            status: SwimStatus::Alive,
        });
        swim
    }

    /// A statically bootstrapped node: the full initial membership is
    /// known up front (the steady-state experiments), so every node
    /// derives the identical initial view with zero join traffic.
    #[must_use]
    pub fn bootstrap(me: NodeId, cfg: SwimConfig, members: &[NodeId]) -> Self {
        cfg.validate();
        let mut all: Vec<NodeId> = members.to_vec();
        if !all.contains(&me) {
            all.push(me);
        }
        Swim::with_ledger(me, cfg, ViewLedger::bootstrap(&all))
    }

    fn with_ledger(me: NodeId, cfg: SwimConfig, ledger: ViewLedger) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        Swim {
            me,
            cfg,
            incarnation: 0,
            ledger,
            rng,
            seq: 0,
            probe_order: Vec::new(),
            probe_pos: 0,
            next_period_at: None,
            outstanding: None,
            relays: Vec::new(),
            suspicions: BTreeMap::new(),
            gossip: VecDeque::new(),
            next_publish_at: 0.0,
            published_version: 0,
            departed: false,
        }
    }

    /// This node's identity.
    #[must_use]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// This node's current incarnation.
    #[must_use]
    pub fn incarnation(&self) -> u32 {
        self.incarnation
    }

    /// The converged-state ledger (diagnostics and tests).
    #[must_use]
    pub fn ledger(&self) -> &ViewLedger {
        &self.ledger
    }

    /// Is `id` currently under active suspicion here?
    #[must_use]
    pub fn is_suspected(&self, id: NodeId) -> bool {
        self.suspicions.contains_key(&id)
    }

    /// The current `(version, sorted members)` snapshot, regardless of
    /// the publish cadence.
    #[must_use]
    pub fn current_view(&self) -> (u32, Vec<NodeId>) {
        (self.ledger.version(), self.ledger.members())
    }

    // ------------------------------------------------------------------
    // Driver interface
    // ------------------------------------------------------------------

    /// Advance timers. The driver calls this on a coarse tick (a few
    /// times per [`SwimConfig::ping_timeout_s`]); all deadlines are
    /// computed from `now`, so tick jitter only delays, never corrupts.
    pub fn on_tick(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        self.relays.retain(|r| r.deadline > now);
        self.fire_indirect_probes(now, out);
        self.confirm_expired_suspicions(now);
        let period_start = match self.next_period_at {
            None => true,
            Some(t) => now >= t,
        };
        if period_start {
            self.next_period_at = Some(now + self.cfg.period_s);
            self.finish_probe_round(now);
            self.start_probe_round(now, out);
        }
    }

    /// Handle one decoded SWIM datagram.
    pub fn on_message(&mut self, now: f64, msg: &SwimMsg, out: &mut Vec<(NodeId, SwimMsg)>) {
        self.apply_updates(now, msg.updates());
        match msg {
            SwimMsg::Ping { from, seq, .. } => {
                // A ping proves the sender exists; incarnation 0 is the
                // weakest claim, so stale knowledge is never overwritten.
                self.ledger.apply(*from, 0, false);
                let mut updates = self.take_piggyback();
                // A pinger our ledger marks dead doesn't know it was
                // confirmed faulty (the original gossip has long left
                // the queue): echo the verdict so it can refute with a
                // higher incarnation and rejoin instead of staying
                // split-brained forever.
                if let Some(state) = self.ledger.state(*from) {
                    if state.dead && !updates.iter().any(|u| u.id == *from) {
                        updates.push(SwimUpdate {
                            id: *from,
                            incarnation: state.incarnation,
                            status: SwimStatus::Faulty,
                        });
                    }
                }
                out.push((
                    *from,
                    SwimMsg::Ack {
                        from: self.me,
                        to: *from,
                        seq: *seq,
                        updates,
                    },
                ));
            }
            SwimMsg::Ack { from, seq, .. } => {
                if let Some(o) = &mut self.outstanding {
                    if o.seq == *seq && o.target == *from {
                        o.acked = true;
                    }
                }
                // Serve any ping-req this ack answers.
                if let Some(pos) = self
                    .relays
                    .iter()
                    .position(|r| r.seq == *seq && r.target == *from)
                {
                    let relay = self.relays.swap_remove(pos);
                    let updates = self.take_piggyback();
                    out.push((
                        relay.origin,
                        SwimMsg::ProxyAck {
                            from: self.me,
                            to: relay.origin,
                            target: relay.target,
                            seq: relay.origin_seq,
                            updates,
                        },
                    ));
                }
            }
            SwimMsg::PingReq {
                from, target, seq, ..
            } => {
                self.ledger.apply(*from, 0, false);
                self.seq = self.seq.wrapping_add(1);
                self.relays.push(Relay {
                    origin: *from,
                    origin_seq: *seq,
                    target: *target,
                    seq: self.seq,
                    deadline: now + 2.0 * self.cfg.ping_timeout_s + self.cfg.period_s,
                });
                let updates = self.take_piggyback();
                out.push((
                    *target,
                    SwimMsg::Ping {
                        from: self.me,
                        to: *target,
                        seq: self.seq,
                        updates,
                    },
                ));
            }
            SwimMsg::ProxyAck { target, seq, .. } => {
                if let Some(o) = &mut self.outstanding {
                    if o.seq == *seq && o.target == *target {
                        o.acked = true;
                    }
                }
            }
        }
    }

    /// Batched view publication: `Some((version, members))` when the
    /// publish cadence has elapsed *and* the ledger moved past the last
    /// published version. All events confirmed since the previous
    /// publication collapse into one installed view.
    pub fn poll_view(&mut self, now: f64) -> Option<(u32, Vec<NodeId>)> {
        if now < self.next_publish_at {
            return None;
        }
        self.next_publish_at = now + self.cfg.publish_period_s;
        let version = self.ledger.version();
        if version > self.published_version {
            self.published_version = version;
            Some((version, self.ledger.members()))
        } else {
            None
        }
    }

    /// Announce a voluntary departure: gossip `Left` directly to a few
    /// live peers (the node stops ticking afterwards, so the update
    /// must leave immediately rather than ride the queue).
    pub fn leave(&mut self, out: &mut Vec<(NodeId, SwimMsg)>) {
        let update = SwimUpdate {
            id: self.me,
            incarnation: self.incarnation,
            status: SwimStatus::Left,
        };
        self.departed = true;
        self.ledger.apply(self.me, self.incarnation, true);
        let peers: Vec<NodeId> = self.live_peers();
        let fanout = self.cfg.ping_req_fanout.max(1);
        let chosen: Vec<NodeId> = peers
            .choose_multiple(&mut self.rng, fanout)
            .copied()
            .collect();
        for peer in chosen {
            self.seq = self.seq.wrapping_add(1);
            out.push((
                peer,
                SwimMsg::Ping {
                    from: self.me,
                    to: peer,
                    seq: self.seq,
                    updates: vec![update],
                },
            ));
        }
    }

    // ------------------------------------------------------------------
    // Probe rounds
    // ------------------------------------------------------------------

    fn live_peers(&self) -> Vec<NodeId> {
        self.ledger
            .members()
            .into_iter()
            .filter(|&m| m != self.me)
            .collect()
    }

    fn start_probe_round(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        let Some(target) = self.next_target() else {
            return;
        };
        self.seq = self.seq.wrapping_add(1);
        self.outstanding = Some(Outstanding {
            target,
            seq: self.seq,
            direct_deadline: now + self.cfg.ping_timeout_s,
            indirect_sent: false,
            acked: false,
        });
        let updates = self.take_piggyback();
        out.push((
            target,
            SwimMsg::Ping {
                from: self.me,
                to: target,
                seq: self.seq,
                updates,
            },
        ));
    }

    /// Judge the previous period's probe: a silent target becomes
    /// suspected.
    fn finish_probe_round(&mut self, now: f64) {
        let Some(o) = self.outstanding.take() else {
            return;
        };
        if o.acked || !self.ledger.is_live(o.target) {
            return;
        }
        let incarnation = self.ledger.incarnation(o.target);
        self.start_suspicion(now, o.target, incarnation);
    }

    fn fire_indirect_probes(&mut self, now: f64, out: &mut Vec<(NodeId, SwimMsg)>) {
        let Some(o) = &self.outstanding else { return };
        if o.acked || o.indirect_sent || now < o.direct_deadline {
            return;
        }
        let (target, seq) = (o.target, o.seq);
        let helpers: Vec<NodeId> = {
            let pool: Vec<NodeId> = self
                .live_peers()
                .into_iter()
                .filter(|&p| p != target)
                .collect();
            pool.choose_multiple(&mut self.rng, self.cfg.ping_req_fanout)
                .copied()
                .collect()
        };
        for helper in helpers {
            let updates = self.take_piggyback();
            out.push((
                helper,
                SwimMsg::PingReq {
                    from: self.me,
                    to: helper,
                    target,
                    seq,
                    updates,
                },
            ));
        }
        if let Some(o) = &mut self.outstanding {
            o.indirect_sent = true;
        }
    }

    /// Round-robin over a shuffled rotation of live peers; reshuffles
    /// when the rotation is exhausted (every peer is probed once per
    /// `n − 1` periods — SWIM's bounded-detection-time property).
    fn next_target(&mut self) -> Option<NodeId> {
        for _rebuild in 0..2 {
            while self.probe_pos < self.probe_order.len() {
                let candidate = self.probe_order[self.probe_pos];
                self.probe_pos += 1;
                if candidate != self.me && self.ledger.is_live(candidate) {
                    return Some(candidate);
                }
            }
            let mut rotation = self.live_peers();
            rotation.shuffle(&mut self.rng);
            self.probe_order = rotation;
            self.probe_pos = 0;
            if self.probe_order.is_empty() {
                return None;
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Suspicion and dissemination
    // ------------------------------------------------------------------

    fn start_suspicion(&mut self, now: f64, id: NodeId, incarnation: u32) {
        let deadline = now + self.cfg.suspicion_timeout_s();
        match self.suspicions.get_mut(&id) {
            Some(existing) if existing.incarnation >= incarnation => {}
            Some(existing) => {
                existing.incarnation = incarnation;
                existing.deadline = deadline;
            }
            None => {
                self.suspicions.insert(
                    id,
                    Suspicion {
                        incarnation,
                        deadline,
                    },
                );
            }
        }
        self.enqueue_gossip(SwimUpdate {
            id,
            incarnation,
            status: SwimStatus::Suspect,
        });
    }

    fn confirm_expired_suspicions(&mut self, now: f64) {
        let expired: Vec<(NodeId, u32)> = self
            .suspicions
            .iter()
            .filter(|(_, s)| s.deadline <= now)
            .map(|(&id, s)| (id, s.incarnation))
            .collect();
        for (id, incarnation) in expired {
            self.suspicions.remove(&id);
            if self.ledger.apply(id, incarnation, true) {
                self.enqueue_gossip(SwimUpdate {
                    id,
                    incarnation,
                    status: SwimStatus::Faulty,
                });
            }
        }
    }

    fn apply_updates(&mut self, now: f64, updates: &[SwimUpdate]) {
        for u in updates {
            if u.id == self.me {
                self.refute_if_needed(*u);
                continue;
            }
            match u.status {
                SwimStatus::Alive => {
                    if self.ledger.apply(u.id, u.incarnation, false) {
                        // A higher incarnation refutes any older suspicion.
                        if self
                            .suspicions
                            .get(&u.id)
                            .is_some_and(|s| u.incarnation > s.incarnation)
                        {
                            self.suspicions.remove(&u.id);
                        }
                        self.enqueue_gossip(*u);
                    }
                }
                SwimStatus::Suspect => {
                    if self.ledger.state(u.id).is_some_and(|s| s.dead)
                        || u.incarnation < self.ledger.incarnation(u.id)
                    {
                        continue; // stale suspicion
                    }
                    // A suspected member is still a member at that
                    // incarnation.
                    self.ledger.apply(u.id, u.incarnation, false);
                    let fresh = match self.suspicions.get(&u.id) {
                        Some(s) => u.incarnation > s.incarnation,
                        None => true,
                    };
                    if fresh {
                        self.start_suspicion(now, u.id, u.incarnation);
                    }
                }
                SwimStatus::Faulty | SwimStatus::Left => {
                    if self.ledger.apply(u.id, u.incarnation, true) {
                        self.suspicions.remove(&u.id);
                        self.enqueue_gossip(*u);
                    }
                }
            }
        }
    }

    /// Somebody claims *we* are suspected/faulty: bump our incarnation
    /// and gossip a fresh `Alive`, the SWIM refutation. A node that
    /// announced its own departure stops refuting — otherwise its
    /// `Left` gossip echoing back would resurrect it.
    fn refute_if_needed(&mut self, u: SwimUpdate) {
        if self.departed || u.status == SwimStatus::Alive || u.incarnation < self.incarnation {
            return;
        }
        self.incarnation = u.incarnation.wrapping_add(1);
        self.ledger.apply(self.me, self.incarnation, false);
        self.enqueue_gossip(SwimUpdate {
            id: self.me,
            incarnation: self.incarnation,
            status: SwimStatus::Alive,
        });
    }

    /// Queue an event for dissemination, superseding any queued event
    /// about the same member.
    fn enqueue_gossip(&mut self, update: SwimUpdate) {
        self.gossip.retain(|g| g.update.id != update.id);
        self.gossip.push_back(Gossip {
            update,
            remaining: self.cfg.gossip_transmissions,
        });
    }

    /// Up to `max_piggyback` queued events, round-robin, each drawn
    /// from its retransmission budget.
    fn take_piggyback(&mut self) -> Vec<SwimUpdate> {
        let take = self.cfg.max_piggyback.min(self.gossip.len());
        let mut updates = Vec::with_capacity(take);
        for _ in 0..take {
            let Some(mut g) = self.gossip.pop_front() else {
                break;
            };
            updates.push(g.update);
            g.remaining -= 1;
            if g.remaining > 0 {
                self.gossip.push_back(g);
            }
        }
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u16]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn cfg(seed: u64) -> SwimConfig {
        SwimConfig::default().with_seed(seed)
    }

    #[test]
    fn bootstrap_views_agree_without_traffic() {
        let members = ids(&[0, 1, 2, 3]);
        let a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let b = Swim::bootstrap(NodeId(3), cfg(99), &members);
        assert_eq!(a.current_view(), b.current_view());
        assert_eq!(a.current_view().1, members);
    }

    #[test]
    fn probe_round_pings_one_live_peer() {
        let members = ids(&[0, 1, 2, 3]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(7), &members);
        let mut out = Vec::new();
        s.on_tick(0.0, &mut out);
        assert_eq!(out.len(), 1, "one ping per period");
        let SwimMsg::Ping { from, to, .. } = &out[0].1 else {
            panic!("expected ping, got {:?}", out[0].1)
        };
        assert_eq!(*from, NodeId(0));
        assert_ne!(*to, NodeId(0));
        // Within the same period, no further pings.
        let mut out2 = Vec::new();
        s.on_tick(0.1, &mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn ack_prevents_suspicion() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let mut b = Swim::bootstrap(NodeId(1), cfg(2), &members);
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out);
        let (_, ping) = out.pop().expect("ping");
        let mut reply = Vec::new();
        b.on_message(0.05, &ping, &mut reply);
        let (back_to, ack) = reply.pop().expect("ack");
        assert_eq!(back_to, NodeId(0));
        a.on_message(0.1, &ack, &mut Vec::new());
        // Period rolls over: no suspicion of node 1.
        a.on_tick(2.0, &mut Vec::new());
        assert!(!a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)));
    }

    #[test]
    fn silent_peer_is_suspected_then_confirmed() {
        let members = ids(&[0, 1]);
        let c = cfg(1);
        let timeout = c.suspicion_timeout_s();
        let mut a = Swim::bootstrap(NodeId(0), c, &members);
        let mut out = Vec::new();
        a.on_tick(0.0, &mut out); // ping sent, never answered
        a.on_tick(0.6, &mut out); // indirect probes (nobody to ask in n=2)
        a.on_tick(2.0, &mut out); // period judgment → suspect
        assert!(a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)), "suspicion is not removal");
        let before = a.ledger().version();
        a.on_tick(2.0 + timeout + 0.1, &mut out);
        assert!(!a.is_suspected(NodeId(1)));
        assert!(!a.ledger().is_live(NodeId(1)), "confirmed faulty");
        assert!(a.ledger().version() > before);
    }

    #[test]
    fn ping_req_round_trip_defeats_a_dead_direct_path() {
        // a → b direct path is "down" (we simply don't deliver a's
        // ping); helper h relays and b's ack comes back as ProxyAck.
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(5), &members);
        let mut h = Swim::bootstrap(NodeId(2), cfg(6), &members);
        let mut b = Swim::bootstrap(NodeId(1), cfg(7), &members);

        let mut out = Vec::new();
        a.on_tick(0.0, &mut out);
        let (target, _lost_ping) = out.pop().expect("ping");
        // Force the scenario where the probe target is node 1; with
        // seed 5 the first rotation may pick node 2 — then swap roles.
        let (target_node, helper_node) = if target == NodeId(1) {
            (&mut b, &mut h)
        } else {
            (&mut h, &mut b)
        };

        // Direct deadline passes → ping-req to the remaining peer.
        let mut out = Vec::new();
        a.on_tick(0.6, &mut out);
        assert_eq!(out.len(), 1, "one helper available");
        let (helper_id, ping_req) = out.pop().expect("ping-req");
        assert!(matches!(ping_req, SwimMsg::PingReq { .. }));

        let mut relayed = Vec::new();
        helper_node.on_message(0.7, &ping_req, &mut relayed);
        let (relay_to, relay_ping) = relayed.pop().expect("relayed ping");
        assert_eq!(relay_to, target);
        let mut acked = Vec::new();
        target_node.on_message(0.8, &relay_ping, &mut acked);
        let (ack_to, ack) = acked.pop().expect("ack to helper");
        assert_eq!(ack_to, helper_id);
        let mut proxied = Vec::new();
        helper_node.on_message(0.9, &ack, &mut proxied);
        let (proxy_to, proxy_ack) = proxied.pop().expect("proxy-ack to origin");
        assert_eq!(proxy_to, NodeId(0));
        a.on_message(1.0, &proxy_ack, &mut Vec::new());

        // Judgment at the period boundary: no suspicion.
        a.on_tick(2.0, &mut Vec::new());
        assert!(!a.is_suspected(target));
    }

    #[test]
    fn suspicion_is_refuted_by_higher_incarnation() {
        let members = ids(&[0, 1, 2]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        // Gossip arrives: node 1 suspected at incarnation 0.
        let suspect = SwimMsg::Ping {
            from: NodeId(2),
            to: NodeId(0),
            seq: 1,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        a.on_message(1.0, &suspect, &mut Vec::new());
        assert!(a.is_suspected(NodeId(1)));
        // Node 1 refutes with incarnation 1.
        let refute = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 2,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 1,
                status: SwimStatus::Alive,
            }],
        };
        a.on_message(1.5, &refute, &mut Vec::new());
        assert!(!a.is_suspected(NodeId(1)));
        assert!(a.ledger().is_live(NodeId(1)));
        assert_eq!(a.ledger().incarnation(NodeId(1)), 1);
    }

    #[test]
    fn node_refutes_its_own_suspicion() {
        let members = ids(&[0, 1]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let gossip = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 3,
            updates: vec![SwimUpdate {
                id: NodeId(0),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        let mut out = Vec::new();
        a.on_message(0.5, &gossip, &mut out);
        assert_eq!(a.incarnation(), 1, "incarnation bumped to refute");
        // The refutation rides the ack's piggyback.
        let (_, ack) = out.pop().expect("ack");
        assert!(ack
            .updates()
            .iter()
            .any(|u| { u.id == NodeId(0) && u.incarnation == 1 && u.status == SwimStatus::Alive }));
    }

    #[test]
    fn join_via_seed_discovers_both_ways() {
        let mut seed_node = Swim::bootstrap(NodeId(0), cfg(1), &ids(&[0, 1]));
        let mut joiner = Swim::new(NodeId(7), cfg(2), &[NodeId(0)]);
        assert_eq!(joiner.current_view().1, ids(&[0, 7]));
        // Joiner's first period pings the seed.
        let mut out = Vec::new();
        joiner.on_tick(0.0, &mut out);
        let (to, ping) = out.pop().expect("join ping");
        assert_eq!(to, NodeId(0));
        assert!(
            ping.updates()
                .iter()
                .any(|u| u.id == NodeId(7) && u.status == SwimStatus::Alive),
            "join must announce itself"
        );
        let mut reply = Vec::new();
        seed_node.on_message(0.1, &ping, &mut reply);
        assert!(
            seed_node.ledger().is_live(NodeId(7)),
            "seed learned the joiner"
        );
        // And the seed's ack gossips the cluster to the joiner.
        let (_, ack) = reply.pop().expect("ack");
        joiner.on_message(0.2, &ack, &mut Vec::new());
        assert!(joiner.ledger().is_live(NodeId(1)) || !ack.updates().is_empty());
    }

    #[test]
    fn publish_batches_and_is_monotone() {
        let members = ids(&[0, 1, 2]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let first = s.poll_view(0.0).expect("initial publish");
        assert_eq!(first.1, members);
        assert!(s.poll_view(0.5).is_none(), "cadence not elapsed");
        // Two confirmed events between publishes…
        s.apply_updates(
            3.0,
            &[
                SwimUpdate {
                    id: NodeId(9),
                    incarnation: 0,
                    status: SwimStatus::Alive,
                },
                SwimUpdate {
                    id: NodeId(1),
                    incarnation: 0,
                    status: SwimStatus::Faulty,
                },
            ],
        );
        // …collapse into a single new view.
        let (v2, m2) = s.poll_view(3.0).expect("batched publish");
        assert!(v2 > first.0);
        assert_eq!(m2, ids(&[0, 2, 9]));
        assert!(s.poll_view(6.0).is_none(), "no further change");
    }

    #[test]
    fn gossip_budget_drains() {
        let members = ids(&[0, 1]);
        let mut s = Swim::bootstrap(NodeId(0), cfg(1), &members);
        s.enqueue_gossip(SwimUpdate {
            id: NodeId(5),
            incarnation: 0,
            status: SwimStatus::Alive,
        });
        let budget = s.cfg.gossip_transmissions;
        for _ in 0..budget {
            assert_eq!(s.take_piggyback().len(), 1);
        }
        assert!(s.take_piggyback().is_empty(), "budget exhausted");
    }

    #[test]
    fn dead_pinger_is_told_and_rejoins() {
        let members = ids(&[0, 1, 2]);
        let mut alive = Swim::bootstrap(NodeId(0), cfg(1), &members);
        // Node 1 was confirmed faulty at incarnation 0 long ago.
        alive.apply_updates(
            0.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        // Drain the gossip queue: the Faulty event is no longer pending.
        while !alive.take_piggyback().is_empty() {}
        // The "dead" node recovers with its old state and pings us.
        let mut zombie = Swim::bootstrap(NodeId(1), cfg(2), &members);
        let mut pings = Vec::new();
        zombie.on_tick(100.0, &mut pings);
        // If the zombie's rotation picked node 2 first, craft the
        // equivalent direct ping.
        let (_, ping) = pings
            .into_iter()
            .find(|(to, _)| *to == NodeId(0))
            .unwrap_or((
                NodeId(0),
                SwimMsg::Ping {
                    from: NodeId(1),
                    to: NodeId(0),
                    seq: 9,
                    updates: vec![],
                },
            ));
        let mut acks = Vec::new();
        alive.on_message(100.1, &ping, &mut acks);
        let (_, ack) = acks.pop().expect("ack");
        assert!(
            ack.updates()
                .iter()
                .any(|u| u.id == NodeId(1) && u.status == SwimStatus::Faulty),
            "ack must echo the faulty verdict to the zombie"
        );
        // The zombie refutes with a higher incarnation…
        zombie.on_message(100.2, &ack, &mut Vec::new());
        assert_eq!(zombie.incarnation(), 1);
        // …and its next ping's piggyback resurrects it in our ledger.
        let refute = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(0),
            seq: 10,
            updates: vec![SwimUpdate {
                id: NodeId(1),
                incarnation: 1,
                status: SwimStatus::Alive,
            }],
        };
        alive.on_message(100.3, &refute, &mut Vec::new());
        assert!(alive.ledger().is_live(NodeId(1)), "rejoin must succeed");
    }

    #[test]
    fn departed_node_does_not_refute_its_own_left() {
        let members = ids(&[0, 1, 2]);
        let mut s = Swim::bootstrap(NodeId(2), cfg(1), &members);
        s.leave(&mut Vec::new());
        let inc_after_leave = s.incarnation();
        // The node's own Left gossip echoes back before shutdown.
        let echo = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(2),
            seq: 4,
            updates: vec![SwimUpdate {
                id: NodeId(2),
                incarnation: inc_after_leave,
                status: SwimStatus::Left,
            }],
        };
        s.on_message(1.0, &echo, &mut Vec::new());
        assert_eq!(s.incarnation(), inc_after_leave, "no self-resurrection");
        assert!(!s.ledger().is_live(NodeId(2)));
    }

    #[test]
    fn concurrent_distinct_confirmations_get_distinct_versions() {
        // The salted version weights: two ledgers diverging by events
        // about *different* members must (for these members) disagree
        // on the version, so colliding view numbers cannot pair with
        // different member lists.
        let members = ids(&[0, 1, 2, 3, 4]);
        let mut a = Swim::bootstrap(NodeId(0), cfg(1), &members);
        let mut b = Swim::bootstrap(NodeId(3), cfg(2), &members);
        a.apply_updates(
            1.0,
            &[SwimUpdate {
                id: NodeId(1),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        b.apply_updates(
            1.0,
            &[SwimUpdate {
                id: NodeId(2),
                incarnation: 0,
                status: SwimStatus::Faulty,
            }],
        );
        let (va, ma) = a.current_view();
        let (vb, mb) = b.current_view();
        assert_ne!(ma, mb);
        assert_ne!(va, vb, "diverged ledgers must not share a version");
    }

    #[test]
    fn leave_gossips_departure() {
        let members = ids(&[0, 1, 2, 3]);
        let mut s = Swim::bootstrap(NodeId(2), cfg(1), &members);
        let mut out = Vec::new();
        s.leave(&mut out);
        assert!(!out.is_empty());
        for (_, msg) in &out {
            assert!(msg
                .updates()
                .iter()
                .any(|u| u.id == NodeId(2) && u.status == SwimStatus::Left));
        }
        assert!(!s.ledger().is_live(NodeId(2)));
    }
}
