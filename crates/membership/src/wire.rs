//! Compact binary wire format for the SWIM gossip messages.
//!
//! Same style as `apor_linkstate::wire`: hand-rolled big-endian over
//! `bytes`, sized for the bandwidth accounting. The tag space starts at
//! [`SWIM_TAG_BASE`] = 16, disjoint from the overlay's routing tags
//! (1–7), so a driver can dispatch on the first byte of a datagram
//! without trial decoding.
//!
//! Sizes: ping/ack are `10 + 7·u` bytes for `u` piggybacked updates;
//! ping-req/proxy-ack add 2 bytes of target. With the default one ping
//! round per 2 s and ≤ 10 piggybacked updates
//! (`SwimConfig::default()`), a worst-case ping+ack exchange is
//! 2 · (80 + 28) bytes per 2 s ≈ 900 bps per node, independent of
//! `n` — the property that removes the coordinator's `Θ(n)` broadcast
//! hot spot.
//!
//! The anti-entropy frames carry full-ledger records instead of a
//! bounded piggyback: a `SyncReq` is `12 + 7·k` bytes for `k` members
//! (two extra header bytes index the chunk), a `SyncRsp` `10 + 7·k`.
//! Ledgers are chunked at `AntiEntropyConfig::max_entries_per_frame`
//! records per frame — default [`SWIM_MTU_FRAME_ENTRIES`] to stay
//! under a 1500-byte MTU, hard wire cap [`SWIM_MAX_FRAME_ENTRIES`]
//! (the count field is one byte) — and the responder answers a sync
//! `seq` once, with one delta over the reassembled claim set, so one
//! push-pull round per `AntiEntropyConfig::sync_period_s` costs `O(n)`
//! bytes — amortized well below the probing budget at the paper's
//! scales, and the price of healing partitions that piggybacked gossip
//! alone cannot.

use apor_quorum::NodeId;
use apor_telemetry::trace::{TraceCtx, TRACE_CTX_SIZE};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// First message-type tag used by the SWIM plane.
pub const SWIM_TAG_BASE: u8 = 16;

/// Tag-byte flag marking a frame that carries a trailing trace
/// context ([`TraceCtx`], [`TRACE_CTX_SIZE`] bytes after the normal
/// payload). The flag lives in the tag byte so presence is signalled
/// in the *header*: any truncation of a traced frame changes the
/// expected total length and fails to decode — the trailer can never
/// silently alias the update list. Decoders that predate the flag
/// reject flagged tags as [`SwimWireError::BadType`] instead of
/// misparsing, and unflagged frames are bit-identical to the old
/// format.
pub const SWIM_TRACE_FLAG: u8 = 0x40;

const T_PING: u8 = SWIM_TAG_BASE;
const T_ACK: u8 = SWIM_TAG_BASE + 1;
const T_PING_REQ: u8 = SWIM_TAG_BASE + 2;
const T_PROXY_ACK: u8 = SWIM_TAG_BASE + 3;
const T_SYNC_REQ: u8 = SWIM_TAG_BASE + 4;
const T_SYNC_RSP: u8 = SWIM_TAG_BASE + 5;
const T_SYNC_DIGEST: u8 = SWIM_TAG_BASE + 6;
const T_SYNC_DIGEST_PUSH: u8 = SWIM_TAG_BASE + 7;

/// Bytes of the fixed ping/ack header (tag, from, to, seq, count).
pub const SWIM_HEADER_SIZE: usize = 10;
/// Bytes of a digest frame (tag, from, to, seq, version, known) — the
/// whole message; a digest carries no updates.
pub const SWIM_DIGEST_SIZE: usize = 15;
/// Bytes each piggybacked update adds.
pub const SWIM_UPDATE_SIZE: usize = 7;
/// Most ledger entries one sync frame can carry (the count field is one
/// byte); larger ledgers are chunked across frames by the sender.
pub const SWIM_MAX_FRAME_ENTRIES: usize = u8::MAX as usize;
/// Sync entries per frame that keep the datagram inside a standard
/// 1500-byte Ethernet MTU — the `AntiEntropyConfig` default. A
/// `SyncReq` is `12 + 7·k` bytes plus 28 bytes of IP+UDP framing;
/// `k = 208` gives 1 484 bytes, so real UDP transports never rely on
/// IP fragmentation (which middleboxes drop silently — losing exactly
/// the big post-partition syncs anti-entropy exists for).
pub const SWIM_MTU_FRAME_ENTRIES: usize = 208;

/// Does a datagram starting with `tag` belong to the SWIM plane?
/// Accepts both plain tags and tags carrying [`SWIM_TRACE_FLAG`]; the
/// masked range (16–23, flagged 80–87) stays disjoint from the
/// overlay's routing tags (1–9), so first-byte dispatch still works.
#[must_use]
pub fn is_swim_tag(tag: u8) -> bool {
    (T_PING..=T_SYNC_DIGEST_PUSH).contains(&(tag & !SWIM_TRACE_FLAG))
}

/// Decode errors (mirrors `apor_linkstate::wire::WireError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwimWireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message-type tag.
    BadType(u8),
    /// A length field disagrees with the buffer.
    BadLength,
    /// Unknown status code inside an update.
    BadStatus(u8),
}

impl fmt::Display for SwimWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwimWireError::Truncated => write!(f, "truncated SWIM message"),
            SwimWireError::BadType(t) => write!(f, "unknown SWIM message type {t}"),
            SwimWireError::BadLength => write!(f, "inconsistent SWIM length field"),
            SwimWireError::BadStatus(s) => write!(f, "unknown SWIM status {s}"),
        }
    }
}

impl std::error::Error for SwimWireError {}

/// A member's disseminated lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwimStatus {
    /// Live (join or suspicion refutation).
    Alive,
    /// Suspected faulty; awaiting refutation or confirmation.
    Suspect,
    /// Confirmed faulty.
    Faulty,
    /// Departed voluntarily.
    Left,
}

impl SwimStatus {
    fn code(self) -> u8 {
        match self {
            SwimStatus::Alive => 0,
            SwimStatus::Suspect => 1,
            SwimStatus::Faulty => 2,
            SwimStatus::Left => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, SwimWireError> {
        match code {
            0 => Ok(SwimStatus::Alive),
            1 => Ok(SwimStatus::Suspect),
            2 => Ok(SwimStatus::Faulty),
            3 => Ok(SwimStatus::Left),
            other => Err(SwimWireError::BadStatus(other)),
        }
    }

    /// Does this status mark the member dead in the view ledger?
    /// (Suspicion is transient and never enters the ledger.)
    #[must_use]
    pub fn is_dead(self) -> bool {
        matches!(self, SwimStatus::Faulty | SwimStatus::Left)
    }
}

/// One piggybacked membership event. 7 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwimUpdate {
    /// The member the event is about.
    pub id: NodeId,
    /// The member's incarnation the event refers to.
    pub incarnation: u32,
    /// The asserted lifecycle state.
    pub status: SwimStatus,
}

/// A SWIM-plane message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwimMsg {
    /// Direct probe; the receiver must [`SwimMsg::Ack`] with the same
    /// `seq`.
    Ping {
        /// Prober.
        from: NodeId,
        /// Probed member.
        to: NodeId,
        /// Correlates the ack (per-sender sequence).
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Reply to a [`SwimMsg::Ping`].
    Ack {
        /// The probed member (replier).
        from: NodeId,
        /// The original prober (or ping-req helper).
        to: NodeId,
        /// Echoed sequence.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Indirect-probe request: "please ping `target` for me".
    PingReq {
        /// The suspicious origin.
        from: NodeId,
        /// The helper being asked.
        to: NodeId,
        /// The silent member to probe.
        target: NodeId,
        /// The origin's sequence for this probe round.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Helper → origin: `target` answered the indirect probe.
    ProxyAck {
        /// The helper.
        from: NodeId,
        /// The origin of the ping-req.
        to: NodeId,
        /// The member that proved alive.
        target: NodeId,
        /// The origin's sequence echoed back.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Anti-entropy push: one chunk of the initiator's full ledger
    /// (every member ever heard of, dead or alive, at its converged
    /// `(incarnation, dead)` state encoded as `Alive` / `Faulty`). The
    /// receiver merges each chunk on arrival and, once all `chunks`
    /// frames of a `seq` are in, answers with the [`SwimMsg::SyncRsp`]
    /// delta computed over the whole claim set.
    SyncReq {
        /// The sync initiator.
        from: NodeId,
        /// The randomly chosen sync partner.
        to: NodeId,
        /// Correlates the chunks and the response (per-sender
        /// sequence).
        seq: u32,
        /// This frame's 0-based chunk index.
        chunk: u8,
        /// Total chunks in this sync round (≥ 1).
        chunks: u8,
        /// Full-ledger records (this chunk).
        updates: Vec<SwimUpdate>,
    },
    /// Anti-entropy pull: the responder's delta — every record where it
    /// holds strictly newer state than the request claimed, plus
    /// members the request did not mention.
    SyncRsp {
        /// The sync responder.
        from: NodeId,
        /// The sync initiator.
        to: NodeId,
        /// Echoed sequence.
        seq: u32,
        /// Delta records.
        updates: Vec<SwimUpdate>,
    },
    /// Anti-entropy version digest: a 15-byte first frame carrying only
    /// the sender's ledger fingerprint. The initiator opens a sync
    /// round with this instead of the `O(n)` full-ledger push; a
    /// receiver whose fingerprint matches answers with an empty
    /// [`SwimMsg::SyncRsp`] (transfer skipped — the steady-state case),
    /// while a mismatching receiver echoes its *own* digest back, which
    /// tells the initiator to proceed with the full [`SwimMsg::SyncReq`]
    /// push. One extra RTT when ledgers diverge; `O(1)` instead of
    /// `O(n)` bytes when they already agree.
    SyncDigest {
        /// The digest sender.
        from: NodeId,
        /// The sync partner (or, when echoing, the round's initiator).
        to: NodeId,
        /// Correlates the round (the initiator's per-sender sequence;
        /// echoed verbatim in the mismatch reply).
        seq: u32,
        /// The sender's ledger *content fingerprint*
        /// (`ViewLedger::fingerprint`, an FNV-1a fold) — deliberately
        /// NOT the salted version sum, whose small-integer weights let
        /// diverged ledgers collide at percent-level odds (which would
        /// silently disable anti-entropy between them); the hash
        /// collides at ≈ 2⁻³².
        fingerprint: u32,
        /// Number of members the sender's ledger has ever heard of
        /// (saturating at `u16::MAX`) — a cheap second component.
        known: u16,
    },
    /// Mismatch echo with the responder's data piggybacked: a
    /// [`SwimMsg::SyncDigest`] whose fingerprint disagreed, answered
    /// with the responder's own digest *plus* the first chunk of its
    /// ledger. Without the piggyback the initiator learns the
    /// responder's records only from the [`SwimMsg::SyncRsp`] pull
    /// after its own full push — one RTT later. With it, a diverged
    /// pair whose ledgers fit one frame (the common case) completes the
    /// responder→initiator transfer inside the digest exchange itself.
    SyncDigestPush {
        /// The echoing responder.
        from: NodeId,
        /// The round's initiator.
        to: NodeId,
        /// The initiator's round sequence, echoed verbatim.
        seq: u32,
        /// The responder's ledger fingerprint (mismatching by
        /// construction).
        fingerprint: u32,
        /// The responder's known-member count.
        known: u16,
        /// The first chunk of the responder's full ledger (up to the
        /// sender's per-frame entry cap).
        updates: Vec<SwimUpdate>,
    },
}

impl SwimMsg {
    /// The sender.
    #[must_use]
    pub fn from(&self) -> NodeId {
        match self {
            SwimMsg::Ping { from, .. }
            | SwimMsg::Ack { from, .. }
            | SwimMsg::PingReq { from, .. }
            | SwimMsg::ProxyAck { from, .. }
            | SwimMsg::SyncReq { from, .. }
            | SwimMsg::SyncRsp { from, .. }
            | SwimMsg::SyncDigest { from, .. }
            | SwimMsg::SyncDigestPush { from, .. } => *from,
        }
    }

    /// The addressee.
    #[must_use]
    pub fn to(&self) -> NodeId {
        match self {
            SwimMsg::Ping { to, .. }
            | SwimMsg::Ack { to, .. }
            | SwimMsg::PingReq { to, .. }
            | SwimMsg::ProxyAck { to, .. }
            | SwimMsg::SyncReq { to, .. }
            | SwimMsg::SyncRsp { to, .. }
            | SwimMsg::SyncDigest { to, .. }
            | SwimMsg::SyncDigestPush { to, .. } => *to,
        }
    }

    /// The piggybacked gossip (digests carry none).
    #[must_use]
    pub fn updates(&self) -> &[SwimUpdate] {
        match self {
            SwimMsg::Ping { updates, .. }
            | SwimMsg::Ack { updates, .. }
            | SwimMsg::PingReq { updates, .. }
            | SwimMsg::ProxyAck { updates, .. }
            | SwimMsg::SyncReq { updates, .. }
            | SwimMsg::SyncRsp { updates, .. }
            | SwimMsg::SyncDigestPush { updates, .. } => updates,
            SwimMsg::SyncDigest { .. } => &[],
        }
    }

    /// Serialized size in bytes (no IP/UDP framing).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let target = match self {
            SwimMsg::Ping { .. } | SwimMsg::Ack { .. } | SwimMsg::SyncRsp { .. } => 0,
            SwimMsg::PingReq { .. } | SwimMsg::ProxyAck { .. } | SwimMsg::SyncReq { .. } => 2,
            SwimMsg::SyncDigest { .. } => return SWIM_DIGEST_SIZE,
            // Digest layout plus a count byte and the piggybacked chunk.
            SwimMsg::SyncDigestPush { updates, .. } => {
                return SWIM_DIGEST_SIZE + 1 + SWIM_UPDATE_SIZE * updates.len()
            }
        };
        SWIM_HEADER_SIZE + target + SWIM_UPDATE_SIZE * self.updates().len()
    }

    /// Serialize to bytes.
    ///
    /// # Panics
    /// Panics if more than 255 updates are piggybacked (the protocol
    /// caps piggybacking far below that).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_size());
        // The digest frame has its own fixed layout (no update list).
        if let SwimMsg::SyncDigest {
            from,
            to,
            seq,
            fingerprint,
            known,
        } = self
        {
            b.put_u8(T_SYNC_DIGEST);
            b.put_u16(from.0);
            b.put_u16(to.0);
            b.put_u32(*seq);
            b.put_u32(*fingerprint);
            b.put_u16(*known);
            return b.freeze();
        }
        // So does the piggybacked mismatch echo: the digest header
        // followed by a counted update list.
        if let SwimMsg::SyncDigestPush {
            from,
            to,
            seq,
            fingerprint,
            known,
            updates,
        } = self
        {
            assert!(updates.len() <= usize::from(u8::MAX), "piggyback overflow");
            b.put_u8(T_SYNC_DIGEST_PUSH);
            b.put_u16(from.0);
            b.put_u16(to.0);
            b.put_u32(*seq);
            b.put_u32(*fingerprint);
            b.put_u16(*known);
            b.put_u8(updates.len() as u8);
            for u in updates {
                b.put_u16(u.id.0);
                b.put_u32(u.incarnation);
                b.put_u8(u.status.code());
            }
            return b.freeze();
        }
        // The two optional header bytes: a probe target for
        // ping-req/proxy-ack, `(chunk, chunks)` for sync requests.
        let (tag, from, to, seq, extra, updates) = match self {
            SwimMsg::Ping {
                from,
                to,
                seq,
                updates,
            } => (T_PING, from, to, seq, None, updates),
            SwimMsg::Ack {
                from,
                to,
                seq,
                updates,
            } => (T_ACK, from, to, seq, None, updates),
            SwimMsg::PingReq {
                from,
                to,
                target,
                seq,
                updates,
            } => (T_PING_REQ, from, to, seq, Some(target.0), updates),
            SwimMsg::ProxyAck {
                from,
                to,
                target,
                seq,
                updates,
            } => (T_PROXY_ACK, from, to, seq, Some(target.0), updates),
            SwimMsg::SyncReq {
                from,
                to,
                seq,
                chunk,
                chunks,
                updates,
            } => (
                T_SYNC_REQ,
                from,
                to,
                seq,
                Some(u16::from_be_bytes([*chunk, *chunks])),
                updates,
            ),
            SwimMsg::SyncRsp {
                from,
                to,
                seq,
                updates,
            } => (T_SYNC_RSP, from, to, seq, None, updates),
            SwimMsg::SyncDigest { .. } | SwimMsg::SyncDigestPush { .. } => {
                unreachable!("encoded above")
            }
        };
        assert!(updates.len() <= usize::from(u8::MAX), "piggyback overflow");
        b.put_u8(tag);
        b.put_u16(from.0);
        b.put_u16(to.0);
        b.put_u32(*seq);
        if let Some(x) = extra {
            b.put_u16(x);
        }
        b.put_u8(updates.len() as u8);
        for u in updates {
            b.put_u16(u.id.0);
            b.put_u32(u.incarnation);
            b.put_u8(u.status.code());
        }
        b.freeze()
    }

    /// Serialize, appending `ctx` as a trace trailer when present.
    ///
    /// With `None` the output is byte-for-byte [`SwimMsg::encode`];
    /// with `Some` the tag byte gains [`SWIM_TRACE_FLAG`] and the
    /// frame grows by [`TRACE_CTX_SIZE`] bytes.
    ///
    /// # Panics
    /// Panics if more than 255 updates are piggybacked (as
    /// [`SwimMsg::encode`]).
    #[must_use]
    pub fn encode_traced(&self, ctx: Option<&TraceCtx>) -> Bytes {
        let Some(ctx) = ctx else {
            return self.encode();
        };
        let mut raw = self.encode().to_vec();
        raw[0] |= SWIM_TRACE_FLAG;
        raw.extend_from_slice(&ctx.encode());
        Bytes::from(raw)
    }

    /// Deserialize from bytes, discarding any trace trailer.
    ///
    /// # Errors
    /// Returns a [`SwimWireError`] on truncation, unknown tags or
    /// malformed updates. Never panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<SwimMsg, SwimWireError> {
        Self::decode_traced(bytes).map(|(msg, _)| msg)
    }

    /// Deserialize from bytes, returning the trace context when the
    /// frame carries one ([`SWIM_TRACE_FLAG`] set on the tag byte).
    ///
    /// # Errors
    /// Returns a [`SwimWireError`] on truncation, unknown tags, a
    /// malformed trailer or malformed updates. Never panics on
    /// malformed input.
    pub fn decode_traced(bytes: &[u8]) -> Result<(SwimMsg, Option<TraceCtx>), SwimWireError> {
        let Some(&raw_tag) = bytes.first() else {
            return Err(SwimWireError::Truncated);
        };
        if raw_tag & SWIM_TRACE_FLAG == 0 {
            return Ok((Self::decode_body(raw_tag, &bytes[1..])?, None));
        }
        if !is_swim_tag(raw_tag) {
            return Err(SwimWireError::BadType(raw_tag));
        }
        // Header-signalled trailer: the last TRACE_CTX_SIZE bytes are
        // the context, everything between tag and trailer is the body.
        if bytes.len() < SWIM_HEADER_SIZE + TRACE_CTX_SIZE {
            return Err(SwimWireError::Truncated);
        }
        let (body, trailer) = bytes.split_at(bytes.len() - TRACE_CTX_SIZE);
        let ctx = TraceCtx::decode(trailer).ok_or(SwimWireError::BadLength)?;
        let msg = Self::decode_body(raw_tag & !SWIM_TRACE_FLAG, &body[1..])?;
        Ok((msg, Some(ctx)))
    }

    /// Decode everything after the tag byte. `tag` is the plain
    /// (unflagged) message type.
    fn decode_body(tag: u8, rest: &[u8]) -> Result<SwimMsg, SwimWireError> {
        let mut b = rest;
        if b.remaining() < SWIM_HEADER_SIZE - 1 {
            return Err(SwimWireError::Truncated);
        }
        if !(T_PING..=T_SYNC_DIGEST_PUSH).contains(&tag) {
            return Err(SwimWireError::BadType(tag));
        }
        let from = NodeId(b.get_u16());
        let to = NodeId(b.get_u16());
        let seq = b.get_u32();
        if tag == T_SYNC_DIGEST {
            // Fixed 15-byte layout: no update list, no count byte.
            if b.remaining() != 6 {
                return Err(if b.remaining() < 6 {
                    SwimWireError::Truncated
                } else {
                    SwimWireError::BadLength
                });
            }
            let fingerprint = b.get_u32();
            let known = b.get_u16();
            return Ok(SwimMsg::SyncDigest {
                from,
                to,
                seq,
                fingerprint,
                known,
            });
        }
        if tag == T_SYNC_DIGEST_PUSH {
            // Digest fields, then a counted update list.
            if b.remaining() < 7 {
                return Err(SwimWireError::Truncated);
            }
            let fingerprint = b.get_u32();
            let known = b.get_u16();
            let count = usize::from(b.get_u8());
            if b.remaining() != count * SWIM_UPDATE_SIZE {
                return Err(SwimWireError::BadLength);
            }
            let mut updates = Vec::with_capacity(count);
            for _ in 0..count {
                let id = NodeId(b.get_u16());
                let incarnation = b.get_u32();
                let status = SwimStatus::from_code(b.get_u8())?;
                updates.push(SwimUpdate {
                    id,
                    incarnation,
                    status,
                });
            }
            return Ok(SwimMsg::SyncDigestPush {
                from,
                to,
                seq,
                fingerprint,
                known,
                updates,
            });
        }
        let extra = if tag == T_PING_REQ || tag == T_PROXY_ACK || tag == T_SYNC_REQ {
            if b.remaining() < 3 {
                return Err(SwimWireError::Truncated);
            }
            Some(b.get_u16())
        } else {
            None
        };
        let count = usize::from(b.get_u8());
        if b.remaining() != count * SWIM_UPDATE_SIZE {
            return Err(SwimWireError::BadLength);
        }
        let mut updates = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(b.get_u16());
            let incarnation = b.get_u32();
            let status = SwimStatus::from_code(b.get_u8())?;
            updates.push(SwimUpdate {
                id,
                incarnation,
                status,
            });
        }
        Ok(match tag {
            T_PING => SwimMsg::Ping {
                from,
                to,
                seq,
                updates,
            },
            T_ACK => SwimMsg::Ack {
                from,
                to,
                seq,
                updates,
            },
            T_PING_REQ => SwimMsg::PingReq {
                from,
                to,
                target: NodeId(extra.expect("parsed above")),
                seq,
                updates,
            },
            T_SYNC_REQ => {
                let [chunk, chunks] = extra.expect("parsed above").to_be_bytes();
                if chunks == 0 || chunk >= chunks {
                    return Err(SwimWireError::BadLength);
                }
                SwimMsg::SyncReq {
                    from,
                    to,
                    seq,
                    chunk,
                    chunks,
                    updates,
                }
            }
            T_SYNC_RSP => SwimMsg::SyncRsp {
                from,
                to,
                seq,
                updates,
            },
            _ => SwimMsg::ProxyAck {
                from,
                to,
                target: NodeId(extra.expect("parsed above")),
                seq,
                updates,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_updates() -> Vec<SwimUpdate> {
        vec![
            SwimUpdate {
                id: NodeId(3),
                incarnation: 0,
                status: SwimStatus::Alive,
            },
            SwimUpdate {
                id: NodeId(9),
                incarnation: 2,
                status: SwimStatus::Faulty,
            },
            SwimUpdate {
                id: NodeId(12),
                incarnation: 1,
                status: SwimStatus::Suspect,
            },
        ]
    }

    fn roundtrip(m: &SwimMsg) -> SwimMsg {
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_size(), "declared size must match");
        assert!(is_swim_tag(bytes[0]));
        SwimMsg::decode(&bytes).expect("decode own encoding")
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = [
            SwimMsg::Ping {
                from: NodeId(1),
                to: NodeId(2),
                seq: 77,
                updates: sample_updates(),
            },
            SwimMsg::Ack {
                from: NodeId(2),
                to: NodeId(1),
                seq: 77,
                updates: Vec::new(),
            },
            SwimMsg::PingReq {
                from: NodeId(1),
                to: NodeId(5),
                target: NodeId(2),
                seq: 78,
                updates: sample_updates(),
            },
            SwimMsg::ProxyAck {
                from: NodeId(5),
                to: NodeId(1),
                target: NodeId(2),
                seq: 78,
                updates: vec![],
            },
            SwimMsg::SyncReq {
                from: NodeId(3),
                to: NodeId(9),
                seq: 80,
                chunk: 1,
                chunks: 3,
                updates: sample_updates(),
            },
            SwimMsg::SyncRsp {
                from: NodeId(9),
                to: NodeId(3),
                seq: 80,
                updates: vec![],
            },
            SwimMsg::SyncDigest {
                from: NodeId(3),
                to: NodeId(9),
                seq: 81,
                fingerprint: 0xDEAD_BEEF,
                known: 140,
            },
            SwimMsg::SyncDigestPush {
                from: NodeId(9),
                to: NodeId(3),
                seq: 81,
                fingerprint: 0xFEED_F00D,
                known: 141,
                updates: sample_updates(),
            },
        ];
        for m in &msgs {
            assert_eq!(&roundtrip(m), m);
        }
    }

    #[test]
    fn digest_frame_is_constant_size() {
        let d = SwimMsg::SyncDigest {
            from: NodeId(1),
            to: NodeId(2),
            seq: 7,
            fingerprint: u32::MAX,
            known: u16::MAX,
        };
        assert_eq!(d.wire_size(), SWIM_DIGEST_SIZE);
        assert_eq!(d.encode().len(), SWIM_DIGEST_SIZE);
        assert!(d.updates().is_empty());
        // Truncations and trailing garbage are rejected.
        let bytes = d.encode();
        for cut in 0..bytes.len() {
            assert!(SwimMsg::decode(&bytes[..cut]).is_err());
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert_eq!(SwimMsg::decode(&long), Err(SwimWireError::BadLength));
    }

    #[test]
    fn digest_push_carries_chunk_and_rejects_malformed() {
        let m = SwimMsg::SyncDigestPush {
            from: NodeId(9),
            to: NodeId(3),
            seq: 5,
            fingerprint: 0x1234_5678,
            known: 4,
            updates: sample_updates(),
        };
        assert_eq!(m.wire_size(), SWIM_DIGEST_SIZE + 1 + 3 * SWIM_UPDATE_SIZE);
        assert_eq!(&roundtrip(&m), &m);
        // An empty piggyback is legal (a bare mismatch echo).
        let empty = SwimMsg::SyncDigestPush {
            from: NodeId(9),
            to: NodeId(3),
            seq: 5,
            fingerprint: 0x1234_5678,
            known: 4,
            updates: vec![],
        };
        assert_eq!(empty.wire_size(), SWIM_DIGEST_SIZE + 1);
        assert_eq!(&roundtrip(&empty), &empty);
        // Truncations and trailing garbage are rejected.
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(SwimMsg::decode(&bytes[..cut]).is_err());
        }
        let mut long = bytes.to_vec();
        long.push(0);
        assert_eq!(SwimMsg::decode(&long), Err(SwimWireError::BadLength));
    }

    #[test]
    fn sync_frames_carry_a_full_chunk() {
        let entries = |n: usize| -> Vec<SwimUpdate> {
            (0..n)
                .map(|i| SwimUpdate {
                    id: NodeId(i as u16),
                    incarnation: i as u32,
                    status: if i % 3 == 0 {
                        SwimStatus::Faulty
                    } else {
                        SwimStatus::Alive
                    },
                })
                .collect()
        };
        let m = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            chunk: 0,
            chunks: 1,
            updates: entries(SWIM_MAX_FRAME_ENTRIES),
        };
        assert_eq!(
            m.wire_size(),
            SWIM_HEADER_SIZE + 2 + SWIM_MAX_FRAME_ENTRIES * SWIM_UPDATE_SIZE
        );
        assert_eq!(&roundtrip(&m), &m);
        // The default chunk size keeps the datagram inside an Ethernet
        // MTU, IP+UDP framing included.
        let mtu_frame = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            chunk: 0,
            chunks: 1,
            updates: entries(SWIM_MTU_FRAME_ENTRIES),
        };
        assert!(mtu_frame.wire_size() + 28 <= 1500);
    }

    #[test]
    fn sync_req_rejects_inconsistent_chunk_header() {
        let m = SwimMsg::SyncReq {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            chunk: 0,
            chunks: 1,
            updates: vec![],
        };
        let mut bytes = m.encode().to_vec();
        // Bytes 9..11 are (chunk, chunks): index beyond the total, and
        // a zero total, must both be rejected.
        bytes[9] = 2;
        bytes[10] = 2;
        assert_eq!(SwimMsg::decode(&bytes), Err(SwimWireError::BadLength));
        bytes[9] = 0;
        bytes[10] = 0;
        assert_eq!(SwimMsg::decode(&bytes), Err(SwimWireError::BadLength));
    }

    #[test]
    fn sizes_match_doc() {
        let ping = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            updates: sample_updates(),
        };
        assert_eq!(ping.wire_size(), 10 + 3 * 7);
        let req = SwimMsg::PingReq {
            from: NodeId(0),
            to: NodeId(1),
            target: NodeId(2),
            seq: 1,
            updates: vec![],
        };
        assert_eq!(req.wire_size(), 12);
    }

    #[test]
    fn tag_space_disjoint_from_routing() {
        // Routing tags are 1–7; SWIM must stay clear so drivers can
        // dispatch on the first byte.
        for t in 0..=7u8 {
            assert!(!is_swim_tag(t));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(SwimMsg::decode(&[]), Err(SwimWireError::Truncated));
        assert_eq!(
            SwimMsg::decode(&[200, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(SwimWireError::BadType(200))
        );
        // Valid header, bogus status code.
        let mut bytes = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(1),
            seq: 0,
            updates: vec![SwimUpdate {
                id: NodeId(2),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        }
        .encode()
        .to_vec();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert_eq!(SwimMsg::decode(&bytes), Err(SwimWireError::BadStatus(9)));
    }

    #[test]
    fn decode_rejects_truncations() {
        let m = SwimMsg::PingReq {
            from: NodeId(1),
            to: NodeId(5),
            target: NodeId(2),
            seq: 78,
            updates: sample_updates(),
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                SwimMsg::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }

    fn sample_ctx() -> TraceCtx {
        TraceCtx {
            episode: 0x0005_0003,
            origin: 5,
            hop: 2,
        }
    }

    #[test]
    fn traced_frames_roundtrip_with_context() {
        let msgs = [
            SwimMsg::Ping {
                from: NodeId(1),
                to: NodeId(2),
                seq: 77,
                updates: sample_updates(),
            },
            SwimMsg::SyncDigest {
                from: NodeId(3),
                to: NodeId(9),
                seq: 81,
                fingerprint: 0xDEAD_BEEF,
                known: 140,
            },
            SwimMsg::SyncDigestPush {
                from: NodeId(9),
                to: NodeId(3),
                seq: 81,
                fingerprint: 0xFEED_F00D,
                known: 141,
                updates: sample_updates(),
            },
            SwimMsg::SyncReq {
                from: NodeId(3),
                to: NodeId(9),
                seq: 80,
                chunk: 0,
                chunks: 1,
                updates: sample_updates(),
            },
        ];
        let ctx = sample_ctx();
        for m in &msgs {
            let bytes = m.encode_traced(Some(&ctx));
            assert_eq!(bytes.len(), m.wire_size() + TRACE_CTX_SIZE);
            assert!(is_swim_tag(bytes[0]), "flagged tag still dispatches");
            assert_eq!(bytes[0] & SWIM_TRACE_FLAG, SWIM_TRACE_FLAG);
            let (decoded, got) = SwimMsg::decode_traced(&bytes).expect("decode traced");
            assert_eq!(&decoded, m);
            assert_eq!(got, Some(ctx));
            // The ctx-oblivious decoder still reads the message.
            assert_eq!(&SwimMsg::decode(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn untraced_encode_is_bit_identical() {
        let m = SwimMsg::Ack {
            from: NodeId(2),
            to: NodeId(1),
            seq: 77,
            updates: sample_updates(),
        };
        assert_eq!(m.encode_traced(None).as_ref(), m.encode().as_ref());
        let (decoded, ctx) = SwimMsg::decode_traced(&m.encode()).unwrap();
        assert_eq!(decoded, m);
        assert_eq!(ctx, None);
    }

    #[test]
    fn traced_frames_reject_every_truncation() {
        let m = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(2),
            seq: 77,
            updates: sample_updates(),
        };
        let bytes = m.encode_traced(Some(&sample_ctx()));
        for cut in 0..bytes.len() {
            assert!(
                SwimMsg::decode_traced(&bytes[..cut]).is_err(),
                "decode of {cut}-byte traced prefix should fail"
            );
        }
        // Trailing garbage shifts the trailer window and fails too.
        let mut long = bytes.to_vec();
        long.push(0);
        assert!(SwimMsg::decode_traced(&long).is_err());
    }

    #[test]
    fn traced_trailer_rejects_bad_version() {
        let m = SwimMsg::Ping {
            from: NodeId(1),
            to: NodeId(2),
            seq: 77,
            updates: vec![],
        };
        let mut bytes = m.encode_traced(Some(&sample_ctx())).to_vec();
        let version_at = bytes.len() - TRACE_CTX_SIZE;
        bytes[version_at] = 2;
        assert_eq!(
            SwimMsg::decode_traced(&bytes),
            Err(SwimWireError::BadLength)
        );
    }
}
