//! Compact binary wire format for the SWIM gossip messages.
//!
//! Same style as `apor_linkstate::wire`: hand-rolled big-endian over
//! `bytes`, sized for the bandwidth accounting. The tag space starts at
//! [`SWIM_TAG_BASE`] = 16, disjoint from the overlay's routing tags
//! (1–7), so a driver can dispatch on the first byte of a datagram
//! without trial decoding.
//!
//! Sizes: ping/ack are `10 + 7·u` bytes for `u` piggybacked updates;
//! ping-req/proxy-ack add 2 bytes of target. With the default one ping
//! round per 2 s and ≤ 10 piggybacked updates
//! (`SwimConfig::default()`), a worst-case ping+ack exchange is
//! 2 · (80 + 28) bytes per 2 s ≈ 900 bps per node, independent of
//! `n` — the property that removes the coordinator's `Θ(n)` broadcast
//! hot spot.

use apor_quorum::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// First message-type tag used by the SWIM plane.
pub const SWIM_TAG_BASE: u8 = 16;

const T_PING: u8 = SWIM_TAG_BASE;
const T_ACK: u8 = SWIM_TAG_BASE + 1;
const T_PING_REQ: u8 = SWIM_TAG_BASE + 2;
const T_PROXY_ACK: u8 = SWIM_TAG_BASE + 3;

/// Bytes of the fixed ping/ack header (tag, from, to, seq, count).
pub const SWIM_HEADER_SIZE: usize = 10;
/// Bytes each piggybacked update adds.
pub const SWIM_UPDATE_SIZE: usize = 7;

/// Does a datagram starting with `tag` belong to the SWIM plane?
#[must_use]
pub fn is_swim_tag(tag: u8) -> bool {
    (T_PING..=T_PROXY_ACK).contains(&tag)
}

/// Decode errors (mirrors `apor_linkstate::wire::WireError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwimWireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message-type tag.
    BadType(u8),
    /// A length field disagrees with the buffer.
    BadLength,
    /// Unknown status code inside an update.
    BadStatus(u8),
}

impl fmt::Display for SwimWireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwimWireError::Truncated => write!(f, "truncated SWIM message"),
            SwimWireError::BadType(t) => write!(f, "unknown SWIM message type {t}"),
            SwimWireError::BadLength => write!(f, "inconsistent SWIM length field"),
            SwimWireError::BadStatus(s) => write!(f, "unknown SWIM status {s}"),
        }
    }
}

impl std::error::Error for SwimWireError {}

/// A member's disseminated lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwimStatus {
    /// Live (join or suspicion refutation).
    Alive,
    /// Suspected faulty; awaiting refutation or confirmation.
    Suspect,
    /// Confirmed faulty.
    Faulty,
    /// Departed voluntarily.
    Left,
}

impl SwimStatus {
    fn code(self) -> u8 {
        match self {
            SwimStatus::Alive => 0,
            SwimStatus::Suspect => 1,
            SwimStatus::Faulty => 2,
            SwimStatus::Left => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, SwimWireError> {
        match code {
            0 => Ok(SwimStatus::Alive),
            1 => Ok(SwimStatus::Suspect),
            2 => Ok(SwimStatus::Faulty),
            3 => Ok(SwimStatus::Left),
            other => Err(SwimWireError::BadStatus(other)),
        }
    }

    /// Does this status mark the member dead in the view ledger?
    /// (Suspicion is transient and never enters the ledger.)
    #[must_use]
    pub fn is_dead(self) -> bool {
        matches!(self, SwimStatus::Faulty | SwimStatus::Left)
    }
}

/// One piggybacked membership event. 7 bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwimUpdate {
    /// The member the event is about.
    pub id: NodeId,
    /// The member's incarnation the event refers to.
    pub incarnation: u32,
    /// The asserted lifecycle state.
    pub status: SwimStatus,
}

/// A SWIM-plane message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwimMsg {
    /// Direct probe; the receiver must [`SwimMsg::Ack`] with the same
    /// `seq`.
    Ping {
        /// Prober.
        from: NodeId,
        /// Probed member.
        to: NodeId,
        /// Correlates the ack (per-sender sequence).
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Reply to a [`SwimMsg::Ping`].
    Ack {
        /// The probed member (replier).
        from: NodeId,
        /// The original prober (or ping-req helper).
        to: NodeId,
        /// Echoed sequence.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Indirect-probe request: "please ping `target` for me".
    PingReq {
        /// The suspicious origin.
        from: NodeId,
        /// The helper being asked.
        to: NodeId,
        /// The silent member to probe.
        target: NodeId,
        /// The origin's sequence for this probe round.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
    /// Helper → origin: `target` answered the indirect probe.
    ProxyAck {
        /// The helper.
        from: NodeId,
        /// The origin of the ping-req.
        to: NodeId,
        /// The member that proved alive.
        target: NodeId,
        /// The origin's sequence echoed back.
        seq: u32,
        /// Piggybacked gossip.
        updates: Vec<SwimUpdate>,
    },
}

impl SwimMsg {
    /// The sender.
    #[must_use]
    pub fn from(&self) -> NodeId {
        match self {
            SwimMsg::Ping { from, .. }
            | SwimMsg::Ack { from, .. }
            | SwimMsg::PingReq { from, .. }
            | SwimMsg::ProxyAck { from, .. } => *from,
        }
    }

    /// The addressee.
    #[must_use]
    pub fn to(&self) -> NodeId {
        match self {
            SwimMsg::Ping { to, .. }
            | SwimMsg::Ack { to, .. }
            | SwimMsg::PingReq { to, .. }
            | SwimMsg::ProxyAck { to, .. } => *to,
        }
    }

    /// The piggybacked gossip.
    #[must_use]
    pub fn updates(&self) -> &[SwimUpdate] {
        match self {
            SwimMsg::Ping { updates, .. }
            | SwimMsg::Ack { updates, .. }
            | SwimMsg::PingReq { updates, .. }
            | SwimMsg::ProxyAck { updates, .. } => updates,
        }
    }

    /// Serialized size in bytes (no IP/UDP framing).
    #[must_use]
    pub fn wire_size(&self) -> usize {
        let target = match self {
            SwimMsg::Ping { .. } | SwimMsg::Ack { .. } => 0,
            SwimMsg::PingReq { .. } | SwimMsg::ProxyAck { .. } => 2,
        };
        SWIM_HEADER_SIZE + target + SWIM_UPDATE_SIZE * self.updates().len()
    }

    /// Serialize to bytes.
    ///
    /// # Panics
    /// Panics if more than 255 updates are piggybacked (the protocol
    /// caps piggybacking far below that).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(self.wire_size());
        let (tag, from, to, seq, target, updates) = match self {
            SwimMsg::Ping {
                from,
                to,
                seq,
                updates,
            } => (T_PING, from, to, seq, None, updates),
            SwimMsg::Ack {
                from,
                to,
                seq,
                updates,
            } => (T_ACK, from, to, seq, None, updates),
            SwimMsg::PingReq {
                from,
                to,
                target,
                seq,
                updates,
            } => (T_PING_REQ, from, to, seq, Some(*target), updates),
            SwimMsg::ProxyAck {
                from,
                to,
                target,
                seq,
                updates,
            } => (T_PROXY_ACK, from, to, seq, Some(*target), updates),
        };
        assert!(updates.len() <= usize::from(u8::MAX), "piggyback overflow");
        b.put_u8(tag);
        b.put_u16(from.0);
        b.put_u16(to.0);
        b.put_u32(*seq);
        if let Some(t) = target {
            b.put_u16(t.0);
        }
        b.put_u8(updates.len() as u8);
        for u in updates {
            b.put_u16(u.id.0);
            b.put_u32(u.incarnation);
            b.put_u8(u.status.code());
        }
        b.freeze()
    }

    /// Deserialize from bytes.
    ///
    /// # Errors
    /// Returns a [`SwimWireError`] on truncation, unknown tags or
    /// malformed updates. Never panics on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<SwimMsg, SwimWireError> {
        let mut b = bytes;
        if b.remaining() < SWIM_HEADER_SIZE {
            return Err(SwimWireError::Truncated);
        }
        let tag = b.get_u8();
        if !is_swim_tag(tag) {
            return Err(SwimWireError::BadType(tag));
        }
        let from = NodeId(b.get_u16());
        let to = NodeId(b.get_u16());
        let seq = b.get_u32();
        let target = if tag == T_PING_REQ || tag == T_PROXY_ACK {
            if b.remaining() < 3 {
                return Err(SwimWireError::Truncated);
            }
            Some(NodeId(b.get_u16()))
        } else {
            None
        };
        let count = usize::from(b.get_u8());
        if b.remaining() != count * SWIM_UPDATE_SIZE {
            return Err(SwimWireError::BadLength);
        }
        let mut updates = Vec::with_capacity(count);
        for _ in 0..count {
            let id = NodeId(b.get_u16());
            let incarnation = b.get_u32();
            let status = SwimStatus::from_code(b.get_u8())?;
            updates.push(SwimUpdate {
                id,
                incarnation,
                status,
            });
        }
        Ok(match tag {
            T_PING => SwimMsg::Ping {
                from,
                to,
                seq,
                updates,
            },
            T_ACK => SwimMsg::Ack {
                from,
                to,
                seq,
                updates,
            },
            T_PING_REQ => SwimMsg::PingReq {
                from,
                to,
                target: target.expect("parsed above"),
                seq,
                updates,
            },
            _ => SwimMsg::ProxyAck {
                from,
                to,
                target: target.expect("parsed above"),
                seq,
                updates,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_updates() -> Vec<SwimUpdate> {
        vec![
            SwimUpdate {
                id: NodeId(3),
                incarnation: 0,
                status: SwimStatus::Alive,
            },
            SwimUpdate {
                id: NodeId(9),
                incarnation: 2,
                status: SwimStatus::Faulty,
            },
            SwimUpdate {
                id: NodeId(12),
                incarnation: 1,
                status: SwimStatus::Suspect,
            },
        ]
    }

    fn roundtrip(m: &SwimMsg) -> SwimMsg {
        let bytes = m.encode();
        assert_eq!(bytes.len(), m.wire_size(), "declared size must match");
        assert!(is_swim_tag(bytes[0]));
        SwimMsg::decode(&bytes).expect("decode own encoding")
    }

    #[test]
    fn all_variants_roundtrip() {
        let msgs = [
            SwimMsg::Ping {
                from: NodeId(1),
                to: NodeId(2),
                seq: 77,
                updates: sample_updates(),
            },
            SwimMsg::Ack {
                from: NodeId(2),
                to: NodeId(1),
                seq: 77,
                updates: Vec::new(),
            },
            SwimMsg::PingReq {
                from: NodeId(1),
                to: NodeId(5),
                target: NodeId(2),
                seq: 78,
                updates: sample_updates(),
            },
            SwimMsg::ProxyAck {
                from: NodeId(5),
                to: NodeId(1),
                target: NodeId(2),
                seq: 78,
                updates: vec![],
            },
        ];
        for m in &msgs {
            assert_eq!(&roundtrip(m), m);
        }
    }

    #[test]
    fn sizes_match_doc() {
        let ping = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(1),
            seq: 1,
            updates: sample_updates(),
        };
        assert_eq!(ping.wire_size(), 10 + 3 * 7);
        let req = SwimMsg::PingReq {
            from: NodeId(0),
            to: NodeId(1),
            target: NodeId(2),
            seq: 1,
            updates: vec![],
        };
        assert_eq!(req.wire_size(), 12);
    }

    #[test]
    fn tag_space_disjoint_from_routing() {
        // Routing tags are 1–7; SWIM must stay clear so drivers can
        // dispatch on the first byte.
        for t in 0..=7u8 {
            assert!(!is_swim_tag(t));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(SwimMsg::decode(&[]), Err(SwimWireError::Truncated));
        assert_eq!(
            SwimMsg::decode(&[200, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
            Err(SwimWireError::BadType(200))
        );
        // Valid header, bogus status code.
        let mut bytes = SwimMsg::Ping {
            from: NodeId(0),
            to: NodeId(1),
            seq: 0,
            updates: vec![SwimUpdate {
                id: NodeId(2),
                incarnation: 0,
                status: SwimStatus::Alive,
            }],
        }
        .encode()
        .to_vec();
        let last = bytes.len() - 1;
        bytes[last] = 9;
        assert_eq!(SwimMsg::decode(&bytes), Err(SwimWireError::BadStatus(9)));
    }

    #[test]
    fn decode_rejects_truncations() {
        let m = SwimMsg::PingReq {
            from: NodeId(1),
            to: NodeId(5),
            target: NodeId(2),
            seq: 78,
            updates: sample_updates(),
        };
        let bytes = m.encode();
        for cut in 0..bytes.len() {
            assert!(
                SwimMsg::decode(&bytes[..cut]).is_err(),
                "decode of {cut}-byte prefix should fail"
            );
        }
    }
}
