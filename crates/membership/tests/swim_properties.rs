//! Property tests for the SWIM subsystem's two contracts:
//!
//! 1. **Determinism / agreement** — nodes observing the same event
//!    sequence converge to byte-identical `(version, sorted members)`
//!    views, independent of their private randomness; and the ledger is
//!    order-insensitive, so *eventually seeing the same events* suffices.
//! 2. **Wire totality** — every representable message round-trips
//!    exactly; the decoder never panics on arbitrary bytes.

use apor_membership::wire::SWIM_TRACE_FLAG;
use apor_membership::{Swim, SwimConfig, SwimMsg, SwimStatus, SwimUpdate, ViewLedger};
use apor_quorum::NodeId;
use apor_telemetry::TraceCtx;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn arb_status() -> impl Strategy<Value = SwimStatus> {
    (0u8..4).prop_map(|code| match code {
        0 => SwimStatus::Alive,
        1 => SwimStatus::Suspect,
        2 => SwimStatus::Faulty,
        _ => SwimStatus::Left,
    })
}

fn arb_update() -> impl Strategy<Value = SwimUpdate> {
    (0u16..40, 0u32..4, arb_status()).prop_map(|(id, incarnation, status)| SwimUpdate {
        id: NodeId(id),
        incarnation,
        status,
    })
}

fn arb_msg() -> impl Strategy<Value = SwimMsg> {
    let updates = || prop::collection::vec(arb_update(), 0..12);
    let ping = (0u16..40, 0u16..40, any::<u32>(), updates()).prop_map(|(f, t, seq, updates)| {
        SwimMsg::Ping {
            from: NodeId(f),
            to: NodeId(t),
            seq,
            updates,
        }
    });
    let ack = (0u16..40, 0u16..40, any::<u32>(), updates()).prop_map(|(f, t, seq, updates)| {
        SwimMsg::Ack {
            from: NodeId(f),
            to: NodeId(t),
            seq,
            updates,
        }
    });
    let ping_req = (0u16..40, 0u16..40, 0u16..40, any::<u32>(), updates()).prop_map(
        |(f, t, target, seq, updates)| SwimMsg::PingReq {
            from: NodeId(f),
            to: NodeId(t),
            target: NodeId(target),
            seq,
            updates,
        },
    );
    let proxy = (0u16..40, 0u16..40, 0u16..40, any::<u32>(), updates()).prop_map(
        |(f, t, target, seq, updates)| SwimMsg::ProxyAck {
            from: NodeId(f),
            to: NodeId(t),
            target: NodeId(target),
            seq,
            updates,
        },
    );
    prop_oneof![ping, ack, ping_req, proxy]
}

fn arb_ctx() -> impl Strategy<Value = TraceCtx> {
    (any::<u32>(), any::<u16>(), any::<u8>()).prop_map(|(episode, origin, hop)| TraceCtx {
        episode,
        origin,
        hop,
    })
}

proptest! {
    /// Two SWIM nodes observing the same event sequence converge to
    /// byte-identical sorted views, regardless of their private
    /// randomness seeds. (A node's *probing* is seed-dependent, so the
    /// shared sequence here is the inbound gossip plus one final timer
    /// tick that resolves pending suspicions; the full
    /// probing-in-the-loop agreement is exercised end-to-end by the
    /// simulator tests in `tests/membership_churn.rs`.)
    #[test]
    fn same_event_sequence_identical_views(
        msgs in prop::collection::vec(arb_msg(), 1..40),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let members: Vec<NodeId> = (0..5u16).map(NodeId).collect();
        let mut a = Swim::bootstrap(
            NodeId(0),
            SwimConfig::default().with_seed(seed_a),
            &members,
        );
        let mut b = Swim::bootstrap(
            NodeId(0),
            SwimConfig::default().with_seed(seed_b),
            &members,
        );
        let mut t = 0.0;
        for msg in &msgs {
            t += 0.4;
            a.on_message(t, msg, &mut Vec::new());
            b.on_message(t, msg, &mut Vec::new());
        }
        // One shared tick so pending suspicions confirm identically.
        let settle = t + SwimConfig::default().suspicion_timeout_s() + 1.0;
        a.on_tick(settle, &mut Vec::new());
        b.on_tick(settle, &mut Vec::new());
        prop_assert_eq!(a.current_view(), b.current_view());
        prop_assert_eq!(a.ledger(), b.ledger());
    }

    /// The view ledger is order-insensitive: any permutation of any
    /// event multiset converges to the same members and version.
    #[test]
    fn ledger_event_order_is_irrelevant(
        events in prop::collection::vec((0u16..20, 0u32..4, any::<bool>()), 0..60),
        shuffle_seed in any::<u64>(),
    ) {
        let mut forward = ViewLedger::new();
        for &(id, inc, dead) in &events {
            forward.apply(NodeId(id), inc, dead);
        }
        let mut shuffled = events.clone();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(shuffle_seed);
        shuffled.shuffle(&mut rng);
        let mut backward = ViewLedger::new();
        for &(id, inc, dead) in &shuffled {
            backward.apply(NodeId(id), inc, dead);
        }
        prop_assert_eq!(forward.version(), backward.version());
        prop_assert_eq!(forward.members(), backward.members());
    }

    /// encode → decode is the identity on every representable message.
    #[test]
    fn wire_roundtrip_identity(msg in arb_msg()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size());
        let decoded = SwimMsg::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(decoded, msg);
    }

    /// The decoder is total: arbitrary bytes never panic, and anything
    /// accepted re-encodes to a stable canonical form.
    #[test]
    fn wire_decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(msg) = SwimMsg::decode(&bytes) {
            let canon = msg.encode();
            prop_assert_eq!(SwimMsg::decode(&canon).unwrap(), msg);
        }
        // The trace-aware decoder is total on the same inputs.
        let _ = SwimMsg::decode_traced(&bytes);
    }

    /// Trace-context piggybacking: encode → decode returns both the
    /// message and the context, untraced frames stay bit-identical to
    /// the legacy format, and *every* proper prefix of a traced frame
    /// is rejected with an error (never a panic, never a silent
    /// misparse) — the truncation-safety contract of signalling the
    /// trailer in the tag byte.
    #[test]
    fn traced_wire_roundtrip_and_truncation_safety(msg in arb_msg(), ctx in arb_ctx()) {
        let plain = msg.encode();
        prop_assert_eq!(msg.encode_traced(None).as_ref(), plain.as_ref());
        let (decoded, none) = SwimMsg::decode_traced(&plain).expect("legacy frame decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(none, None);

        let traced = msg.encode_traced(Some(&ctx));
        prop_assert_eq!(traced.len(), plain.len() + apor_telemetry::trace::TRACE_CTX_SIZE);
        prop_assert_eq!(traced[0] & SWIM_TRACE_FLAG, SWIM_TRACE_FLAG);
        prop_assert!(apor_membership::wire::is_swim_tag(traced[0]));
        let (roundtripped, got) = SwimMsg::decode_traced(&traced).expect("traced frame decodes");
        prop_assert_eq!(roundtripped, msg);
        prop_assert_eq!(got, Some(ctx));
        for cut in 0..traced.len() {
            prop_assert!(
                SwimMsg::decode_traced(&traced[..cut]).is_err(),
                "{cut}-byte prefix of a traced frame must be rejected"
            );
        }
    }

    /// Gossiped suspicion of a live node never changes the view by
    /// itself — only confirmation (the suspicion timeout) or refutation
    /// moves membership, which is what keeps grids stable under probe
    /// noise.
    #[test]
    fn suspicion_alone_never_changes_views(target in 1u16..5) {
        let members: Vec<NodeId> = (0..5u16).map(NodeId).collect();
        let mut s = Swim::bootstrap(NodeId(0), SwimConfig::default(), &members);
        let before = s.current_view();
        let gossip = SwimMsg::Ping {
            from: NodeId((target % 4) + 1),
            to: NodeId(0),
            seq: 1,
            updates: vec![SwimUpdate {
                id: NodeId(target),
                incarnation: 0,
                status: SwimStatus::Suspect,
            }],
        };
        s.on_message(0.5, &gossip, &mut Vec::new());
        prop_assert_eq!(s.current_view(), before);
        prop_assert!(s.is_suspected(NodeId(target)) || target == 0);
    }
}
