//! Property tests for the anti-entropy (push-pull full-ledger sync)
//! contracts:
//!
//! 1. **Wire totality** — sync frames round-trip the codec exactly,
//!    including maximal chunks.
//! 2. **Idempotence** — replaying the same sync exchange moves nothing:
//!    the merge is a lattice join.
//! 3. **Order-insensitivity** — one full push-pull exchange converges a
//!    pair, and the converged state does not depend on which side
//!    initiated (A⇄B and B⇄A agree).
//!
//! Every exchange here is routed through `encode`/`decode`, so the
//! properties cover the wire codec, not just the in-memory state
//! machine.

use apor_membership::{Swim, SwimConfig, SwimMsg, SwimStatus, SwimUpdate};
use apor_quorum::NodeId;
use proptest::prelude::*;

fn arb_ledger_update() -> impl Strategy<Value = SwimUpdate> {
    // Ledger records only carry Alive/Faulty (suspicion is transient
    // and never synced).
    (2u16..30, 0u32..4, any::<bool>()).prop_map(|(id, incarnation, dead)| SwimUpdate {
        id: NodeId(id),
        incarnation,
        status: if dead {
            SwimStatus::Faulty
        } else {
            SwimStatus::Alive
        },
    })
}

fn arb_sync_frame() -> impl Strategy<Value = SwimMsg> {
    let updates = || prop::collection::vec(arb_ledger_update(), 0..40);
    let req = (0u16..30, 0u16..30, any::<u32>(), 0u8..8, 1u8..9, updates()).prop_map(
        |(f, t, seq, chunk, extra, updates)| SwimMsg::SyncReq {
            from: NodeId(f),
            to: NodeId(t),
            seq,
            chunk,
            // The wire requires chunk < chunks.
            chunks: chunk.saturating_add(extra),
            updates,
        },
    );
    let rsp = (0u16..30, 0u16..30, any::<u32>(), updates()).prop_map(|(f, t, seq, updates)| {
        SwimMsg::SyncRsp {
            from: NodeId(f),
            to: NodeId(t),
            seq,
            updates,
        }
    });
    prop_oneof![req, rsp]
}

/// A node's full ledger as sync records — what `SyncReq` pushes.
fn ledger_entries(s: &Swim) -> Vec<SwimUpdate> {
    s.ledger()
        .iter()
        .map(|(id, state)| SwimUpdate {
            id,
            incarnation: state.incarnation,
            status: if state.dead {
                SwimStatus::Faulty
            } else {
                SwimStatus::Alive
            },
        })
        .collect()
}

/// One full push-pull exchange, initiator → responder, with every frame
/// routed through the wire codec. `per_frame` exercises the chunked
/// path when smaller than the ledger.
fn sync_exchange_chunked(
    initiator: &mut Swim,
    responder: &mut Swim,
    t: f64,
    seq: u32,
    per_frame: usize,
) {
    let entries = ledger_entries(initiator);
    let total = entries.chunks(per_frame).count().max(1) as u8;
    let mut responses = Vec::new();
    for (i, chunk) in entries.chunks(per_frame).enumerate() {
        let req = SwimMsg::SyncReq {
            from: initiator.me(),
            to: responder.me(),
            seq,
            chunk: i as u8,
            chunks: total,
            updates: chunk.to_vec(),
        };
        let req = SwimMsg::decode(&req.encode()).expect("req roundtrip");
        responder.on_message(t, &req, &mut responses);
    }
    for (to, rsp) in responses {
        assert_eq!(to, initiator.me());
        let rsp = SwimMsg::decode(&rsp.encode()).expect("rsp roundtrip");
        initiator.on_message(t + 0.01, &rsp, &mut Vec::new());
    }
}

fn sync_exchange(initiator: &mut Swim, responder: &mut Swim, t: f64, seq: u32) {
    sync_exchange_chunked(initiator, responder, t, seq, usize::MAX);
}

/// A node at `id` that has absorbed `events` on top of a common
/// bootstrap membership.
fn diverged_node(id: u16, seed: u64, events: &[SwimUpdate]) -> Swim {
    let members: Vec<NodeId> = (0..6u16).map(NodeId).collect();
    let mut s = Swim::bootstrap(NodeId(id), SwimConfig::default().with_seed(seed), &members);
    let mut out = Vec::new();
    // Deliver as gossip on a ping so the regular merge path runs.
    for (k, chunk) in events.chunks(10).enumerate() {
        let carrier = SwimMsg::Ping {
            from: NodeId(5),
            to: NodeId(id),
            seq: k as u32,
            updates: chunk.to_vec(),
        };
        s.on_message(0.1 * k as f64, &carrier, &mut out);
    }
    s
}

proptest! {
    /// encode → decode is the identity on every representable sync
    /// frame.
    #[test]
    fn sync_frames_roundtrip_the_codec(msg in arb_sync_frame()) {
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_size());
        prop_assert_eq!(SwimMsg::decode(&bytes).expect("decode"), msg);
    }

    /// One push-pull exchange converges the pair: both ledgers equal
    /// the join of the two divergent states, and the derived
    /// `(version, members)` views agree.
    #[test]
    fn one_exchange_converges_a_divergent_pair(
        events_a in prop::collection::vec(arb_ledger_update(), 0..30),
        events_b in prop::collection::vec(arb_ledger_update(), 0..30),
    ) {
        let mut a = diverged_node(0, 11, &events_a);
        let mut b = diverged_node(1, 22, &events_b);
        sync_exchange(&mut a, &mut b, 5.0, 1);
        prop_assert_eq!(a.ledger(), b.ledger(), "push-pull must converge the pair");
        prop_assert_eq!(a.current_view(), b.current_view());
    }

    /// Replaying the identical exchange is a no-op: the merge is a
    /// lattice join, so duplicated sync frames can never corrupt state.
    #[test]
    fn sync_is_idempotent(
        events_a in prop::collection::vec(arb_ledger_update(), 0..30),
        events_b in prop::collection::vec(arb_ledger_update(), 0..30),
    ) {
        let mut a = diverged_node(0, 11, &events_a);
        let mut b = diverged_node(1, 22, &events_b);
        sync_exchange(&mut a, &mut b, 5.0, 1);
        let (la, lb) = (a.ledger().clone(), b.ledger().clone());
        sync_exchange(&mut a, &mut b, 6.0, 2);
        sync_exchange(&mut a, &mut b, 7.0, 3);
        prop_assert_eq!(a.ledger(), &la, "replay moved the initiator");
        prop_assert_eq!(b.ledger(), &lb, "replay moved the responder");
    }

    /// Chunking the push never changes the outcome: a multi-frame sync
    /// converges the pair exactly like a single-frame one, with one
    /// delta per round.
    #[test]
    fn chunked_exchange_matches_unchunked(
        events_a in prop::collection::vec(arb_ledger_update(), 0..30),
        events_b in prop::collection::vec(arb_ledger_update(), 0..30),
        per_frame in 1usize..8,
    ) {
        let mut a1 = diverged_node(0, 11, &events_a);
        let mut b1 = diverged_node(1, 22, &events_b);
        sync_exchange(&mut a1, &mut b1, 5.0, 1);
        let mut a2 = diverged_node(0, 11, &events_a);
        let mut b2 = diverged_node(1, 22, &events_b);
        sync_exchange_chunked(&mut a2, &mut b2, 5.0, 1, per_frame);
        prop_assert_eq!(a1.ledger(), a2.ledger());
        prop_assert_eq!(b1.ledger(), b2.ledger());
        prop_assert_eq!(a2.ledger(), b2.ledger(), "chunked sync must converge");
    }

    /// Who initiates is irrelevant: A⇄B and B⇄A land the pair on
    /// identical ledgers.
    #[test]
    fn exchange_direction_is_irrelevant(
        events_a in prop::collection::vec(arb_ledger_update(), 0..30),
        events_b in prop::collection::vec(arb_ledger_update(), 0..30),
    ) {
        let mut a1 = diverged_node(0, 11, &events_a);
        let mut b1 = diverged_node(1, 22, &events_b);
        sync_exchange(&mut a1, &mut b1, 5.0, 1); // A initiates
        let mut a2 = diverged_node(0, 33, &events_a);
        let mut b2 = diverged_node(1, 44, &events_b);
        sync_exchange(&mut b2, &mut a2, 5.0, 1); // B initiates
        prop_assert_eq!(a1.ledger(), a2.ledger());
        prop_assert_eq!(b1.ledger(), b2.ledger());
        prop_assert_eq!(a1.ledger(), b2.ledger());
        // And running the reverse exchange afterwards moves nothing.
        sync_exchange(&mut b1, &mut a1, 6.0, 2);
        prop_assert_eq!(a1.ledger(), a2.ledger());
    }

    /// Dead-record GC preserves partition healing inside the tombstone
    /// window: for an arbitrary death-confirmation time and an
    /// arbitrary heal time strictly within `k · sync_period_s` of it,
    /// the "dead" partner (the other side of the split) is still in the
    /// sync partner pool, the crossing round still happens, the victim
    /// still refutes with a bumped incarnation, and the pull half
    /// resurrects it on the initiator. Past the window the partner
    /// drops out of the pool — the GC doing its job.
    #[test]
    fn healing_works_anywhere_inside_the_tombstone_window(
        k in 2u32..20,
        sync_period_ds in 2u32..40,            // 0.2 s .. 4.0 s
        death_frac in 0.0f64..1.0,             // when the death lands
        heal_frac in 0.05f64..0.95,            // where in the window the heal falls
        seed in 0u64..1000,
    ) {
        let sync_period_s = f64::from(sync_period_ds) / 10.0;
        let cfg = |s: u64| SwimConfig::default().with_seed(s).with_anti_entropy(
            apor_membership::AntiEntropyConfig {
                enabled: true,
                sync_period_s,
                tombstone_gc_syncs: k,
                ..apor_membership::AntiEntropyConfig::default()
            },
        );
        let members: Vec<NodeId> = vec![NodeId(0), NodeId(1)];
        let mut a = Swim::bootstrap(NodeId(0), cfg(seed), &members);
        let mut b = Swim::bootstrap(NodeId(1), cfg(seed ^ 0xFF), &members);
        let window = f64::from(k) * sync_period_s;
        let death_at = death_frac * 100.0;
        // The split: a confirms b dead at `death_at`. (Carried on a
        // SyncRsp so the carrier's identity is not itself enrolled —
        // b must stay a's *only* possible sync partner.)
        let verdict = SwimUpdate { id: NodeId(1), incarnation: 0, status: SwimStatus::Faulty };
        let carrier = SwimMsg::SyncRsp { from: NodeId(2), to: NodeId(0), seq: 99, updates: vec![verdict] };
        a.on_message(death_at, &SwimMsg::decode(&carrier.encode()).unwrap(), &mut Vec::new());
        prop_assert!(!a.ledger().is_live(NodeId(1)));

        // The heal lands strictly inside the tombstone window, early
        // enough that the next scheduled round (≤ 1 period away) still
        // precedes expiry.
        let heal_at = death_at + heal_frac * (window - 1.5 * sync_period_s).max(0.0);
        prop_assert!(!a.is_tombstone_expired(NodeId(1), heal_at));
        // …so b is still a legal partner: drive a's scheduler until it
        // opens the crossing round.
        let mut frames: Vec<(NodeId, SwimMsg)> = Vec::new();
        let mut t = heal_at;
        let deadline = heal_at + 4.0 * sync_period_s + 1.0;
        while !frames.iter().any(|(to, _)| *to == NodeId(1)) {
            prop_assert!(t < deadline, "no sync round opened towards the dead partner");
            a.on_tick(t, &mut frames);
            t += sync_period_s / 4.0;
        }
        // Deliver the full cascade: digest → mismatch echo → full push
        // → delta (plus slack), every frame through the wire codec.
        for _ in 0..5 {
            let mut replies = Vec::new();
            for (to, m) in frames.drain(..) {
                let m = SwimMsg::decode(&m.encode()).unwrap();
                if to == NodeId(1) {
                    b.on_message(t, &m, &mut replies);
                } else if to == NodeId(0) {
                    a.on_message(t, &m, &mut replies);
                }
            }
            // Re-address: replies from b go to a and vice versa.
            frames = replies;
            t += 0.01;
        }
        prop_assert!(
            b.incarnation() > 0,
            "the declared-dead node must have refuted (learned its own death verdict)"
        );
        prop_assert!(
            a.ledger().is_live(NodeId(1)),
            "the refutation must resurrect the member on the initiator"
        );
        // Past the window (fresh death, no heal), the partner expires.
        prop_assert!(a.is_tombstone_expired(NodeId(1), death_at + window) || a.ledger().is_live(NodeId(1)));
    }
}
