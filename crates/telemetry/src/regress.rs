//! The perf-trajectory regression gate.
//!
//! The bench harness writes each run's timings to `BENCH_<suite>.json`
//! (median ns/iter plus dispersion per benchmark id). This module
//! parses those reports and compares a current run against a
//! checked-in baseline:
//!
//! * Only ids matching the configured prefixes are gated (default: the
//!   paper's hot kernels — round-two, best-hop and row-merge — whose
//!   regressions would invalidate the scaling claims).
//! * When both reports contain the [`CALIBRATION_ID`] benchmark (a
//!   fixed pure-integer workload), current medians are scaled by
//!   `baseline_calibration / current_calibration` first, so a slower
//!   or faster CI machine does not read as a kernel change.
//! * A gated id regresses when its normalized median exceeds the
//!   baseline median by more than `threshold` (default 25 %).
//!
//! The `regress` binary wraps [`compare`] for CI: exit 0 on pass,
//! 1 on regression, 2 on operational errors (unreadable files, no
//! gated benchmarks matched — a silent-pass guard).

use crate::json::{self, Value};

/// Benchmark id of the calibration workload used to normalize across
/// machines.
pub const CALIBRATION_ID: &str = "calibration/spin";

/// Id prefixes gated by default: the round-two / best-hop / merge
/// kernels, in both the dense-vs-sparse sweep and the stand-alone
/// suites.
pub const DEFAULT_KERNEL_PREFIXES: &[&str] = &[
    "dense_vs_sparse/merge",
    "dense_vs_sparse/best_hop",
    "dense_vs_sparse/round_two",
    "best_one_hop",
    "round_two_full",
    "round_two_tick",
];

/// Default regression threshold: fail above +25 % median.
pub const DEFAULT_THRESHOLD: f64 = 0.25;

/// One benchmark's timings from a `BENCH_*.json` report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark id (`group/function/param`).
    pub id: String,
    /// Median ns per iteration across sample slices.
    pub median_ns: f64,
    /// Median absolute deviation of the slice medians, ns.
    pub mad_ns: f64,
    /// Sample slices measured.
    pub samples: u64,
    /// Total iterations timed.
    pub iters: u64,
}

/// A parsed `BENCH_<suite>.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (the bench target, e.g. `kernels`).
    pub suite: String,
    /// Per-benchmark records, in run order.
    pub benches: Vec<BenchRecord>,
}

impl BenchReport {
    /// Find a record by exact id.
    #[must_use]
    pub fn find(&self, id: &str) -> Option<&BenchRecord> {
        self.benches.iter().find(|b| b.id == id)
    }
}

/// Parse a `BENCH_*.json` document.
///
/// # Errors
/// Returns a message when the document is not JSON or lacks the
/// required fields.
pub fn parse_report(text: &str) -> Result<BenchReport, String> {
    let v = json::parse(text)?;
    let suite = v
        .get("suite")
        .and_then(Value::as_str)
        .ok_or("report missing \"suite\"")?
        .to_string();
    let benches = v
        .get("benches")
        .and_then(Value::as_array)
        .ok_or("report missing \"benches\"")?;
    let mut records = Vec::with_capacity(benches.len());
    for b in benches {
        let id = b
            .get("id")
            .and_then(Value::as_str)
            .ok_or("bench missing \"id\"")?
            .to_string();
        let median_ns = b
            .get("median_ns")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("bench {id} missing \"median_ns\""))?;
        let mad_ns = b.get("mad_ns").and_then(Value::as_f64).unwrap_or(0.0);
        let samples = b.get("samples").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        let iters = b.get("iters").and_then(Value::as_f64).unwrap_or(0.0) as u64;
        records.push(BenchRecord {
            id,
            median_ns,
            mad_ns,
            samples,
            iters,
        });
    }
    Ok(BenchReport {
        suite,
        benches: records,
    })
}

/// Gate configuration.
#[derive(Debug, Clone)]
pub struct RegressConfig {
    /// Fail when `normalized_current > baseline * (1 + threshold)`.
    pub threshold: f64,
    /// Only ids starting with one of these prefixes are gated.
    pub prefixes: Vec<String>,
    /// Normalize by the calibration benchmark when both reports have
    /// it.
    pub calibrate: bool,
}

impl Default for RegressConfig {
    fn default() -> Self {
        RegressConfig {
            threshold: DEFAULT_THRESHOLD,
            prefixes: DEFAULT_KERNEL_PREFIXES
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            calibrate: true,
        }
    }
}

/// One gated benchmark's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Benchmark id.
    pub id: String,
    /// Baseline median, ns.
    pub baseline_ns: f64,
    /// Current median after calibration scaling, ns.
    pub current_ns: f64,
    /// `current_ns / baseline_ns` (1.0 = unchanged; 2.0 = 2× slower).
    pub ratio: f64,
    /// Did this id trip the threshold?
    pub regressed: bool,
}

/// The gate's full verdict.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// Every gated comparison, in baseline order.
    pub compared: Vec<Comparison>,
    /// The calibration scale applied to current medians (1.0 when
    /// disabled or unavailable).
    pub scale: f64,
}

impl Verdict {
    /// The comparisons that tripped the threshold.
    #[must_use]
    pub fn regressions(&self) -> Vec<&Comparison> {
        self.compared.iter().filter(|c| c.regressed).collect()
    }

    /// Did the gate pass?
    #[must_use]
    pub fn passed(&self) -> bool {
        self.compared.iter().all(|c| !c.regressed)
    }
}

/// Compare `current` against `baseline` under `cfg`.
///
/// Benchmarks present in only one report are skipped (renames should
/// update the baseline in the same PR); the binary treats an empty
/// comparison set as an operational error so drift cannot silently
/// pass.
#[must_use]
pub fn compare(baseline: &BenchReport, current: &BenchReport, cfg: &RegressConfig) -> Verdict {
    let scale = if cfg.calibrate {
        match (baseline.find(CALIBRATION_ID), current.find(CALIBRATION_ID)) {
            (Some(b), Some(c)) if b.median_ns > 0.0 && c.median_ns > 0.0 => {
                b.median_ns / c.median_ns
            }
            _ => 1.0,
        }
    } else {
        1.0
    };
    let gated = |id: &str| cfg.prefixes.iter().any(|p| id.starts_with(p.as_str()));
    let mut compared = Vec::new();
    for base in baseline.benches.iter().filter(|b| gated(&b.id)) {
        let Some(cur) = current.find(&base.id) else {
            continue;
        };
        if base.median_ns <= 0.0 {
            continue;
        }
        let current_ns = cur.median_ns * scale;
        let ratio = current_ns / base.median_ns;
        compared.push(Comparison {
            id: base.id.clone(),
            baseline_ns: base.median_ns,
            current_ns,
            ratio,
            regressed: ratio > 1.0 + cfg.threshold,
        });
    }
    Verdict { compared, scale }
}

/// Render a verdict as a GitHub-flavored markdown delta table — one
/// row per gated benchmark with baseline/current medians and the
/// ratio, so a baseline refresh is reviewable at a glance instead of
/// a bare exit code. The `current` column is calibration-normalized
/// (the applied scale is stated under the table when it is not 1.0).
#[must_use]
pub fn summary_markdown(verdict: &Verdict) -> String {
    let mut out = String::new();
    out.push_str(if verdict.passed() {
        "### Perf trajectory: pass\n\n"
    } else {
        "### Perf trajectory: REGRESSED\n\n"
    });
    out.push_str("| benchmark | baseline (ns) | current (ns) | ratio | status |\n");
    out.push_str("|---|---:|---:|---:|---|\n");
    for c in &verdict.compared {
        let status = if c.regressed {
            "regressed"
        } else if c.ratio < 1.0 {
            "improved"
        } else {
            "ok"
        };
        out.push_str(&format!(
            "| `{}` | {:.0} | {:.0} | {:.2}× | {status} |\n",
            c.id, c.baseline_ns, c.current_ns, c.ratio
        ));
    }
    if verdict.compared.is_empty() {
        out.push_str("| _no gated benchmarks matched_ | | | | |\n");
    }
    if (verdict.scale - 1.0).abs() > 1e-12 {
        out.push_str(&format!(
            "\nCurrent medians scaled by {:.3} (calibration normalization).\n",
            verdict.scale
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(suite: &str, entries: &[(&str, f64)]) -> BenchReport {
        BenchReport {
            suite: suite.to_string(),
            benches: entries
                .iter()
                .map(|(id, median)| BenchRecord {
                    id: (*id).to_string(),
                    median_ns: *median,
                    mad_ns: median * 0.05,
                    samples: 16,
                    iters: 1000,
                })
                .collect(),
        }
    }

    fn kernel_entries(scale: f64) -> Vec<(&'static str, f64)> {
        vec![
            ("calibration/spin", 1000.0),
            ("dense_vs_sparse/merge_sparse/400", 5_000.0 * scale),
            ("dense_vs_sparse/best_hop_sparse/400", 700.0 * scale),
            ("dense_vs_sparse/round_two_sparse/400", 90_000.0 * scale),
            ("wire/encode/400", 10_000.0 * scale), // not gated
        ]
    }

    #[test]
    fn identical_reports_pass() {
        let base = report("kernels", &kernel_entries(1.0));
        let verdict = compare(&base, &base, &RegressConfig::default());
        assert!(verdict.passed());
        assert_eq!(verdict.compared.len(), 3, "only gated kernels compared");
        assert_eq!(verdict.scale, 1.0);
    }

    #[test]
    fn synthetic_two_x_slowdown_fails() {
        let base = report("kernels", &kernel_entries(1.0));
        let slow = report("kernels", &kernel_entries(2.0));
        let verdict = compare(&base, &slow, &RegressConfig::default());
        assert!(!verdict.passed());
        assert_eq!(verdict.regressions().len(), 3, "every gated kernel trips");
        for c in verdict.regressions() {
            assert!((c.ratio - 2.0).abs() < 1e-9, "{}: ratio {}", c.id, c.ratio);
        }
    }

    #[test]
    fn within_threshold_noise_passes() {
        let base = report("kernels", &kernel_entries(1.0));
        let noisy = report("kernels", &kernel_entries(1.2));
        assert!(compare(&base, &noisy, &RegressConfig::default()).passed());
    }

    #[test]
    fn ungated_regressions_do_not_fail() {
        let base = report("kernels", &kernel_entries(1.0));
        let mut slow_wire = report("kernels", &kernel_entries(1.0));
        slow_wire
            .benches
            .iter_mut()
            .find(|b| b.id.starts_with("wire/"))
            .unwrap()
            .median_ns *= 10.0;
        assert!(compare(&base, &slow_wire, &RegressConfig::default()).passed());
    }

    #[test]
    fn calibration_normalizes_machine_speed() {
        let base = report("kernels", &kernel_entries(1.0));
        // A machine uniformly 2× slower: calibration *and* kernels all
        // doubled. Normalization cancels it out.
        let mut slower_machine = report("kernels", &kernel_entries(2.0));
        slower_machine
            .benches
            .iter_mut()
            .find(|b| b.id == CALIBRATION_ID)
            .unwrap()
            .median_ns = 2000.0;
        let verdict = compare(&base, &slower_machine, &RegressConfig::default());
        assert!((verdict.scale - 0.5).abs() < 1e-9);
        assert!(verdict.passed(), "uniform slowdown is not a regression");
        // Without calibration the same reports would fail.
        let cfg = RegressConfig {
            calibrate: false,
            ..RegressConfig::default()
        };
        assert!(!compare(&base, &slower_machine, &cfg).passed());
    }

    #[test]
    fn summary_markdown_lists_every_gated_bench() {
        let base = report("kernels", &kernel_entries(1.0));
        let current = {
            let mut c = report("kernels", &kernel_entries(1.0));
            // One kernel 2× slower, one 2× faster.
            c.benches[1].median_ns *= 2.0;
            c.benches[2].median_ns *= 0.5;
            c
        };
        let verdict = compare(&base, &current, &RegressConfig::default());
        let md = summary_markdown(&verdict);
        assert!(md.contains("REGRESSED"));
        assert!(md
            .contains("| `dense_vs_sparse/merge_sparse/400` | 5000 | 10000 | 2.00× | regressed |"));
        assert!(
            md.contains("| `dense_vs_sparse/best_hop_sparse/400` | 700 | 350 | 0.50× | improved |")
        );
        assert!(
            md.contains("| `dense_vs_sparse/round_two_sparse/400` | 90000 | 90000 | 1.00× | ok |")
        );
        assert!(!md.contains("wire/encode"), "ungated ids stay out");
        assert!(
            !md.contains("scaled by"),
            "no calibration note at scale 1.0"
        );

        let pass = compare(&base, &base, &RegressConfig::default());
        assert!(summary_markdown(&pass).contains("Perf trajectory: pass"));
    }

    #[test]
    fn report_roundtrips_through_parser() {
        let text = r#"{
  "suite": "kernels",
  "benches": [
    {"id": "dense_vs_sparse/merge_sparse/400", "median_ns": 5000.0, "mad_ns": 12.5, "samples": 16, "iters": 9000},
    {"id": "calibration/spin", "median_ns": 1000, "mad_ns": 1, "samples": 16, "iters": 90000}
  ]
}"#;
        let r = parse_report(text).unwrap();
        assert_eq!(r.suite, "kernels");
        assert_eq!(r.benches.len(), 2);
        assert_eq!(r.find(CALIBRATION_ID).unwrap().median_ns, 1000.0);
        assert_eq!(r.benches[0].iters, 9000);
        assert!(parse_report("{\"benches\": []}").is_err(), "missing suite");
        assert!(parse_report("not json").is_err());
    }
}
