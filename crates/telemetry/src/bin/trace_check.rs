//! CI validator for exported Chrome trace-event JSON files.
//!
//! ```text
//! trace_check results/partition_trace.json [results/churn_trace.json ...]
//!             [--min-spans N] [--require-kind NAME ...]
//! ```
//!
//! Each file must parse as a Chrome trace-event document and pass the
//! span-nesting check (within one `(pid, tid)` lane, complete events
//! either nest or are disjoint — Perfetto renders overlap nonsense
//! silently, so CI refuses it instead). `--min-spans` additionally
//! requires at least N complete events per file, and each
//! `--require-kind` (repeatable) requires a span with that exact name
//! somewhere in the file — the episode-completeness gate.
//!
//! Exit codes: 0 = all files valid, 1 = a file failed validation,
//! 2 = operational error (bad args, no files, unreadable file).

use apor_telemetry::trace::validate_chrome_trace;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut files = Vec::new();
    let mut min_spans = 0usize;
    let mut required: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--min-spans" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => min_spans = n,
                None => return fail("--min-spans needs a non-negative integer"),
            },
            "--require-kind" => match args.next() {
                Some(name) => required.push(name),
                None => return fail("--require-kind needs a span name"),
            },
            other if other.starts_with("--") => {
                return fail(&format!("unknown argument '{other}'"));
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return fail("usage: trace_check <trace.json> [...] [--min-spans N] [--require-kind NAME]");
    }
    let mut bad = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        match validate_chrome_trace(&text) {
            Ok(stats) => {
                let mut errors = Vec::new();
                if stats.spans < min_spans {
                    errors.push(format!(
                        "only {} complete spans, need at least {min_spans}",
                        stats.spans
                    ));
                }
                for name in &required {
                    if !stats.names.iter().any(|n| n == name) {
                        errors.push(format!("missing required span kind '{name}'"));
                    }
                }
                if errors.is_empty() {
                    println!(
                        "{path}: ok — {} spans, {} lanes, {} episodes",
                        stats.spans, stats.lanes, stats.episodes
                    );
                } else {
                    for e in &errors {
                        eprintln!("{path}: {e}");
                    }
                    bad += 1;
                }
            }
            Err(e) => {
                eprintln!("{path}: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("trace_check: {bad} of {} file(s) failed", files.len());
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
