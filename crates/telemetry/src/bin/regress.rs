//! CI gate comparing a bench run against the checked-in baseline.
//!
//! ```text
//! regress --baseline bench/baselines/BENCH_kernels.json \
//!         --current BENCH_kernels.json \
//!         [--threshold 0.25] [--filter prefix,prefix,...] [--no-calibration]
//! ```
//!
//! Exit codes: 0 = pass, 1 = regression beyond threshold, 2 =
//! operational error (bad args, unreadable/unparsable report, or zero
//! gated benchmarks matched — the silent-pass guard).
//!
//! When `$GITHUB_STEP_SUMMARY` is set (as it is in GitHub Actions),
//! the per-benchmark delta table is also appended there as markdown,
//! so the comparison is reviewable from the run's summary page even
//! when the gate passes.

use apor_telemetry::regress::{compare, parse_report, summary_markdown, RegressConfig};
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("regress: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut baseline_path = None;
    let mut current_path = None;
    let mut cfg = RegressConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => baseline_path = args.next(),
            "--current" => current_path = args.next(),
            "--threshold" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t > 0.0 => cfg.threshold = t,
                _ => return fail("--threshold needs a positive number"),
            },
            "--filter" => match args.next() {
                Some(list) => {
                    cfg.prefixes = list.split(',').map(str::to_string).collect();
                }
                None => return fail("--filter needs a comma-separated prefix list"),
            },
            "--no-calibration" => cfg.calibrate = false,
            other => return fail(&format!("unknown argument '{other}'")),
        }
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        return fail("usage: regress --baseline <file> --current <file>");
    };
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|text| parse_report(&text).map_err(|e| format!("{path}: {e}")))
    };
    let baseline = match read(&baseline_path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let current = match read(&current_path) {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let verdict = compare(&baseline, &current, &cfg);
    if verdict.compared.is_empty() {
        return fail("no gated benchmarks matched both reports — baseline drift?");
    }
    println!(
        "perf trajectory: {} gated benchmarks, calibration scale {:.3}, threshold +{:.0}%",
        verdict.compared.len(),
        verdict.scale,
        cfg.threshold * 100.0
    );
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "benchmark", "baseline ns", "current ns", "ratio"
    );
    for c in &verdict.compared {
        println!(
            "{:<44} {:>12.0} {:>12.0} {:>7.2}x{}",
            c.id,
            c.baseline_ns,
            c.current_ns,
            c.ratio,
            if c.regressed { "  << REGRESSED" } else { "" }
        );
    }
    if let Ok(summary_path) = std::env::var("GITHUB_STEP_SUMMARY") {
        if !summary_path.is_empty() {
            use std::io::Write;
            let table = summary_markdown(&verdict);
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&summary_path)
                .and_then(|mut f| f.write_all(table.as_bytes()));
            if let Err(e) = appended {
                // The table is advisory; the exit code is the gate.
                eprintln!("regress: cannot append step summary to {summary_path}: {e}");
            }
        }
    }
    if verdict.passed() {
        println!("perf trajectory: PASS");
        ExitCode::SUCCESS
    } else {
        println!(
            "perf trajectory: FAIL — {} kernel(s) regressed beyond +{:.0}%",
            verdict.regressions().len(),
            cfg.threshold * 100.0
        );
        ExitCode::FAILURE
    }
}
