//! Causal convergence tracing: episode spans, the per-node flight
//! recorder, wire trace contexts and the Chrome-trace exporter.
//!
//! The metrics registry ([`crate::metrics`]) answers *how often* and
//! *how long on aggregate*; the journal answers *what happened*. This
//! module answers *why was this slow*: every convergence episode — a
//! crash, a partition, a heal — gets a stable **episode id**, and each
//! component records [`Span`]s against it (suspicion windows, gossip
//! hops, view installs, row remaps, re-probe bursts), so the time from
//! failure to routes-restored decomposes into a causal tree instead of
//! one opaque total.
//!
//! Three pieces:
//!
//! * [`TraceCtx`] — the 8-byte wire context (episode, origin, hop
//!   count) piggybacked on SWIM and probe-batch frames so causality
//!   crosses node boundaries without any clock agreement.
//! * [`Tracer`] — a bounded, lock-free per-node span ring acting as a
//!   flight recorder. Off by default ([`Tracer::disabled`]): the hot
//!   paths pay one relaxed atomic load and nothing else.
//! * [`chrome_trace_json`] / [`validate_chrome_trace`] — export of an
//!   episode as Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`) and the schema + span-nesting validator CI
//!   runs over every exported file.
//!
//! See `docs/OBSERVABILITY.md` for the full three-layer story and the
//! export schemas.

use crate::json::{self, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Wire trace context
// ---------------------------------------------------------------------

/// Serialized size of a [`TraceCtx`] block: version byte, episode id
/// (u32), origin (u16), hop count (u8).
pub const TRACE_CTX_SIZE: usize = 8;

/// Version byte opening every wire trace-context block.
pub const TRACE_CTX_VERSION: u8 = 1;

/// The compact causal context piggybacked on wire frames.
///
/// Deliberately *not* a span id: receivers derive their own spans and
/// correlate purely on `(episode, origin, hop)`, so no cross-node span
/// table or clock agreement is needed. The episode id itself is
/// derivable independently by every node from the suspected member and
/// incarnation ([`episode_id`]), which is what makes the gossip
/// wavefront of one failure converge on one id without coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// The episode this frame participates in (see [`episode_id`]).
    pub episode: u32,
    /// The node that opened the episode (first suspector).
    pub origin: u16,
    /// Gossip hops traversed so far (0 at the origin; saturating).
    pub hop: u8,
}

impl TraceCtx {
    /// Serialize to the fixed 8-byte wire block.
    #[must_use]
    pub fn encode(&self) -> [u8; TRACE_CTX_SIZE] {
        let e = self.episode.to_be_bytes();
        let o = self.origin.to_be_bytes();
        [
            TRACE_CTX_VERSION,
            e[0],
            e[1],
            e[2],
            e[3],
            o[0],
            o[1],
            self.hop,
        ]
    }

    /// Parse a wire block. `None` unless `bytes` is exactly
    /// [`TRACE_CTX_SIZE`] bytes opening with [`TRACE_CTX_VERSION`].
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Option<TraceCtx> {
        if bytes.len() != TRACE_CTX_SIZE || bytes[0] != TRACE_CTX_VERSION {
            return None;
        }
        Some(TraceCtx {
            episode: u32::from_be_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]),
            origin: u16::from_be_bytes([bytes[5], bytes[6]]),
            hop: bytes[7],
        })
    }

    /// The context to forward: one more hop traversed.
    #[must_use]
    pub fn next_hop(self) -> TraceCtx {
        TraceCtx {
            hop: self.hop.saturating_add(1),
            ..self
        }
    }
}

/// The deterministic episode id for a suspicion of `member` at
/// `incarnation`: every node that learns of the same failure — by its
/// own probe timeout or by gossip — computes the same id with no
/// coordination. Incarnations are folded to 16 bits; an episode id is a
/// correlation key inside one experiment run, not a forever-unique
/// name.
#[must_use]
pub fn episode_id(member: u16, incarnation: u32) -> u32 {
    (u32::from(member) << 16) | (incarnation & 0xFFFF)
}

/// The reserved span id of an episode's synthesized root span. Span ids
/// minted by [`Tracer::record`] carry the node in their upper half and
/// never set the top bit, so the root id can be derived by any
/// assembler without a registry.
#[must_use]
pub fn episode_root_span(episode: u32) -> u64 {
    (1 << 63) | u64::from(episode)
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/// What a span measures. The kind implies the component
/// ([`SpanKind::component`]); keeping the set closed is what lets a
/// span pack into the flight recorder's fixed atomic words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// Synthesized root covering one whole convergence episode.
    Episode = 0,
    /// The failure/partition instant (synthesized by the experiment,
    /// which is the only party that knows ground truth).
    Failure = 1,
    /// A suspicion window: raised → confirmed on one node.
    Suspicion = 2,
    /// The instant a suspicion expired into a confirmed failure.
    Confirm = 3,
    /// One gossip-wavefront arrival: a frame carrying the episode's
    /// [`TraceCtx`] reached this node (`aux` = hop count).
    GossipHop = 4,
    /// A membership view install on one node (`aux` = view version).
    ViewInstall = 5,
    /// The incremental row remap riding a view install (`aux` = rows
    /// carried across).
    Remap = 6,
    /// The first post-install probe burst re-measuring links
    /// (`aux` = probe actions emitted).
    Reprobe = 7,
    /// An anti-entropy sync round opened while the episode was hot
    /// (`aux` = partner).
    SyncRound = 8,
    /// The first row import into the rebuilt router after an install
    /// (`aux` = origin of the row).
    RowImport = 9,
    /// Routing restored, as measured by the experiment (synthesized).
    RoutesRestored = 10,
}

impl SpanKind {
    const ALL: [SpanKind; 11] = [
        SpanKind::Episode,
        SpanKind::Failure,
        SpanKind::Suspicion,
        SpanKind::Confirm,
        SpanKind::GossipHop,
        SpanKind::ViewInstall,
        SpanKind::Remap,
        SpanKind::Reprobe,
        SpanKind::SyncRound,
        SpanKind::RowImport,
        SpanKind::RoutesRestored,
    ];

    /// Stable numeric code (the flight-recorder packing).
    #[must_use]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`SpanKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<SpanKind> {
        Self::ALL.get(usize::from(code)).copied()
    }

    /// Human-readable name (the Chrome trace event name).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Episode => "episode",
            SpanKind::Failure => "failure",
            SpanKind::Suspicion => "suspicion",
            SpanKind::Confirm => "confirm",
            SpanKind::GossipHop => "gossip_hop",
            SpanKind::ViewInstall => "view_install",
            SpanKind::Remap => "remap",
            SpanKind::Reprobe => "reprobe",
            SpanKind::SyncRound => "sync_round",
            SpanKind::RowImport => "row_import",
            SpanKind::RoutesRestored => "routes_restored",
        }
    }

    /// The subsystem that records this kind (the Chrome trace
    /// category).
    #[must_use]
    pub fn component(self) -> &'static str {
        match self {
            SpanKind::Episode | SpanKind::Failure | SpanKind::RoutesRestored => "experiment",
            SpanKind::Suspicion | SpanKind::Confirm | SpanKind::GossipHop | SpanKind::SyncRound => {
                "membership"
            }
            SpanKind::ViewInstall | SpanKind::Remap => "overlay",
            SpanKind::Reprobe | SpanKind::RowImport => "routing",
        }
    }
}

/// One recorded span: a `[start_s, end_s]` interval of simulated time
/// on one node, attributed to an episode. Instant events are spans with
/// `start_s == end_s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Unique id (node in the upper 32 bits; 0 = never recorded).
    pub id: u64,
    /// Parent span id (0 = root / unknown; cross-node causality is
    /// carried by the episode id, not parent links).
    pub parent: u64,
    /// The episode this span belongs to (0 = outside any episode).
    pub episode: u32,
    /// The node that recorded it.
    pub node: u32,
    /// What was measured.
    pub kind: SpanKind,
    /// Kind-specific payload (hop count, view version, row count…).
    pub aux: u32,
    /// Simulated start time, seconds.
    pub start_s: f64,
    /// Simulated end time, seconds.
    pub end_s: f64,
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

const SLOT_WORDS: usize = 6;

/// One ring slot: a seqlock sequence word plus the packed span. Writers
/// bump `seq` to odd, store the words, bump back to even; readers
/// discard any slot whose sequence was odd or moved while reading.
/// Everything is plain atomics — the crate forbids `unsafe`.
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn pack(span: &Span) -> [u64; SLOT_WORDS] {
    [
        span.id,
        span.parent,
        (u64::from(span.episode) << 32) | u64::from(span.node),
        (u64::from(span.kind.code()) << 32) | u64::from(span.aux),
        span.start_s.to_bits(),
        span.end_s.to_bits(),
    ]
}

fn unpack(words: &[u64; SLOT_WORDS]) -> Option<Span> {
    let kind = SpanKind::from_code((words[3] >> 32) as u8)?;
    Some(Span {
        id: words[0],
        parent: words[1],
        episode: (words[2] >> 32) as u32,
        node: (words[2] & 0xFFFF_FFFF) as u32,
        kind,
        aux: (words[3] & 0xFFFF_FFFF) as u32,
        start_s: f64::from_bits(words[4]),
        end_s: f64::from_bits(words[5]),
    })
}

struct TracerInner {
    enabled: AtomicBool,
    node: u32,
    /// Spans recorded over the tracer's lifetime (ring write cursor).
    recorded: AtomicUsize,
    /// Local span id counter (folded into the minted id's lower half).
    next_id: AtomicU64,
    slots: Box<[Slot]>,
}

/// A per-node flight recorder: the last `capacity` spans, recordable
/// from any thread without locks, readable at any time. Cloning shares
/// the ring (same pattern as [`crate::Telemetry`]).
///
/// The disabled handle ([`Tracer::disabled`], capacity 0) is the
/// default everywhere: `record` is a single relaxed load and an early
/// return, which is what keeps tracing inside the perf-trajectory gate
/// when nothing asked for it.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("node", &self.inner.node)
            .field("enabled", &self.enabled())
            .field("capacity", &self.inner.slots.len())
            .finish()
    }
}

impl Tracer {
    /// A live tracer for `node` keeping the last `capacity` spans.
    /// Capacity 0 is the disabled tracer.
    #[must_use]
    pub fn new(node: u32, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(capacity > 0),
                node,
                recorded: AtomicUsize::new(0),
                next_id: AtomicU64::new(1),
                slots: (0..capacity).map(|_| Slot::new()).collect(),
            }),
        }
    }

    /// The no-op tracer: records nothing, costs one relaxed load.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer::new(u32::MAX, 0)
    }

    /// Is this tracer recording? The hot-path guard.
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// The node this tracer records for.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.inner.node
    }

    /// Record a complete span and return its minted id (0 when
    /// disabled). Sim time is explicit, so spans are recorded once, at
    /// close, with both endpoints known.
    pub fn record(
        &self,
        kind: SpanKind,
        episode: u32,
        parent: u64,
        aux: u32,
        start_s: f64,
        end_s: f64,
    ) -> u64 {
        if !self.enabled() {
            return 0;
        }
        let local = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let id = (u64::from(self.inner.node) << 32) | (local & 0xFFFF_FFFF);
        let span = Span {
            id,
            parent,
            episode,
            node: self.inner.node,
            kind,
            aux,
            start_s,
            end_s,
        };
        let at = self.inner.recorded.fetch_add(1, Ordering::AcqRel);
        let slot = &self.inner.slots[at % self.inner.slots.len()];
        slot.seq.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        for (w, v) in slot.words.iter().zip(pack(&span)) {
            w.store(v, Ordering::Relaxed);
        }
        slot.seq.fetch_add(1, Ordering::Release); // even: published
        id
    }

    /// Record an instant event (`start == end`).
    pub fn instant(&self, kind: SpanKind, episode: u32, parent: u64, aux: u32, t: f64) -> u64 {
        self.record(kind, episode, parent, aux, t, t)
    }

    /// Spans recorded over the tracer's lifetime (including any the
    /// ring has since overwritten).
    #[must_use]
    pub fn recorded(&self) -> usize {
        self.inner.recorded.load(Ordering::Acquire)
    }

    /// The ring contents, oldest first. Slots torn by a concurrent
    /// writer are skipped rather than misread.
    #[must_use]
    pub fn recent(&self) -> Vec<Span> {
        let cap = self.inner.slots.len();
        if cap == 0 {
            return Vec::new();
        }
        let total = self.recorded().min(usize::MAX - cap);
        let held = total.min(cap);
        let first = total - held;
        let mut spans = Vec::with_capacity(held);
        for i in first..total {
            let slot = &self.inner.slots[i % cap];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 % 2 == 1 {
                continue;
            }
            let mut words = [0u64; SLOT_WORDS];
            for (dst, w) in words.iter_mut().zip(slot.words.iter()) {
                *dst = w.load(Ordering::Relaxed);
            }
            if slot.seq.load(Ordering::Acquire) != s1 {
                continue;
            }
            if let Some(span) = unpack(&words) {
                if span.id != 0 {
                    spans.push(span);
                }
            }
        }
        spans
    }

    /// The flight-recorder dump: the last `max` spans, formatted one
    /// per line for a failure report.
    #[must_use]
    pub fn dump(&self, max: usize) -> String {
        let spans = self.recent();
        let skip = spans.len().saturating_sub(max);
        let mut out = String::new();
        for span in &spans[skip..] {
            out.push_str(&format_span_line(span));
            out.push('\n');
        }
        out
    }
}

fn format_span_line(s: &Span) -> String {
    format!(
        "  [node {:>4}] {:>9.3}s..{:<9.3}s {:<15} ep={:#010x} aux={} id={:#x} parent={:#x}",
        s.node,
        s.start_s,
        s.end_s,
        s.kind.label(),
        s.episode,
        s.aux,
        s.id,
        s.parent,
    )
}

/// Flight-recorder dump hook: prints the last `per_node` spans of every
/// involved node to stderr **iff the surrounding code panics** (an
/// experiment assertion failing), so a red convergence study ships the
/// causal evidence with the failure message. Arm it after a run,
/// before the assertions:
///
/// ```
/// use apor_telemetry::trace::{DumpOnPanic, Span};
/// let spans: Vec<Span> = Vec::new(); // collected from the fleet
/// let _dump = DumpOnPanic::new("partition", spans, 20);
/// // assert!(...);
/// ```
pub struct DumpOnPanic {
    label: String,
    spans: Vec<Span>,
    per_node: usize,
}

impl DumpOnPanic {
    /// Arm the hook over `spans` (any order; grouped by node on dump).
    #[must_use]
    pub fn new(label: &str, spans: Vec<Span>, per_node: usize) -> DumpOnPanic {
        DumpOnPanic {
            label: label.to_string(),
            spans,
            per_node,
        }
    }
}

impl Drop for DumpOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "{}",
                flight_recorder_report(&self.label, &self.spans, self.per_node)
            );
        }
    }
}

/// The text of a flight-recorder dump: per involved node, its last
/// `per_node` spans in time order.
#[must_use]
pub fn flight_recorder_report(label: &str, spans: &[Span], per_node: usize) -> String {
    let mut nodes: Vec<u32> = spans.iter().map(|s| s.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut out = format!(
        "=== flight recorder [{label}]: {} spans on {} nodes ===\n",
        spans.len(),
        nodes.len()
    );
    for node in nodes {
        let mut mine: Vec<&Span> = spans.iter().filter(|s| s.node == node).collect();
        mine.sort_by(|a, b| a.end_s.total_cmp(&b.end_s).then(a.id.cmp(&b.id)));
        let skip = mine.len().saturating_sub(per_node);
        for span in &mine[skip..] {
            out.push_str(&format_span_line(span));
            out.push('\n');
        }
    }
    out.push_str("=== end flight recorder ===");
    out
}

// ---------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------

/// Serialize spans as Chrome trace-event JSON (the `traceEvents`
/// array format): load the file in [Perfetto](https://ui.perfetto.dev)
/// or `chrome://tracing`. Episodes become processes, nodes become
/// threads, spans become complete (`"ph":"X"`) events with
/// microsecond timestamps; process/thread name metadata is emitted so
/// the UI labels lanes meaningfully. Output is deterministic: events
/// are sorted by (start, episode, node, id).
#[must_use]
pub fn chrome_trace_json(spans: &[Span]) -> String {
    let mut sorted: Vec<&Span> = spans.iter().collect();
    sorted.sort_by(|a, b| {
        a.start_s
            .total_cmp(&b.start_s)
            .then(a.episode.cmp(&b.episode))
            .then(a.node.cmp(&b.node))
            .then(a.id.cmp(&b.id))
    });
    let mut lanes: Vec<(u32, u32)> = sorted.iter().map(|s| (s.episode, s.node)).collect();
    lanes.sort_unstable();
    lanes.dedup();
    let mut events: Vec<String> = Vec::with_capacity(sorted.len() + 2 * lanes.len());
    let mut episodes_named: Vec<u32> = Vec::new();
    for &(episode, node) in &lanes {
        if !episodes_named.contains(&episode) {
            episodes_named.push(episode);
            events.push(format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{episode},\"tid\":0,\
                 \"args\":{{\"name\":\"episode {episode:#010x} (member {}, inc {})\"}}}}",
                episode >> 16,
                episode & 0xFFFF
            ));
        }
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{episode},\"tid\":{node},\
             \"args\":{{\"name\":\"node {node}\"}}}}"
        ));
    }
    for s in sorted {
        let ts_us = s.start_s * 1e6;
        let dur_us = (s.end_s - s.start_s).max(0.0) * 1e6;
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\
             \"pid\":{},\"tid\":{},\"args\":{{\"id\":\"{:#x}\",\"parent\":\"{:#x}\",\"aux\":{},\
             \"start_s\":{:.6},\"end_s\":{:.6}}}}}",
            s.kind.label(),
            s.kind.component(),
            s.episode,
            s.node,
            s.id,
            s.parent,
            s.aux,
            s.start_s,
            s.end_s,
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// What [`validate_chrome_trace`] measured about a well-formed file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Complete (`"ph":"X"`) span events.
    pub spans: usize,
    /// Distinct (pid, tid) lanes carrying spans.
    pub lanes: usize,
    /// Distinct episodes (pids).
    pub episodes: usize,
    /// Distinct span names present, in first-seen order (lets CI
    /// require specific episode phases to exist in an export).
    pub names: Vec<String>,
}

/// Validate Chrome trace-event JSON: parses the document, checks the
/// event schema (required fields and types) and checks that the span
/// events on every (pid, tid) lane are properly nested — each span is
/// either disjoint from or fully contained in any span it overlaps.
/// This is the structural invariant the causal-tree reading depends
/// on, and the check CI runs over every exported trace.
///
/// # Errors
/// A description of the first schema violation or nesting conflict.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    /// One (pid, tid) lane's spans as `(ts, dur)` pairs.
    type Lane = ((i64, i64), Vec<(f64, f64)>);
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing top-level \"traceEvents\" array".to_string())?;
    let mut lanes: Vec<Lane> = Vec::new();
    let mut spans = 0usize;
    let mut names: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let field = |name: &str| {
            ev.get(name)
                .ok_or_else(|| format!("event {i}: missing \"{name}\""))
        };
        let num = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("event {i}: \"{name}\" is not a number"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: \"ph\" is not a string"))?;
        match ph {
            "M" => continue, // metadata: name records, no timing schema
            "X" => {}
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
        let Some(name) = field("name")?.as_str() else {
            return Err(format!("event {i}: \"name\" is not a string"));
        };
        if !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
        let ts = num("ts")?;
        let dur = num("dur")?;
        let pid = num("pid")?;
        let tid = num("tid")?;
        if !ts.is_finite() || ts < 0.0 {
            return Err(format!(
                "event {i}: \"ts\" must be finite and >= 0, got {ts}"
            ));
        }
        if !dur.is_finite() || dur < 0.0 {
            return Err(format!(
                "event {i}: \"dur\" must be finite and >= 0, got {dur}"
            ));
        }
        spans += 1;
        #[allow(clippy::cast_possible_truncation)]
        let key = (pid as i64, tid as i64);
        match lanes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push((ts, dur)),
            None => lanes.push((key, vec![(ts, dur)])),
        }
    }
    // Nesting: per lane, sweeping spans by (start asc, dur desc) with a
    // stack of open end-times — a span starting inside an open span
    // must also end inside it.
    const EPS: f64 = 1e-6;
    for (key, lane) in &mut lanes {
        lane.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut open: Vec<f64> = Vec::new();
        for &(ts, dur) in lane.iter() {
            while open.last().is_some_and(|&end| ts >= end - EPS) {
                open.pop();
            }
            if let Some(&end) = open.last() {
                if ts + dur > end + EPS {
                    return Err(format!(
                        "lane (pid {}, tid {}): span [{ts}, {}] partially overlaps \
                         an open span ending at {end} — not nested",
                        key.0,
                        key.1,
                        ts + dur
                    ));
                }
            }
            open.push(ts + dur);
        }
    }
    let mut pids: Vec<i64> = lanes.iter().map(|(k, _)| k.0).collect();
    pids.sort_unstable();
    pids.dedup();
    Ok(TraceStats {
        spans,
        lanes: lanes.len(),
        episodes: pids.len(),
        names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: SpanKind, episode: u32, node: u32, start: f64, end: f64) -> Span {
        Span {
            id: (u64::from(node) << 32) | u64::from(episode),
            parent: 0,
            episode,
            node,
            kind,
            aux: 0,
            start_s: start,
            end_s: end,
        }
    }

    #[test]
    fn trace_ctx_roundtrips_and_rejects_junk() {
        let ctx = TraceCtx {
            episode: 0xDEAD_BEEF,
            origin: 513,
            hop: 7,
        };
        let bytes = ctx.encode();
        assert_eq!(bytes.len(), TRACE_CTX_SIZE);
        assert_eq!(TraceCtx::decode(&bytes), Some(ctx));
        assert_eq!(TraceCtx::decode(&bytes[..7]), None);
        let mut bad = bytes;
        bad[0] = 9;
        assert_eq!(TraceCtx::decode(&bad), None);
        assert_eq!(ctx.next_hop().hop, 8);
        assert_eq!(
            TraceCtx {
                hop: u8::MAX,
                ..ctx
            }
            .next_hop()
            .hop,
            u8::MAX
        );
    }

    #[test]
    fn episode_ids_are_deterministic_and_distinct() {
        assert_eq!(episode_id(3, 1), episode_id(3, 1));
        assert_ne!(episode_id(3, 1), episode_id(3, 2));
        assert_ne!(episode_id(3, 1), episode_id(4, 1));
        // Root span ids never collide with minted ones (top bit).
        assert_eq!(episode_root_span(5) >> 63, 1);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert_eq!(t.record(SpanKind::Suspicion, 1, 0, 0, 0.0, 1.0), 0);
        assert!(t.recent().is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_keeps_newest_spans_in_order() {
        let t = Tracer::new(7, 4);
        for i in 0..6u32 {
            t.record(SpanKind::GossipHop, 1, 0, i, f64::from(i), f64::from(i));
        }
        let spans = t.recent();
        assert_eq!(t.recorded(), 6);
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.aux).collect::<Vec<_>>(),
            vec![2, 3, 4, 5],
            "ring keeps the newest spans, oldest first"
        );
        assert!(spans.iter().all(|s| s.node == 7));
        // Minted ids carry the node in the upper half.
        assert!(spans.iter().all(|s| s.id >> 32 == 7));
    }

    #[test]
    fn span_fields_roundtrip_through_the_ring() {
        let t = Tracer::new(3, 8);
        let parent = t.record(SpanKind::Suspicion, 42, 0, 9, 1.25, 3.5);
        let child = t.record(SpanKind::Confirm, 42, parent, 9, 3.5, 3.5);
        let spans = t.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::Suspicion);
        assert_eq!(spans[0].start_s, 1.25);
        assert_eq!(spans[0].end_s, 3.5);
        assert_eq!(spans[1].parent, parent);
        assert_eq!(spans[1].id, child);
        assert_eq!(spans[1].episode, 42);
    }

    #[test]
    fn ring_is_shared_across_clones() {
        let t = Tracer::new(1, 8);
        let u = t.clone();
        t.record(SpanKind::Remap, 1, 0, 0, 0.0, 0.0);
        assert_eq!(u.recent().len(), 1);
    }

    #[test]
    fn chrome_export_validates_and_counts() {
        let spans = vec![
            span(SpanKind::Episode, 1, 0, 0.0, 10.0),
            span(SpanKind::Suspicion, 1, 2, 1.0, 3.0),
            span(SpanKind::Confirm, 1, 2, 3.0, 3.0),
            span(SpanKind::ViewInstall, 1, 2, 4.0, 4.0),
        ];
        let text = chrome_trace_json(&spans);
        let stats = validate_chrome_trace(&text).expect("valid export");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.episodes, 1);
        assert_eq!(stats.lanes, 2); // nodes 0 and 2
    }

    #[test]
    fn validator_rejects_partial_overlap() {
        // Two spans on one lane overlapping but neither containing the
        // other: [0, 5] and [3, 8].
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"X","ts":0.0,"dur":5.0,"pid":1,"tid":1},
            {"name":"b","ph":"X","ts":3.0,"dur":5.0,"pid":1,"tid":1}
        ]}"#;
        let err = validate_chrome_trace(text).unwrap_err();
        assert!(err.contains("not nested"), "{err}");
    }

    #[test]
    fn validator_accepts_nesting_and_disjoint_lanes() {
        let text = r#"{"traceEvents":[
            {"name":"outer","ph":"X","ts":0.0,"dur":10.0,"pid":1,"tid":1},
            {"name":"inner","ph":"X","ts":2.0,"dur":3.0,"pid":1,"tid":1},
            {"name":"later","ph":"X","ts":6.0,"dur":4.0,"pid":1,"tid":1},
            {"name":"other","ph":"X","ts":3.0,"dur":9.0,"pid":1,"tid":2}
        ]}"#;
        let stats = validate_chrome_trace(text).expect("nested + disjoint is fine");
        assert_eq!(stats.spans, 4);
        assert_eq!(stats.lanes, 2);
    }

    #[test]
    fn validator_rejects_schema_violations() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\":1}").is_err());
        let missing_dur = r#"{"traceEvents":[{"name":"a","ph":"X","ts":0.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(missing_dur)
            .unwrap_err()
            .contains("dur"));
        let bad_ts =
            r#"{"traceEvents":[{"name":"a","ph":"X","ts":-4.0,"dur":1.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad_ts).unwrap_err().contains("ts"));
        let bad_ph =
            r#"{"traceEvents":[{"name":"a","ph":"B","ts":0.0,"dur":1.0,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad_ph).unwrap_err().contains("phase"));
    }

    #[test]
    fn flight_recorder_report_groups_by_node() {
        let spans = vec![
            span(SpanKind::Suspicion, 1, 5, 1.0, 2.0),
            span(SpanKind::Confirm, 1, 5, 2.0, 2.0),
            span(SpanKind::ViewInstall, 1, 9, 3.0, 3.0),
        ];
        let report = flight_recorder_report("unit", &spans, 10);
        assert!(report.contains("3 spans on 2 nodes"));
        assert!(report.contains("suspicion"));
        assert!(report.contains("node    9"));
    }

    #[test]
    fn span_kind_codes_roundtrip() {
        for kind in SpanKind::ALL {
            assert_eq!(SpanKind::from_code(kind.code()), Some(kind));
            assert!(!kind.label().is_empty());
            assert!(!kind.component().is_empty());
        }
        assert_eq!(SpanKind::from_code(200), None);
    }
}
