//! The fleet telemetry plane: a zero-external-dependency metrics
//! registry, a bounded event journal, and the bench regression gate.
//!
//! The paper's claims are quantitative — `O(n√n)` state, `O(n√n)` probe
//! traffic, near-optimal one-hop routing — so every layer of the repro
//! needs a cheap, uniform way to *measure* instead of assert. This
//! crate is that plane, deliberately at the bottom of the dependency
//! graph (it depends on nothing, not even the vendored stand-ins) so
//! netsim, membership, linkstate, routing and the overlay can all share
//! one registry.
//!
//! # Adding a metric
//!
//! Get a per-node handle once (usually at construction) and keep the
//! returned cell; incrementing it is the hot path and never locks:
//!
//! ```
//! use apor_telemetry::Telemetry;
//!
//! let t = Telemetry::new(3); // node id 3
//! let sent = t.counter("membership", "probe_sent");
//! let rtt = t.histogram("membership", "probe_rtt_us");
//! sent.inc();
//! rtt.observe(1_250);
//! let snap = t.snapshot();
//! assert_eq!(snap.counter(3, "membership", "probe_sent"), Some(1));
//! ```
//!
//! Handles are cheap clones of shared cells: a component keeps its
//! `Counter` in a field, and the registry sees every increment without
//! further lookups. Registration (`counter`/`gauge`/`histogram`) takes
//! a lock and should happen at setup time, not per packet.
//!
//! # Overhead guarantees
//!
//! * **Increment path**: one relaxed atomic add on a plain `u64` cell —
//!   no locks, no allocation, no branching beyond the add. Histograms
//!   add a leading-zeros bucket index (one instruction) and four such
//!   adds.
//! * **Journal path**: a severity check (one relaxed atomic load)
//!   before anything else; events below the journal's threshold cost
//!   exactly that load. Recorded events take a short mutex on a bounded
//!   ring — the journal is for protocol-rate events (suspicions, view
//!   installs, syncs), not per-packet data.
//! * **Disabled handles** ([`Telemetry::disabled`]) still count — so
//!   protocol code can read its own counters for control decisions —
//!   but export nothing: [`Telemetry::snapshot`] is empty and the
//!   journal records zero events.
//!
//! # Export formats
//!
//! [`Snapshot`] is the export unit: a point-in-time copy of every
//! registered metric, keyed `(node, component, name)`. Snapshots
//! [`merge`](Snapshot::merge) across a fleet (counters/gauges/histogram
//! buckets sum, maxima max — the operation is associative and
//! commutative, so fold order is irrelevant) and export two ways:
//!
//! * [`Snapshot::to_json`] — one `{"node":…,"component":…,…}` object
//!   per metric; histograms carry `count/sum/max` plus estimated
//!   `p50/p90/p99` (log₂-bucket upper bounds) and the sparse bucket
//!   list.
//! * [`Snapshot::to_csv`] — the same table flattened to
//!   `node,component,name,kind,value,count,sum,max,p50,p90,p99` rows.
//!
//! # The perf trajectory
//!
//! The bench harness (vendored criterion) writes each run's timings to
//! `BENCH_<suite>.json`; [`regress`] parses those reports and compares
//! a run against the checked-in baseline, failing (nonzero exit from
//! the `regress` binary) on >25 % median regression in the round-two /
//! best-hop / merge kernels. See [`regress::compare`] for the
//! calibration-based normalization that makes the comparison meaningful
//! across machines.
//!
//! # Causal tracing
//!
//! The third observability layer (after metrics and the journal) is
//! the [`trace`] module: per-node span flight recorders, the wire
//! [`trace::TraceCtx`] that carries episode identity across nodes, and
//! the Chrome trace-event exporter/validator behind the
//! `results/*_trace.json` files. The three layers, their export
//! schemas and the Perfetto workflow are documented in
//! `docs/OBSERVABILITY.md` at the repository root.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod metrics;
pub mod regress;
pub mod snapshot;
pub mod trace;

pub use journal::{DropCause, Event, EventKind, Severity};
pub use metrics::{Counter, Gauge, Histogram, Telemetry};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot};
pub use trace::{
    chrome_trace_json, validate_chrome_trace, DumpOnPanic, Span, SpanKind, TraceCtx, Tracer,
};
