//! The bounded event journal: timestamped structured protocol events.
//!
//! Convergence studies read the journal to reconstruct *why* something
//! happened — which suspicion raised, which sync pushed, which packets
//! a partition swallowed — instead of inferring it from endpoint
//! counters. The ring is bounded: when full, the oldest event is
//! overwritten and a drop counter ticks, so a long run can never grow
//! memory without bound.

use std::collections::VecDeque;

/// Event importance, ordered `Debug < Info < Warn`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-rate detail (per-packet queueing).
    Debug,
    /// Protocol-rate milestones (view installs, syncs).
    Info,
    /// Anomalies worth surfacing (drops, suspicions).
    Warn,
}

impl Severity {
    /// Stable lowercase label (JSON export).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
        }
    }
}

/// Why the simulated network dropped a packet. The distinction is the
/// point: a queue-overflow drop indicts the receiver's capacity, a
/// link-down drop indicts the failure schedule (partition or outage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// The failure schedule had the link (or an endpoint) down —
    /// partitions and outages land here.
    LinkDown,
    /// The latency matrix marks the pair unreachable (no path exists).
    Unreachable,
    /// Bernoulli packet loss on an up link.
    Loss,
    /// The receiver's bounded ingress queue was full.
    QueueOverflow,
    /// The receiver was down at delivery time (crashed mid-flight).
    ReceiverDown,
}

impl DropCause {
    /// Stable lowercase label (metric names, JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DropCause::LinkDown => "link_down",
            DropCause::Unreachable => "unreachable",
            DropCause::Loss => "loss",
            DropCause::QueueOverflow => "queue_overflow",
            DropCause::ReceiverDown => "receiver_down",
        }
    }
}

/// What happened. Variants cover the protocol milestones every layer
/// reports; ids are raw node indices. The derived total order (with
/// [`Event`]'s time and node) is what makes fleet-merged event lists
/// deterministic regardless of merge order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A liveness probe left for `to`.
    ProbeSent {
        /// Probed node.
        to: u32,
    },
    /// A probe ack arrived from `from`.
    ProbeAcked {
        /// Acking node.
        from: u32,
    },
    /// Suspicion opened about `about`.
    SuspicionRaised {
        /// Suspected node.
        about: u32,
    },
    /// Suspicion about `about` was refuted in time.
    SuspicionRefuted {
        /// Cleared node.
        about: u32,
    },
    /// A membership view was installed.
    ViewInstalled {
        /// View version.
        version: u64,
        /// Members in the view.
        members: u32,
    },
    /// A link-state row from `origin` was merged into a store.
    RowMerged {
        /// Row origin.
        origin: u32,
    },
    /// A link-state row from `origin` was evicted (staleness pressure).
    RowEvicted {
        /// Row origin.
        origin: u32,
    },
    /// Anti-entropy digest matched: full transfer skipped with `peer`.
    SyncSkip {
        /// Sync partner.
        peer: u32,
    },
    /// Anti-entropy pushed a full ledger to `peer`.
    SyncPush {
        /// Sync partner.
        peer: u32,
    },
    /// The network dropped a packet bound for `to`.
    PacketDropped {
        /// Intended receiver.
        to: u32,
        /// Why it was dropped.
        cause: DropCause,
    },
    /// A packet bound for `to` entered the in-flight queue.
    PacketQueued {
        /// Receiver.
        to: u32,
    },
}

/// One journal entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulation (or wall) time, seconds.
    pub t: f64,
    /// Importance.
    pub severity: Severity,
    /// Reporting node.
    pub node: u32,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// The canonical total order merged event lists are sorted by:
    /// `(time, node, severity, kind)`. Time compares via
    /// [`f64::total_cmp`], so the order is total even for exotic
    /// timestamps and a fleet merge is deterministic regardless of the
    /// order snapshots were folded in.
    #[must_use]
    pub fn canonical_cmp(&self, other: &Event) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then_with(|| self.node.cmp(&other.node))
            .then_with(|| self.severity.cmp(&other.severity))
            .then_with(|| self.kind.cmp(&other.kind))
    }
}

/// The ring buffer behind a [`Telemetry`](crate::Telemetry) handle's
/// journal.
#[derive(Debug)]
pub(crate) struct JournalInner {
    capacity: usize,
    min_severity: Severity,
    ring: VecDeque<Event>,
    dropped: u64,
}

impl JournalInner {
    pub(crate) fn new(capacity: usize, min_severity: Severity) -> Self {
        JournalInner {
            capacity,
            min_severity,
            ring: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    pub(crate) fn min_severity(&self) -> Severity {
        self.min_severity
    }

    pub(crate) fn set_min_severity(&mut self, min: Severity) {
        self.min_severity = min;
    }

    pub(crate) fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.ring.len() > capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
    }

    pub(crate) fn record(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
    }

    pub(crate) fn events(&self) -> Vec<Event> {
        self.ring.iter().copied().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn severity_orders() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warn);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let t = Telemetry::new(0)
            .with_journal_capacity(3)
            .with_journal_severity(Severity::Debug);
        for i in 0..5u32 {
            t.event(
                f64::from(i),
                Severity::Info,
                EventKind::PacketQueued { to: i },
            );
        }
        let events = t.events();
        assert_eq!(events.len(), 3, "bounded at capacity");
        // Oldest two were overwritten; the survivors are 2, 3, 4 in order.
        let tos: Vec<u32> = events
            .iter()
            .map(|e| match e.kind {
                EventKind::PacketQueued { to } => to,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(tos, vec![2, 3, 4]);
        assert_eq!(t.events_dropped(), 2);
    }

    #[test]
    fn severity_filter_drops_below_threshold() {
        let t = Telemetry::new(0).with_journal_severity(Severity::Warn);
        t.event(0.0, Severity::Debug, EventKind::PacketQueued { to: 1 });
        t.event(0.0, Severity::Info, EventKind::SyncSkip { peer: 1 });
        t.event(
            0.0,
            Severity::Warn,
            EventKind::PacketDropped {
                to: 1,
                cause: DropCause::LinkDown,
            },
        );
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].severity, Severity::Warn);
        // Filtered events are not "dropped" — they were never recorded.
        assert_eq!(t.events_dropped(), 0);
    }

    #[test]
    fn drop_cause_labels_are_distinct() {
        let all = [
            DropCause::LinkDown,
            DropCause::Unreachable,
            DropCause::Loss,
            DropCause::QueueOverflow,
            DropCause::ReceiverDown,
        ];
        let mut labels: Vec<&str> = all.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
