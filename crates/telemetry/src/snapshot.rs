//! Point-in-time metric snapshots: fleet merge and JSON/CSV export.

use crate::journal::Event;
use crate::metrics::{bucket_upper_bound, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Cap on the journal events a merged snapshot retains. Merging keeps
/// the *newest* events in the canonical order
/// ([`Event::canonical_cmp`]); keeping the greatest `k` of a totally
/// ordered multiset is associative and commutative, so the merge
/// monoid laws survive the bound.
pub const MERGED_EVENT_CAP: usize = 4096;

/// A frozen histogram: counts per log₂ bucket plus exact count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
    /// Per-bucket observation counts (see
    /// [`bucket_index`](crate::metrics::bucket_index)).
    pub buckets: Box<[u64; HISTOGRAM_BUCKETS]>,
}

impl HistogramSnapshot {
    /// An empty histogram.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: Box::new([0; HISTOGRAM_BUCKETS]),
        }
    }

    /// Estimated quantile `q` (0 ≤ q ≤ 1): the upper bound of the
    /// bucket holding the ⌈q·count⌉-th observation, capped at the true
    /// max. 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(b);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonic count.
    Counter(u64),
    /// A point-in-time value.
    Gauge(u64),
    /// A distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of a registry (or a whole fleet's, after
/// merging), keyed `(node, component, name)`, plus the journal events
/// the registry held at snapshot time (canonically ordered).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<(u32, String, String), MetricValue>,
    events: Vec<Event>,
}

impl Snapshot {
    /// Insert (or overwrite) one metric.
    pub fn insert(&mut self, node: u32, component: &str, name: &str, value: MetricValue) {
        self.entries
            .insert((node, component.to_string(), name.to_string()), value);
    }

    /// Replace the snapshot's journal events. They are brought into the
    /// canonical `(time, node, severity, kind)` order and bounded at
    /// [`MERGED_EVENT_CAP`] (newest kept) so any snapshot — single-node
    /// or fleet-merged — presents events identically.
    pub fn set_events(&mut self, mut events: Vec<Event>) {
        events.sort_by(Event::canonical_cmp);
        if events.len() > MERGED_EVENT_CAP {
            events.drain(..events.len() - MERGED_EVENT_CAP);
        }
        self.events = events;
    }

    /// The journal events, in canonical `(time, node, …)` order.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// No metrics at all?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterate `(node, component, name, value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str, &str, &MetricValue)> {
        self.entries
            .iter()
            .map(|((node, c, n), v)| (*node, c.as_str(), n.as_str(), v))
    }

    /// The counter `node/component/name`, if present (and a counter).
    #[must_use]
    pub fn counter(&self, node: u32, component: &str, name: &str) -> Option<u64> {
        match self
            .entries
            .get(&(node, component.to_string(), name.to_string()))
        {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `node/component/name`, if present (and a gauge).
    #[must_use]
    pub fn gauge(&self, node: u32, component: &str, name: &str) -> Option<u64> {
        match self
            .entries
            .get(&(node, component.to_string(), name.to_string()))
        {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `node/component/name`, if present (and one).
    #[must_use]
    pub fn histogram(&self, node: u32, component: &str, name: &str) -> Option<&HistogramSnapshot> {
        match self
            .entries
            .get(&(node, component.to_string(), name.to_string()))
        {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of the counter `component/name` across all nodes.
    #[must_use]
    pub fn counter_total(&self, component: &str, name: &str) -> u64 {
        self.iter()
            .filter(|(_, c, n, _)| *c == component && *n == name)
            .filter_map(|(_, _, _, v)| match v {
                MetricValue::Counter(x) => Some(*x),
                _ => None,
            })
            .fold(0u64, u64::saturating_add)
    }

    /// The histogram `component/name` merged across all nodes — the
    /// fleet-wide distribution (counts/buckets sum, maxima take the
    /// max). Empty when no node recorded it.
    #[must_use]
    pub fn histogram_total(&self, component: &str, name: &str) -> HistogramSnapshot {
        let mut total = HistogramSnapshot::empty();
        for (_, c, n, v) in self.iter() {
            if c == component && n == name {
                if let MetricValue::Histogram(h) = v {
                    total.merge(h);
                }
            }
        }
        total
    }

    /// The nodes whose counter `component/name` is nonzero, ascending.
    #[must_use]
    pub fn nodes_with_nonzero(&self, component: &str, name: &str) -> Vec<u32> {
        self.iter()
            .filter(|(_, c, n, v)| {
                *c == component && *n == name && matches!(v, MetricValue::Counter(x) if *x > 0)
            })
            .map(|(node, _, _, _)| node)
            .collect()
    }

    /// Fold `other` into `self`. Counters, gauges and histogram buckets
    /// sum (saturating); maxima take the max; journal events union in
    /// canonical order, keeping the newest [`MERGED_EVENT_CAP`]. The
    /// operation is associative and commutative, so fleets can merge in
    /// any order.
    ///
    /// # Panics
    /// Panics when the same key holds different metric kinds — that is
    /// a registration bug, not a runtime condition.
    pub fn merge(&mut self, other: &Snapshot) {
        if !other.events.is_empty() {
            let mut merged = Vec::with_capacity(self.events.len() + other.events.len());
            merged.extend_from_slice(&self.events);
            merged.extend_from_slice(&other.events);
            self.set_events(merged);
        }
        for (key, value) in &other.entries {
            match self.entries.get_mut(key) {
                None => {
                    self.entries.insert(key.clone(), value.clone());
                }
                Some(mine) => match (mine, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    _ => panic!(
                        "metric {}/{}/{} registered with conflicting kinds",
                        key.0, key.1, key.2
                    ),
                },
            }
        }
    }

    /// Export as JSON: `{"metrics":[…], "events":[…]}` with one object
    /// per metric and one per journal event. Histogram buckets are
    /// sparse `[index, count]` pairs; events carry
    /// `{"t", "severity", "node", "kind"}` with the kind rendered as
    /// its debug form (a stable, human-readable discriminant plus
    /// fields). The `events` array is omitted when empty, which keeps
    /// the PR-4 schema unchanged for event-less snapshots.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": [");
        let mut first = true;
        for (node, component, name, value) in self.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"node\": {node}, \"component\": \"{component}\", \"name\": \"{name}\", \
                 \"kind\": \"{}\"",
                value.kind()
            );
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = write!(out, ", \"value\": {v}}}");
                }
                MetricValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        ", \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \
                         \"p99\": {}, \"buckets\": [",
                        h.count,
                        h.sum,
                        h.max,
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99)
                    );
                    let mut first_b = true;
                    for (i, &b) in h.buckets.iter().enumerate() {
                        if b > 0 {
                            if !first_b {
                                out.push_str(", ");
                            }
                            first_b = false;
                            let _ = write!(out, "[{i}, {b}]");
                        }
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  ]");
        if !self.events.is_empty() {
            out.push_str(",\n  \"events\": [");
            let mut first = true;
            for e in &self.events {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(
                    out,
                    "\n    {{\"t\": {}, \"severity\": \"{}\", \"node\": {}, \"kind\": \"{}\"}}",
                    e.t,
                    e.severity.label(),
                    e.node,
                    crate::json::escape(&format!("{:?}", e.kind))
                );
            }
            out.push_str("\n  ]");
        }
        out.push_str("\n}\n");
        out
    }

    /// Export as CSV with header
    /// `node,component,name,kind,value,count,sum,max,p50,p90,p99`
    /// (histogram-only columns empty for counters/gauges and vice
    /// versa).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("node,component,name,kind,value,count,sum,max,p50,p90,p99\n");
        for (node, component, name, value) in self.iter() {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{node},{component},{name},{},{v},,,,,,", value.kind());
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{node},{component},{name},histogram,,{},{},{},{},{},{}",
                        h.count,
                        h.sum,
                        h.max,
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99)
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::Telemetry;

    fn sample() -> Snapshot {
        let t = Telemetry::new(2);
        t.counter("membership", "probe_sent").add(11);
        t.gauge("routing", "rec_seen_bytes").set(640);
        let h = t.histogram("netsim", "deliver_latency_us");
        h.observe(100);
        h.observe(100_000);
        t.snapshot()
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counter(2, "membership", "probe_sent"), Some(22));
        assert_eq!(a.gauge(2, "routing", "rec_seen_bytes"), Some(1280));
        let h = a.histogram(2, "netsim", "deliver_latency_us").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 100_000);
    }

    #[test]
    fn merge_keeps_distinct_nodes_distinct() {
        let ta = Telemetry::new(0);
        ta.counter("m", "x").add(1);
        let tb = Telemetry::new(1);
        tb.counter("m", "x").add(5);
        let mut merged = ta.snapshot();
        merged.merge(&tb.snapshot());
        assert_eq!(merged.counter(0, "m", "x"), Some(1));
        assert_eq!(merged.counter(1, "m", "x"), Some(5));
        assert_eq!(merged.counter_total("m", "x"), 6);
        assert_eq!(merged.nodes_with_nonzero("m", "x"), vec![0, 1]);
    }

    #[test]
    fn json_export_parses_back() {
        let snap = sample();
        let v = json::parse(&snap.to_json()).expect("valid JSON");
        let metrics = v.get("metrics").and_then(Value::as_array).unwrap();
        assert_eq!(metrics.len(), 3);
        let probe = metrics
            .iter()
            .find(|m| m.get("name").and_then(Value::as_str) == Some("probe_sent"))
            .unwrap();
        assert_eq!(probe.get("value").and_then(Value::as_f64), Some(11.0));
        assert_eq!(probe.get("node").and_then(Value::as_f64), Some(2.0));
        let hist = metrics
            .iter()
            .find(|m| m.get("kind").and_then(Value::as_str) == Some("histogram"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_f64), Some(2.0));
        assert_eq!(hist.get("max").and_then(Value::as_f64), Some(100_000.0));
    }

    #[test]
    fn csv_export_has_fixed_header_and_one_row_per_metric() {
        let snap = sample();
        let csv = snap.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "node,component,name,kind,value,count,sum,max,p50,p90,p99"
        );
        assert_eq!(lines.count(), 3);
        assert!(csv.contains("2,membership,probe_sent,counter,11,,,,,,"));
    }

    #[test]
    fn histogram_total_merges_across_nodes() {
        let ta = Telemetry::new(0);
        ta.histogram("netsim", "deliver_latency_us").observe(10);
        let tb = Telemetry::new(1);
        tb.histogram("netsim", "deliver_latency_us").observe(1000);
        let mut snap = ta.snapshot();
        snap.merge(&tb.snapshot());
        let total = snap.histogram_total("netsim", "deliver_latency_us");
        assert_eq!(total.count, 2);
        assert_eq!(total.max, 1000);
        assert_eq!(snap.histogram_total("netsim", "no_such").count, 0);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = HistogramSnapshot::empty();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
    }
}
