//! The per-node metrics registry and its lock-free instrument handles.

use crate::journal::{Event, EventKind, JournalInner, Severity};
use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log₂ histogram buckets: bucket 0 holds zeros, bucket `k`
/// (1 ≤ k ≤ 64) holds values in `[2^(k-1), 2^k)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket a value lands in: 0 for 0, `⌊log₂ v⌋ + 1` otherwise.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i` — the quantile estimate
/// reported for observations that fell in it.
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A monotonically increasing count. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (bytes held, rows present). Cloning shares the
/// cell.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: Box::new(buckets),
        }
    }
}

/// A log₂-bucketed distribution (latencies, sizes). Cloning shares the
/// cells.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let cells = &*self.0;
        cells.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

#[derive(Debug)]
struct Inner {
    node: u32,
    /// `false` = handles still count, but snapshots are empty and the
    /// journal drops everything.
    enabled: bool,
    registry: Mutex<BTreeMap<(&'static str, &'static str), Instrument>>,
    journal: Mutex<JournalInner>,
}

/// A per-node telemetry handle: the registry of this node's metrics
/// plus its event journal. Cloning shares the underlying state, so a
/// node hands clones to each of its components (SWIM plane, router,
/// stores) and snapshots them all at once.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    /// A disabled handle — see [`Telemetry::disabled`].
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// An enabled registry for node `node` with the default journal
    /// (capacity 256, [`Severity::Info`] threshold).
    #[must_use]
    pub fn new(node: u32) -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                node,
                enabled: true,
                registry: Mutex::new(BTreeMap::new()),
                journal: Mutex::new(JournalInner::new(256, Severity::Info)),
            }),
        }
    }

    /// A disabled registry: instrument handles still count (components
    /// may read their own cells), but [`Telemetry::snapshot`] is empty
    /// and the journal records zero events.
    #[must_use]
    pub fn disabled() -> Self {
        Telemetry {
            inner: Arc::new(Inner {
                node: u32::MAX,
                enabled: false,
                registry: Mutex::new(BTreeMap::new()),
                journal: Mutex::new(JournalInner::new(0, Severity::Warn)),
            }),
        }
    }

    /// Same handle with the journal re-bounded to `capacity` events.
    #[must_use]
    pub fn with_journal_capacity(self, capacity: usize) -> Self {
        if self.inner.enabled {
            self.inner.journal.lock().unwrap().set_capacity(capacity);
        }
        self
    }

    /// Same handle recording journal events at `min` severity and up.
    #[must_use]
    pub fn with_journal_severity(self, min: Severity) -> Self {
        if self.inner.enabled {
            self.inner.journal.lock().unwrap().set_min_severity(min);
        }
        self
    }

    /// The node id this handle reports under.
    #[must_use]
    pub fn node(&self) -> u32 {
        self.inner.node
    }

    /// Is this an enabled (exporting) handle?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled
    }

    /// Register (or retrieve) the counter `component/name`.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    #[must_use]
    pub fn counter(&self, component: &'static str, name: &'static str) -> Counter {
        let mut reg = self.inner.registry.lock().unwrap();
        let slot = reg
            .entry((component, name))
            .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Instrument::Counter(c) => Counter(Arc::clone(c)),
            _ => panic!("{component}/{name} already registered as a non-counter"),
        }
    }

    /// Register (or retrieve) the gauge `component/name`.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    #[must_use]
    pub fn gauge(&self, component: &'static str, name: &'static str) -> Gauge {
        let mut reg = self.inner.registry.lock().unwrap();
        let slot = reg
            .entry((component, name))
            .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicU64::new(0))));
        match slot {
            Instrument::Gauge(g) => Gauge(Arc::clone(g)),
            _ => panic!("{component}/{name} already registered as a non-gauge"),
        }
    }

    /// Register (or retrieve) the histogram `component/name`.
    ///
    /// # Panics
    /// Panics if the name is already registered as a different kind.
    #[must_use]
    pub fn histogram(&self, component: &'static str, name: &'static str) -> Histogram {
        let mut reg = self.inner.registry.lock().unwrap();
        let slot = reg
            .entry((component, name))
            .or_insert_with(|| Instrument::Histogram(Arc::new(HistogramCells::new())));
        match slot {
            Instrument::Histogram(h) => Histogram(Arc::clone(h)),
            _ => panic!("{component}/{name} already registered as a non-histogram"),
        }
    }

    /// Record a structured event at simulation time `t`. Dropped when
    /// the handle is disabled or `severity` is below the journal's
    /// threshold.
    pub fn event(&self, t: f64, severity: Severity, kind: EventKind) {
        if !self.inner.enabled {
            return;
        }
        let mut j = self.inner.journal.lock().unwrap();
        if severity < j.min_severity() {
            return;
        }
        j.record(Event {
            t,
            severity,
            node: self.inner.node,
            kind,
        });
    }

    /// The journal's retained events, oldest first.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.inner.journal.lock().unwrap().events()
    }

    /// Number of events the bounded ring has overwritten.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.inner.journal.lock().unwrap().dropped()
    }

    /// A point-in-time copy of every registered metric (empty for a
    /// disabled handle).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        if !self.inner.enabled {
            return snap;
        }
        let reg = self.inner.registry.lock().unwrap();
        for (&(component, name), instrument) in reg.iter() {
            let value = match instrument {
                Instrument::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
                Instrument::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
                Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            snap.insert(self.inner.node, component, name, value);
        }
        drop(reg);
        snap.set_events(self.events());
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let t = Telemetry::new(7);
        let c = t.counter("comp", "hits");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = t.gauge("comp", "bytes");
        g.set(1234);
        assert_eq!(g.get(), 1234);
        let snap = t.snapshot();
        assert_eq!(snap.counter(7, "comp", "hits"), Some(5));
        assert_eq!(snap.gauge(7, "comp", "bytes"), Some(1234));
    }

    #[test]
    fn handles_share_cells() {
        let t = Telemetry::new(0);
        let a = t.counter("c", "n");
        let b = t.counter("c", "n");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let t = Telemetry::new(0);
        let _c = t.counter("c", "n");
        let _g = t.gauge("c", "n");
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Underflow bucket: zero only.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        // Each edge 2^k starts bucket k+1; 2^k - 1 still falls in k.
        for k in 1..=62 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge), k + 1, "edge 2^{k}");
            assert_eq!(bucket_index(edge - 1), k, "below edge 2^{k}");
            assert_eq!(bucket_index(edge + 1), k + 1, "above edge 2^{k}");
        }
        // Overflow bucket: the top half of u64 range, capped at 64.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(3), 7);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let t = Telemetry::new(1);
        let h = t.histogram("comp", "lat");
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        let snap = t.snapshot();
        let hs = snap.histogram(1, "comp", "lat").unwrap();
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 101_106);
        assert_eq!(hs.max, 100_000);
        // p50 of {0,1,2,3,100,1000,100000}: the 4th value (3) → its
        // bucket's upper bound.
        assert_eq!(hs.quantile(0.5), 3);
        // p99 lands in the last occupied bucket; its estimate is capped
        // by the true max.
        assert!(hs.quantile(0.99) <= hs.max);
        assert!(hs.quantile(0.99) >= 65_536);
    }

    #[test]
    fn disabled_registry_counts_but_exports_nothing() {
        let t = Telemetry::disabled();
        let c = t.counter("comp", "hits");
        c.inc();
        assert_eq!(c.get(), 1, "handles still count for protocol logic");
        assert!(t.snapshot().is_empty());
        t.event(1.0, Severity::Warn, EventKind::PacketQueued { to: 3 });
        assert!(t.events().is_empty(), "disabled registry adds zero events");
        assert_eq!(t.events_dropped(), 0);
    }
}
