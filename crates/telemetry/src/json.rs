//! A minimal JSON reader for the telemetry plane's own files.
//!
//! The workspace has no crates.io access, so the bench reports
//! (`BENCH_*.json`) and exported snapshots are parsed with this small
//! recursive-descent reader instead of serde_json. It accepts standard
//! JSON (objects, arrays, strings with the common escapes, numbers,
//! booleans, null); it is not a validator for adversarial input — both
//! ends of the format live in this repository.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 precision suffices for bench timings).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a human-readable message (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Escape a string for embedding in JSON output.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"suite": "kernels", "n": -1.5e2, "ok": true, "none": null,
               "benches": [{"id": "a/b", "median_ns": 12.5}, {"id": "c", "median_ns": 3}]}"#,
        )
        .unwrap();
        assert_eq!(v.get("suite").unwrap().as_str(), Some("kernels"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-150.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let benches = v.get("benches").unwrap().as_array().unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[0].get("id").unwrap().as_str(), Some("a/b"));
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line\nwith \"quotes\" and \\slashes\\ and\ttabs";
        let doc = format!("{{\"s\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("{'a': 1}").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }
}
