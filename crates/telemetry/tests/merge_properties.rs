//! Property tests for the snapshot merge algebra.
//!
//! Fleet snapshots are folded in whatever order the harness visits
//! nodes, so the merge must be a commutative monoid: `a ⊕ b = b ⊕ a`,
//! `(a ⊕ b) ⊕ c = a ⊕ (b ⊕ c)`, and the empty snapshot is the
//! identity. The metric *kind* is derived from the name here, so
//! arbitrary snapshots never produce the kind-conflict panic (which is
//! a registration bug, covered by a unit test).

use apor_telemetry::{Event, EventKind, HistogramSnapshot, MetricValue, Severity, Snapshot};
use proptest::prelude::*;

/// One arbitrary metric: node, name index, and a value whose kind is a
/// function of the name (so merges are always kind-consistent).
fn arb_metric() -> impl Strategy<Value = (u32, usize, u64)> {
    (0u32..4, 0usize..6, 0u64..1_000_000)
}

fn snapshot_from(metrics: &[(u32, usize, u64)]) -> Snapshot {
    let mut snap = Snapshot::default();
    let mut staged: Snapshot = Snapshot::default();
    for &(node, name_idx, v) in metrics {
        let name = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"][name_idx];
        let value = match name_idx % 3 {
            0 => MetricValue::Counter(v),
            1 => MetricValue::Gauge(v),
            _ => {
                let mut h = HistogramSnapshot::empty();
                h.count = 1;
                h.sum = v;
                h.max = v;
                h.buckets[apor_telemetry::metrics::bucket_index(v)] = 1;
                MetricValue::Histogram(h)
            }
        };
        // Same-key repeats fold through merge (insert would overwrite,
        // which is not the additive semantics we are testing).
        staged.insert(node, "prop", name, value);
        // Each metric also contributes one journal event, so the monoid
        // laws below cover the event union (sort + newest-cap) too.
        staged.set_events(vec![Event {
            #[allow(clippy::cast_precision_loss)]
            t: v as f64 * 0.25,
            severity: [Severity::Debug, Severity::Info, Severity::Warn][name_idx % 3],
            node,
            kind: EventKind::SyncSkip { peer: node },
        }]);
        snap.merge(&staged);
        staged = Snapshot::default();
    }
    snap
}

proptest! {
    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(arb_metric(), 0..12),
        b in prop::collection::vec(arb_metric(), 0..12),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(arb_metric(), 0..10),
        b in prop::collection::vec(arb_metric(), 0..10),
        c in prop::collection::vec(arb_metric(), 0..10),
    ) {
        let (sa, sb, sc) = (snapshot_from(&a), snapshot_from(&b), snapshot_from(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn empty_is_identity(a in prop::collection::vec(arb_metric(), 0..12)) {
        let sa = snapshot_from(&a);
        let mut left = Snapshot::default();
        left.merge(&sa);
        let mut right = sa.clone();
        right.merge(&Snapshot::default());
        prop_assert_eq!(&left, &sa);
        prop_assert_eq!(&right, &sa);
    }

    #[test]
    fn merge_totals_add(
        a in prop::collection::vec(arb_metric(), 0..12),
        b in prop::collection::vec(arb_metric(), 0..12),
    ) {
        let (sa, sb) = (snapshot_from(&a), snapshot_from(&b));
        let mut merged = sa.clone();
        merged.merge(&sb);
        prop_assert_eq!(
            merged.counter_total("prop", "alpha"),
            sa.counter_total("prop", "alpha") + sb.counter_total("prop", "alpha")
        );
    }
}
