//! The event journal under fleet merge (ISSUE 9 satellite): overflow
//! keeps the newest events, severity filtering survives the snapshot
//! merge, and merged ordering is deterministic by `(time, node)`
//! regardless of fold order.

use apor_telemetry::snapshot::MERGED_EVENT_CAP;
use apor_telemetry::{Event, EventKind, Severity, Snapshot, Telemetry};

fn queued(t: f64, node: u32, to: u32) -> Event {
    Event {
        t,
        severity: Severity::Info,
        node,
        kind: EventKind::PacketQueued { to },
    }
}

#[test]
fn snapshot_carries_journal_events() {
    let t = Telemetry::new(3);
    t.event(1.5, Severity::Info, EventKind::SyncSkip { peer: 9 });
    let snap = t.snapshot();
    assert_eq!(snap.events().len(), 1);
    assert_eq!(snap.events()[0].node, 3);
    assert_eq!(snap.events()[0].kind, EventKind::SyncSkip { peer: 9 });
    // Disabled registries export nothing, events included.
    let d = Telemetry::disabled();
    d.event(1.0, Severity::Warn, EventKind::SyncSkip { peer: 1 });
    assert!(d.snapshot().events().is_empty());
}

#[test]
fn overflow_keeps_newest_events_through_snapshot() {
    let t = Telemetry::new(0)
        .with_journal_capacity(4)
        .with_journal_severity(Severity::Debug);
    for i in 0..10u32 {
        t.event(
            f64::from(i),
            Severity::Info,
            EventKind::PacketQueued { to: i },
        );
    }
    let snap = t.snapshot();
    let tos: Vec<u32> = snap
        .events()
        .iter()
        .map(|e| match e.kind {
            EventKind::PacketQueued { to } => to,
            _ => unreachable!(),
        })
        .collect();
    assert_eq!(tos, vec![6, 7, 8, 9], "ring overflow keeps the newest");
    assert_eq!(t.events_dropped(), 6);
}

#[test]
fn severity_filtering_survives_merge() {
    // Node 0 journals everything; node 1 only warnings. The merged
    // fleet snapshot must reflect each node's own filter — merge can
    // neither resurrect filtered events nor drop recorded ones.
    let verbose = Telemetry::new(0).with_journal_severity(Severity::Debug);
    let quiet = Telemetry::new(1).with_journal_severity(Severity::Warn);
    for t in [&verbose, &quiet] {
        t.event(1.0, Severity::Debug, EventKind::PacketQueued { to: 7 });
        t.event(2.0, Severity::Info, EventKind::SyncSkip { peer: 7 });
        t.event(3.0, Severity::Warn, EventKind::SuspicionRaised { about: 7 });
    }
    let mut merged = verbose.snapshot();
    merged.merge(&quiet.snapshot());
    let from_quiet: Vec<&Event> = merged.events().iter().filter(|e| e.node == 1).collect();
    assert_eq!(from_quiet.len(), 1);
    assert_eq!(from_quiet[0].severity, Severity::Warn);
    let from_verbose: Vec<&Event> = merged.events().iter().filter(|e| e.node == 0).collect();
    assert_eq!(from_verbose.len(), 3);
}

#[test]
fn merged_ordering_is_deterministic_by_time_then_node() {
    // Interleaved timelines from three nodes, folded in two different
    // orders: identical result, sorted by (t, node).
    let mut snaps = Vec::new();
    for node in 0..3u32 {
        let t = Telemetry::new(node);
        // Later nodes record *earlier* events, so insertion order and
        // canonical order disagree unless merge actually sorts.
        t.event(
            f64::from(3 - node),
            Severity::Info,
            EventKind::SyncSkip { peer: node },
        );
        t.event(10.0, Severity::Info, EventKind::SyncPush { peer: node });
        snaps.push(t.snapshot());
    }
    let mut forward = Snapshot::default();
    for s in &snaps {
        forward.merge(s);
    }
    let mut backward = Snapshot::default();
    for s in snaps.iter().rev() {
        backward.merge(s);
    }
    assert_eq!(forward, backward);
    let keys: Vec<(f64, u32)> = forward.events().iter().map(|e| (e.t, e.node)).collect();
    assert_eq!(
        keys,
        vec![
            (1.0, 2),
            (2.0, 1),
            (3.0, 0),
            (10.0, 0),
            (10.0, 1),
            (10.0, 2)
        ]
    );
}

#[test]
fn merge_bounds_events_at_cap_keeping_newest() {
    // Two snapshots whose union exceeds the cap: the merged list holds
    // exactly MERGED_EVENT_CAP events and they are the newest ones.
    let mut a = Snapshot::default();
    let mut b = Snapshot::default();
    let old: Vec<Event> = (0..MERGED_EVENT_CAP)
        .map(|i| queued(i as f64, 0, 0))
        .collect();
    let new: Vec<Event> = (0..MERGED_EVENT_CAP)
        .map(|i| queued((MERGED_EVENT_CAP + i) as f64, 1, 0))
        .collect();
    a.set_events(old);
    b.set_events(new.clone());
    let mut ab = a.clone();
    ab.merge(&b);
    assert_eq!(ab.events().len(), MERGED_EVENT_CAP);
    assert_eq!(ab.events(), new.as_slice(), "newest events survive the cap");
    // And symmetric.
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba);
}

#[test]
fn events_appear_in_json_export() {
    let t = Telemetry::new(2);
    t.event(
        4.25,
        Severity::Warn,
        EventKind::SuspicionRaised { about: 5 },
    );
    let json = t.snapshot().to_json();
    let doc = apor_telemetry::json::parse(&json).expect("valid JSON");
    let events = doc
        .get("events")
        .and_then(apor_telemetry::json::Value::as_array)
        .expect("events array present");
    assert_eq!(events.len(), 1);
    assert_eq!(
        events[0]
            .get("t")
            .and_then(apor_telemetry::json::Value::as_f64),
        Some(4.25)
    );
    assert_eq!(
        events[0]
            .get("severity")
            .and_then(apor_telemetry::json::Value::as_str),
        Some("warn")
    );
    let kind = events[0]
        .get("kind")
        .and_then(apor_telemetry::json::Value::as_str)
        .unwrap();
    assert!(kind.contains("SuspicionRaised"), "{kind}");
    // An event-less snapshot keeps the PR-4 schema (no events key).
    let bare = Telemetry::new(0);
    bare.counter("c", "n").inc();
    assert!(!bare.snapshot().to_json().contains("\"events\""));
}
