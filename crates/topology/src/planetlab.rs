//! A synthetic PlanetLab: geography plus pathological routing inflation.
//!
//! Figure 1 of the paper is a measurement study over PlanetLab's all-pairs
//! pings: among host pairs whose direct RTT exceeded 400 ms, the best
//! one-hop detour brought at least 45 % of them below 400 ms, yet *random*
//! intermediaries almost never helped — even keeping 97 % of all candidate
//! one-hops missed most of the improvement, because the good detours are
//! concentrated in a few well-connected hubs.
//!
//! This model reproduces those distributional facts from first principles:
//!
//! * nodes live in world regions (PlanetLab-flavoured weights) and pay
//!   great-circle propagation delay;
//! * every node has an access delay (last-mile) and a *link quality
//!   factor*; a small fraction of nodes have badly degraded quality,
//!   inflating **all** of their links — these create both the >400 ms
//!   population and the "bad node" tail of figure 8;
//! * every pair additionally draws a log-normal routing-inflation factor
//!   (circuitous BGP paths), and a small fraction of pairs draw a *severe*
//!   multiplier (broken transit), creating triangle-inequality violations;
//! * detour quality through a candidate hop `k` therefore depends on `k`'s
//!   quality factor on **both** legs, concentrating the best detours in the
//!   few highest-quality, geographically right nodes — exactly the
//!   concentration figure 1's "excluding top n %" curves demonstrate.

use crate::geo::{GeoPoint, Region};
use crate::matrix::LatencyMatrix;
use crate::sampling;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic PlanetLab model. `Default` is calibrated to
/// reproduce figure 1's distributions; the tests in this module check the
/// calibration and EXPERIMENTS.md records the measured numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanetLabParams {
    /// Number of overlay nodes.
    pub n: usize,
    /// RNG seed; same seed ⇒ identical topology.
    pub seed: u64,
    /// World regions and node-placement weights.
    pub regions: Vec<Region>,
    /// Mean of the exponential per-node access (last-mile) delay, ms.
    pub access_delay_mean_ms: f64,
    /// Fixed per-hop processing overhead added to every path, ms.
    pub processing_ms: f64,
    /// σ of the log-normal per-pair routing inflation (median 1·`inflation_median`).
    pub inflation_sigma: f64,
    /// Median routing-inflation multiplier (≥ 1; 1.3 ≈ typical Internet path stretch).
    pub inflation_median: f64,
    /// Fraction of nodes with degraded link quality.
    pub bad_node_fraction: f64,
    /// Link-quality multiplier range for ordinary nodes.
    pub good_quality_range: (f64, f64),
    /// Link-quality multiplier range for degraded nodes.
    pub bad_quality_range: (f64, f64),
    /// Base probability that a pair's route is severely broken.
    pub severe_fraction: f64,
    /// Severe multiplier range (applied on top of everything else).
    pub severe_multiplier_range: (f64, f64),
    /// Median per-pair loss rate (log-normal, clamped to [0, 0.5]).
    pub loss_median: f64,
    /// σ of the log-normal loss-rate distribution.
    pub loss_sigma: f64,
}

impl Default for PlanetLabParams {
    fn default() -> Self {
        PlanetLabParams {
            n: 140,
            seed: 0x9e3779b97f4a7c15,
            regions: Region::planetlab_world(),
            access_delay_mean_ms: 6.0,
            processing_ms: 2.0,
            inflation_sigma: 0.3,
            inflation_median: 1.3,
            bad_node_fraction: 0.10,
            good_quality_range: (0.85, 1.35),
            bad_quality_range: (2.4, 4.2),
            severe_fraction: 0.012,
            severe_multiplier_range: (2.5, 7.0),
            loss_median: 0.004,
            loss_sigma: 1.2,
        }
    }
}

impl PlanetLabParams {
    /// Convenience: default parameters for `n` nodes.
    #[must_use]
    pub fn with_n(n: usize) -> Self {
        PlanetLabParams {
            n,
            ..Default::default()
        }
    }

    /// Same parameters, different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated synthetic environment: positions, per-node attributes and
/// the all-pairs [`LatencyMatrix`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Node coordinates.
    pub coords: Vec<GeoPoint>,
    /// Region index (into `params.regions`) of each node.
    pub region_of: Vec<usize>,
    /// Per-node access delay, ms.
    pub access_ms: Vec<f64>,
    /// Per-node link-quality multiplier (≥ ~0.8; ≫ 1 for degraded nodes).
    pub quality: Vec<f64>,
    /// The resulting all-pairs RTT and loss matrix.
    pub latency: LatencyMatrix,
}

impl Topology {
    /// Generate a topology from the given parameters (deterministic).
    #[must_use]
    pub fn generate(params: &PlanetLabParams) -> Topology {
        assert!(params.n >= 1, "need at least one node");
        assert!(!params.regions.is_empty(), "need at least one region");
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let n = params.n;

        // --- Node placement -------------------------------------------------
        let total_weight: f64 = params.regions.iter().map(|r| r.weight).sum();
        let mut region_of = Vec::with_capacity(n);
        let mut coords = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut idx = 0;
            for (i, r) in params.regions.iter().enumerate() {
                if pick < r.weight {
                    idx = i;
                    break;
                }
                pick -= r.weight;
                idx = i;
            }
            let region = &params.regions[idx];
            region_of.push(idx);
            coords.push(GeoPoint::new(
                sampling::normal(&mut rng, region.center.lat_deg, region.spread_deg),
                sampling::normal(&mut rng, region.center.lon_deg, region.spread_deg),
            ));
        }

        // --- Per-node attributes --------------------------------------------
        let access_ms: Vec<f64> = (0..n)
            .map(|_| 0.5 + sampling::exponential(&mut rng, params.access_delay_mean_ms))
            .collect();
        let quality: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen::<f64>() < params.bad_node_fraction {
                    rng.gen_range(params.bad_quality_range.0..params.bad_quality_range.1)
                } else {
                    rng.gen_range(params.good_quality_range.0..params.good_quality_range.1)
                }
            })
            .collect();

        // --- Pairwise latency & loss ----------------------------------------
        let mu = params.inflation_median.ln();
        let mut latency = LatencyMatrix::unreachable(n);
        for i in 0..n {
            for j in (i + 1)..n {
                let prop = coords[i].propagation_rtt_ms(&coords[j]);
                let inflation = sampling::log_normal(&mut rng, mu, params.inflation_sigma).max(1.0);
                // Node quality multiplies the routed portion of the path on
                // both endpoints: a degraded node degrades *all* of its
                // links, in proportion to how far its traffic must travel
                // through the broken provider. This is what concentrates
                // good detours near the degraded endpoint: only a hub that
                // exits the bad access network quickly keeps the penalized
                // segment short.
                let mut multiplier = inflation * quality[i] * quality[j];
                if rng.gen::<f64>() < params.severe_fraction {
                    // Pair-specific routing pathology (broken transit for
                    // this particular route): a classic triangle-inequality
                    // violation fixable through nearly any intermediary.
                    multiplier *= rng.gen_range(
                        params.severe_multiplier_range.0..params.severe_multiplier_range.1,
                    );
                }
                // No path can beat light-in-fibre propagation.
                multiplier = multiplier.max(1.0);
                let rtt = prop * multiplier + access_ms[i] + access_ms[j] + params.processing_ms;
                latency.set_rtt(i, j, rtt);

                let loss =
                    sampling::log_normal(&mut rng, params.loss_median.ln(), params.loss_sigma)
                        .min(0.5);
                latency.set_loss(i, j, loss);
            }
        }

        Topology {
            coords,
            region_of,
            access_ms,
            quality,
            latency,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.latency.len()
    }

    /// True when the topology holds no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.latency.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_topology(n: usize) -> Topology {
        Topology::generate(&PlanetLabParams::with_n(n))
    }

    #[test]
    fn deterministic_for_seed() {
        let a = default_topology(60);
        let b = default_topology(60);
        for i in 0..60 {
            for j in 0..60 {
                assert_eq!(a.latency.rtt(i, j), b.latency.rtt(i, j));
            }
        }
        let c = Topology::generate(&PlanetLabParams::with_n(60).with_seed(7));
        let differs =
            (0..60).any(|i| (0..60).any(|j| i != j && a.latency.rtt(i, j) != c.latency.rtt(i, j)));
        assert!(differs, "different seed must give a different topology");
    }

    #[test]
    fn rtts_physical() {
        let t = default_topology(120);
        for (i, j, rtt) in t.latency.pairs() {
            assert!(rtt.is_finite());
            assert!(rtt > 0.0, "({i},{j}) rtt {rtt}");
            // No pair can beat light-in-fibre propagation.
            let floor = t.coords[i].propagation_rtt_ms(&t.coords[j]);
            assert!(
                rtt >= 0.8 * floor,
                "({i},{j}) rtt {rtt} below physical floor {floor}"
            );
            assert!(rtt < 60_000.0, "({i},{j}) rtt {rtt} absurd");
        }
    }

    #[test]
    fn loss_rates_in_range() {
        let t = default_topology(80);
        for i in 0..80 {
            for j in 0..80 {
                let l = t.latency.loss(i, j);
                assert!((0.0..=0.5).contains(&l));
            }
        }
    }

    /// The figure 1 calibration: the synthetic world must contain a
    /// meaningful population of >400 ms paths, the best one-hop detour must
    /// rescue a large fraction of them, and random intermediaries must not.
    #[test]
    fn figure_1_distributional_calibration() {
        let t = default_topology(250);
        let n = t.len();
        let mut high_latency_pairs = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if t.latency.rtt(i, j) > 400.0 {
                    high_latency_pairs.push((i, j));
                }
            }
        }
        let total_pairs = n * (n - 1) / 2;
        let frac_high = high_latency_pairs.len() as f64 / total_pairs as f64;
        assert!(
            (0.005..0.15).contains(&frac_high),
            "fraction of >400ms pairs = {frac_high} ({} pairs)",
            high_latency_pairs.len()
        );

        // Best one-hop rescues ≥ 40 % of the high-latency pairs (paper: ≥45 %).
        let rescued = high_latency_pairs
            .iter()
            .filter(|&&(i, j)| t.latency.best_path_with_one_hop(i, j) < 400.0)
            .count();
        let frac_rescued = rescued as f64 / high_latency_pairs.len() as f64;
        assert!(
            frac_rescued >= 0.40,
            "best one-hop rescues only {frac_rescued}"
        );

        // A random intermediary rarely helps: averaged over high-latency
        // pairs, the fraction of intermediaries achieving < 400 ms is small.
        let mut helping_fraction_sum = 0.0;
        for &(i, j) in &high_latency_pairs {
            let helping = (0..n)
                .filter(|&k| k != i && k != j)
                .filter(|&k| t.latency.rtt(i, k) + t.latency.rtt(k, j) < 400.0)
                .count();
            helping_fraction_sum += helping as f64 / (n - 2) as f64;
        }
        let mean_helping = helping_fraction_sum / high_latency_pairs.len() as f64;
        assert!(
            mean_helping < 0.35,
            "random intermediaries help too often: {mean_helping}"
        );
    }

    #[test]
    fn detours_concentrate_in_good_nodes() {
        // The best hop for a high-latency pair should, on average, have
        // better (lower) quality factor than the node population at large —
        // this is the concentration that makes figure 1's "excluding top
        // n %" curves collapse.
        let t = default_topology(200);
        let n = t.len();
        let mean_quality: f64 = t.quality.iter().sum::<f64>() / n as f64;
        let mut best_qualities = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if t.latency.rtt(i, j) > 400.0 {
                    if let Some((k, _)) = t.latency.best_one_hop(i, j) {
                        best_qualities.push(t.quality[k]);
                    }
                }
            }
        }
        assert!(!best_qualities.is_empty());
        let mean_best: f64 = best_qualities.iter().sum::<f64>() / best_qualities.len() as f64;
        assert!(
            mean_best < mean_quality,
            "best hops not concentrated: best {mean_best} vs population {mean_quality}"
        );
    }

    #[test]
    fn regions_all_used_for_large_n() {
        let t = default_topology(300);
        let regions = Region::planetlab_world().len();
        let mut seen = vec![false; regions];
        for &r in &t.region_of {
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s), "some region has no nodes");
    }

    #[test]
    fn bad_nodes_exist_and_are_minority() {
        let t = default_topology(300);
        let bad = t.quality.iter().filter(|&&q| q > 1.8).count();
        assert!(bad > 0, "no degraded nodes generated");
        assert!(bad < 60, "too many degraded nodes: {bad}");
    }

    #[test]
    fn single_node_topology() {
        let t = default_topology(1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.latency.rtt(0, 0), 0.0);
    }
}
