//! Link- and node-failure schedules.
//!
//! The deployment experiments (figures 8, 10–14) ran on PlanetLab during a
//! period of "quite serious failures". We substitute a renewal-process
//! failure generator whose per-node concurrent-failure distribution is
//! calibrated to figure 8: the median node averages a handful of concurrent
//! link failures, almost all nodes average < 40, and a small tail of badly
//! connected nodes reaches the 40–120 range (the paper's "poorly connected"
//! case study node averaged 44, max 123).
//!
//! A schedule is generated up front (deterministic in the seed) and then
//! *queried* by the simulator: a packet sent on link `(i, j)` at time `t`
//! is dropped when the link is scheduled down. This mirrors how PlanetLab
//! failures act on the paper's system — probes and routing messages are
//! simply lost, and all detection happens through the overlay's own
//! probing, exactly as in section 5.

use crate::sampling;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Half-open outage interval `[start, end)` in seconds.
pub type Outage = (f64, f64);

/// Parameters for failure-schedule generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureParams {
    /// Number of nodes.
    pub n: usize,
    /// RNG seed.
    pub seed: u64,
    /// Schedule horizon in seconds (the paper's deployment ran 136 min).
    pub duration_s: f64,
    /// Median (over nodes) of the target mean number of concurrent link
    /// failures per node — figure 8's x-axis.
    pub median_concurrent: f64,
    /// σ of the log-normal spread of per-node failure proneness. Larger
    /// values produce a heavier "badly connected" tail.
    pub concurrent_sigma: f64,
    /// Mean link outage duration, seconds.
    pub mean_outage_s: f64,
    /// Minimum outage duration, seconds (very short blips are probe loss,
    /// not failures, so we floor outages near the detection timescale).
    pub min_outage_s: f64,
    /// Per-link down-fraction cap (a link can't be down more than this
    /// share of the time).
    pub max_down_fraction: f64,
    /// Explicit whole-node outages (crash/restart windows).
    pub node_outages: Vec<NodeOutage>,
    /// Explicit single-link outages, merged into the generated schedule
    /// (targeted failure injection for tests and demos).
    pub link_outages: Vec<LinkOutage>,
}

impl Default for FailureParams {
    fn default() -> Self {
        FailureParams {
            n: 140,
            seed: 0xDEFA11,
            duration_s: 136.0 * 60.0,
            median_concurrent: 4.0,
            concurrent_sigma: 1.1,
            mean_outage_s: 120.0,
            min_outage_s: 20.0,
            max_down_fraction: 0.85,
            node_outages: Vec::new(),
            link_outages: Vec::new(),
        }
    }
}

impl FailureParams {
    /// Default parameters for `n` nodes.
    #[must_use]
    pub fn with_n(n: usize) -> Self {
        FailureParams {
            n,
            ..Default::default()
        }
    }

    /// Same parameters, different seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedule a clean network partition: every link between a node in
    /// `minority` and a node outside it is down during
    /// `[start_s, end_s)`. Links *within* each side stay up (subject to
    /// the generated background failures), so both sides keep operating
    /// as overlays — the scenario `experiments::partition` measures.
    ///
    /// # Panics
    /// Panics on an out-of-range or duplicated minority index, or an
    /// empty window.
    #[must_use]
    pub fn with_partition(mut self, minority: &[usize], start_s: f64, end_s: f64) -> Self {
        assert!(start_s < end_s, "empty partition window");
        let mut side = vec![false; self.n];
        for &m in minority {
            assert!(m < self.n, "minority index {m} out of range");
            assert!(!side[m], "duplicate minority index {m}");
            side[m] = true;
        }
        for &m in minority {
            for other in (0..self.n).filter(|&o| !side[o]) {
                self.link_outages.push(LinkOutage {
                    a: m,
                    b: other,
                    start_s,
                    end_s,
                });
            }
        }
        self
    }

    /// Schedule a correlated *row blackout*: every member of `members`
    /// (typically one grid row of the quorum overlay — a shared rack,
    /// AS, or region) goes fully dark during `[start_s, end_s)`. Unlike
    /// [`FailureParams::with_partition`], the members do not keep an
    /// overlay among themselves: each one is a whole-node outage, so
    /// all of its links (including to the other blacked-out members)
    /// are down — the scenario `experiments::detour` recovers from.
    ///
    /// # Panics
    /// Panics on an out-of-range or duplicated member index, or an
    /// empty window.
    #[must_use]
    pub fn with_row_blackout(mut self, members: &[usize], start_s: f64, end_s: f64) -> Self {
        assert!(start_s < end_s, "empty blackout window");
        let mut seen = vec![false; self.n];
        for &m in members {
            assert!(m < self.n, "blackout member {m} out of range");
            assert!(!seen[m], "duplicate blackout member {m}");
            seen[m] = true;
            self.node_outages.push(NodeOutage {
                node: m,
                start_s,
                end_s,
            });
        }
        self
    }

    /// A schedule with no failures at all (steady-state experiments).
    #[must_use]
    pub fn none(n: usize, duration_s: f64) -> FailureSchedule {
        FailureSchedule {
            n,
            duration_s,
            link_down: vec![Vec::new(); n * (n.saturating_sub(1)) / 2],
            node_down: vec![Vec::new(); n],
            proneness: vec![0.0; n],
        }
    }
}

/// An explicit whole-node outage window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeOutage {
    /// The failing node.
    pub node: usize,
    /// Outage start, seconds.
    pub start_s: f64,
    /// Outage end, seconds.
    pub end_s: f64,
}

/// An explicit single-link outage window (both directions fail).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkOutage {
    /// One endpoint.
    pub a: usize,
    /// The other endpoint.
    pub b: usize,
    /// Outage start, seconds.
    pub start_s: f64,
    /// Outage end, seconds.
    pub end_s: f64,
}

/// A pre-generated, queryable failure schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureSchedule {
    n: usize,
    duration_s: f64,
    /// Outage lists per unordered pair, indexed by [`pair_index`].
    link_down: Vec<Vec<Outage>>,
    /// Outage lists per node.
    node_down: Vec<Vec<Outage>>,
    /// Per-node failure proneness (target mean concurrent failures).
    proneness: Vec<f64>,
}

/// Index of the unordered pair `(i, j)`, `i ≠ j`, in a flat triangular
/// layout.
#[must_use]
pub fn pair_index(n: usize, i: usize, j: usize) -> usize {
    let (a, b) = if i < j { (i, j) } else { (j, i) };
    debug_assert!(b < n);
    // Triangular index: pairs (0,1), (0,2), … (0,n-1), (1,2), …
    a * n - a * (a + 1) / 2 + (b - a - 1)
}

impl FailureSchedule {
    /// Generate a schedule (deterministic in `params.seed`).
    #[must_use]
    pub fn generate(params: &FailureParams) -> FailureSchedule {
        let n = params.n;
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);

        // Per-node failure proneness: log-normal around the median.
        let proneness: Vec<f64> = (0..n)
            .map(|_| {
                sampling::log_normal(
                    &mut rng,
                    params.median_concurrent.ln(),
                    params.concurrent_sigma,
                )
            })
            .collect();

        let mut link_down = vec![Vec::new(); n * n.saturating_sub(1) / 2];
        if n >= 2 {
            for i in 0..n {
                for j in (i + 1)..n {
                    // Link down-fraction so that Σ_j duty(i,j) ≈ proneness_i.
                    let duty = ((proneness[i] + proneness[j]) / (2.0 * (n - 1) as f64))
                        .min(params.max_down_fraction);
                    if duty <= 0.0 {
                        continue;
                    }
                    let mean_up = params.mean_outage_s * (1.0 - duty) / duty;
                    let outages = Self::renewal_process(
                        &mut rng,
                        params.duration_s,
                        duty,
                        mean_up,
                        params.mean_outage_s,
                        params.min_outage_s,
                    );
                    link_down[pair_index(n, i, j)] = outages;
                }
            }
        }

        // Merge in explicit link outages.
        for o in &params.link_outages {
            assert!(
                o.a < n && o.b < n && o.a != o.b,
                "bad link outage endpoints"
            );
            assert!(o.start_s < o.end_s, "empty link outage window");
            link_down[pair_index(n, o.a, o.b)].push((o.start_s, o.end_s));
        }
        for list in &mut link_down {
            if list.is_empty() {
                continue;
            }
            list.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
            // Coalesce overlaps so interval queries stay a binary search.
            let mut merged: Vec<Outage> = Vec::with_capacity(list.len());
            for &(s, e) in list.iter() {
                match merged.last_mut() {
                    Some(last) if s <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((s, e)),
                }
            }
            *list = merged;
        }

        let mut node_down = vec![Vec::new(); n];
        for o in &params.node_outages {
            assert!(o.node < n, "node outage index {} out of range", o.node);
            assert!(o.start_s < o.end_s, "empty node outage window");
            node_down[o.node].push((o.start_s, o.end_s));
        }
        for list in &mut node_down {
            list.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        }

        FailureSchedule {
            n,
            duration_s: params.duration_s,
            link_down,
            node_down,
            proneness,
        }
    }

    /// Alternating up/down renewal process over `[0, duration)`.
    fn renewal_process(
        rng: &mut ChaCha8Rng,
        duration: f64,
        duty: f64,
        mean_up: f64,
        mean_down: f64,
        min_down: f64,
    ) -> Vec<Outage> {
        let mut outages = Vec::new();
        // Start down with stationary probability `duty`.
        let mut t = 0.0;
        let mut down = rng.gen::<f64>() < duty;
        while t < duration {
            if down {
                let d = sampling::exponential(rng, mean_down).max(min_down);
                let end = (t + d).min(duration);
                outages.push((t, end));
                t = end;
            } else {
                t += sampling::exponential(rng, mean_up);
            }
            down = !down;
        }
        outages
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the schedule covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Schedule horizon in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// Per-node failure proneness used during generation (diagnostics).
    #[must_use]
    pub fn proneness(&self) -> &[f64] {
        &self.proneness
    }

    /// Is node `i` up at time `t`?
    #[must_use]
    pub fn is_node_up(&self, i: usize, t: f64) -> bool {
        !covered(&self.node_down[i], t)
    }

    /// Is the link `(i, j)` usable at time `t`? False when the link itself
    /// is scheduled down or either endpoint is down.
    #[must_use]
    pub fn is_link_up(&self, i: usize, j: usize, t: f64) -> bool {
        if i == j {
            return self.is_node_up(i, t);
        }
        self.is_node_up(i, t)
            && self.is_node_up(j, t)
            && !covered(&self.link_down[pair_index(self.n, i, j)], t)
    }

    /// The outage list of link `(i, j)`.
    #[must_use]
    pub fn link_outages(&self, i: usize, j: usize) -> &[Outage] {
        &self.link_down[pair_index(self.n, i, j)]
    }

    /// Number of concurrent link failures observed by node `i` at `t`:
    /// destinations unreachable via the direct link (figure 8's metric).
    #[must_use]
    pub fn concurrent_failures(&self, i: usize, t: f64) -> usize {
        (0..self.n)
            .filter(|&j| j != i)
            .filter(|&j| !self.is_link_up(i, j, t))
            .count()
    }

    /// Mean (over `samples` evenly spaced instants) of
    /// [`concurrent_failures`](Self::concurrent_failures) for node `i`.
    #[must_use]
    pub fn mean_concurrent_failures(&self, i: usize, samples: usize) -> f64 {
        assert!(samples > 0);
        let step = self.duration_s / samples as f64;
        let total: usize = (0..samples)
            .map(|s| self.concurrent_failures(i, (s as f64 + 0.5) * step))
            .sum();
        total as f64 / samples as f64
    }

    /// Max (over `samples` instants) concurrent failures for node `i`.
    #[must_use]
    pub fn max_concurrent_failures(&self, i: usize, samples: usize) -> usize {
        assert!(samples > 0);
        let step = self.duration_s / samples as f64;
        (0..samples)
            .map(|s| self.concurrent_failures(i, (s as f64 + 0.5) * step))
            .max()
            .unwrap_or(0)
    }
}

/// Is `t` inside any of the sorted intervals?
fn covered(intervals: &[Outage], t: f64) -> bool {
    // Binary search for the last interval starting at or before t.
    let idx = intervals.partition_point(|&(s, _)| s <= t);
    idx > 0 && t < intervals[idx - 1].1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_bijective() {
        let n = 17;
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = pair_index(n, i, j);
                assert_eq!(idx, pair_index(n, j, i), "symmetric");
                assert!(seen.insert(idx), "collision at ({i},{j})");
                assert!(idx < n * (n - 1) / 2);
            }
        }
        assert_eq!(seen.len(), n * (n - 1) / 2);
    }

    #[test]
    fn deterministic_generation() {
        let p = FailureParams::with_n(30);
        let a = FailureSchedule::generate(&p);
        let b = FailureSchedule::generate(&p);
        for i in 0..30 {
            for j in (i + 1)..30 {
                assert_eq!(a.link_outages(i, j), b.link_outages(i, j));
            }
        }
    }

    #[test]
    fn outages_sorted_disjoint_within_horizon() {
        let s = FailureSchedule::generate(&FailureParams::with_n(40));
        for i in 0..40 {
            for j in (i + 1)..40 {
                let os = s.link_outages(i, j);
                for w in os.windows(2) {
                    assert!(w[0].1 <= w[1].0, "overlap {w:?}");
                }
                for &(a, b) in os {
                    assert!(a < b, "empty outage");
                    assert!(b <= s.duration_s() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn covered_queries() {
        let intervals = vec![(10.0, 20.0), (30.0, 40.0)];
        assert!(!covered(&intervals, 5.0));
        assert!(covered(&intervals, 10.0));
        assert!(covered(&intervals, 15.0));
        assert!(!covered(&intervals, 20.0));
        assert!(covered(&intervals, 39.9));
        assert!(!covered(&intervals, 45.0));
    }

    #[test]
    fn node_outage_blocks_all_links() {
        let mut p = FailureParams::with_n(5);
        p.median_concurrent = 0.0001; // effectively no link failures
        p.node_outages = vec![NodeOutage {
            node: 2,
            start_s: 100.0,
            end_s: 200.0,
        }];
        let s = FailureSchedule::generate(&p);
        assert!(s.is_node_up(2, 50.0));
        assert!(!s.is_node_up(2, 150.0));
        for j in [0usize, 1, 3, 4] {
            assert!(!s.is_link_up(2, j, 150.0));
            assert!(!s.is_link_up(j, 2, 150.0));
        }
        assert!(s.concurrent_failures(0, 150.0) >= 1);
    }

    #[test]
    fn row_blackout_darkens_every_member_link() {
        let mut p = FailureParams::with_n(9).with_row_blackout(&[3, 4, 5], 100.0, 200.0);
        p.median_concurrent = 0.0001; // effectively no background failures
        let s = FailureSchedule::generate(&p);
        for &m in &[3usize, 4, 5] {
            assert!(s.is_node_up(m, 50.0), "node {m} up before the window");
            assert!(!s.is_node_up(m, 150.0), "node {m} dark in the window");
            assert!(s.is_node_up(m, 250.0), "node {m} back after the window");
        }
        // Unlike a partition, blacked-out members cannot even reach each
        // other: the row keeps no overlay of its own.
        assert!(!s.is_link_up(3, 4, 150.0));
        assert!(!s.is_link_up(4, 5, 150.0));
        // Links to the rest of the overlay are down too.
        assert!(!s.is_link_up(0, 3, 150.0));
        assert!(!s.is_link_up(5, 8, 150.0));
        // Survivors keep their links.
        assert!(s.is_link_up(0, 1, 150.0));
    }

    #[test]
    #[should_panic(expected = "duplicate blackout member")]
    fn row_blackout_rejects_duplicates() {
        let _ = FailureParams::with_n(9).with_row_blackout(&[3, 3], 100.0, 200.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn row_blackout_rejects_out_of_range() {
        let _ = FailureParams::with_n(9).with_row_blackout(&[9], 100.0, 200.0);
    }

    /// Figure 8 calibration: per-node mean concurrent failures must have a
    /// low median, almost all nodes below 40, and a heavy tail.
    #[test]
    fn figure_8_calibration() {
        let s = FailureSchedule::generate(&FailureParams::default());
        let n = s.len();
        let mut means: Vec<f64> = (0..n).map(|i| s.mean_concurrent_failures(i, 60)).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = means[n / 2];
        assert!(
            (1.0..20.0).contains(&median),
            "median concurrent failures {median}"
        );
        let below_40 = means.iter().filter(|&&m| m < 40.0).count() as f64 / n as f64;
        assert!(below_40 > 0.90, "only {below_40} of nodes below 40");
        // A genuine tail exists: the worst node sees many concurrent failures.
        assert!(
            *means.last().unwrap() > 15.0,
            "no badly-connected tail: max {}",
            means.last().unwrap()
        );
    }

    #[test]
    fn none_schedule_has_no_failures() {
        let s = FailureParams::none(10, 1000.0);
        for t in [0.0, 500.0, 999.0] {
            for i in 0..10 {
                assert!(s.is_node_up(i, t));
                assert_eq!(s.concurrent_failures(i, t), 0);
            }
        }
    }

    #[test]
    fn duty_cycle_roughly_matches_proneness() {
        // For a node with proneness m, the expected concurrent failures
        // should be within a factor ~2 of m (stochastic, so loose bounds).
        let mut p = FailureParams::with_n(60);
        p.concurrent_sigma = 0.0; // all nodes identical
        p.median_concurrent = 6.0;
        p.seed = 99;
        let s = FailureSchedule::generate(&p);
        let mean: f64 = (0..60)
            .map(|i| s.mean_concurrent_failures(i, 50))
            .sum::<f64>()
            / 60.0;
        assert!(
            (2.0..12.0).contains(&mean),
            "mean concurrent failures {mean}, target 6"
        );
    }

    #[test]
    fn link_outage_injection_and_merging() {
        let mut p = FailureParams::with_n(6);
        p.median_concurrent = 1e-9;
        p.link_outages = vec![
            LinkOutage {
                a: 0,
                b: 5,
                start_s: 100.0,
                end_s: 200.0,
            },
            LinkOutage {
                a: 5,
                b: 0,
                start_s: 150.0,
                end_s: 250.0,
            }, // overlaps, reversed
            LinkOutage {
                a: 1,
                b: 2,
                start_s: 10.0,
                end_s: 20.0,
            },
        ];
        let s = FailureSchedule::generate(&p);
        // Merged into one interval [100, 250).
        assert_eq!(s.link_outages(0, 5), &[(100.0, 250.0)]);
        assert!(s.is_link_up(0, 5, 99.0));
        assert!(!s.is_link_up(0, 5, 175.0));
        assert!(!s.is_link_up(5, 0, 225.0));
        assert!(s.is_link_up(0, 5, 250.0));
        // Other links untouched.
        assert!(s.is_link_up(0, 1, 175.0));
        assert!(!s.is_link_up(1, 2, 15.0));
        // Node-level queries unaffected.
        assert!(s.is_node_up(0, 175.0));
    }

    #[test]
    fn partition_cuts_exactly_the_cross_links() {
        let mut p = FailureParams::with_n(6);
        p.median_concurrent = 1e-12; // isolate the partition
        let p = p.with_partition(&[4, 5], 100.0, 200.0);
        let s = FailureSchedule::generate(&p);
        for i in 0..6 {
            for j in 0..6 {
                if i == j {
                    continue;
                }
                let crosses = (i >= 4) != (j >= 4);
                assert_eq!(
                    !s.is_link_up(i, j, 150.0),
                    crosses,
                    "link ({i},{j}) wrong during partition"
                );
                assert!(s.is_link_up(i, j, 50.0), "({i},{j}) down before");
                assert!(s.is_link_up(i, j, 250.0), "({i},{j}) down after heal");
            }
        }
        // Nodes themselves stay up throughout.
        for i in 0..6 {
            assert!(s.is_node_up(i, 150.0));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_bad_index() {
        let _ = FailureParams::with_n(3).with_partition(&[7], 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad link outage")]
    fn link_outage_self_loop_rejected() {
        let mut p = FailureParams::with_n(3);
        p.link_outages = vec![LinkOutage {
            a: 1,
            b: 1,
            start_s: 0.0,
            end_s: 1.0,
        }];
        let _ = FailureSchedule::generate(&p);
    }

    #[test]
    fn single_node_schedule() {
        let s = FailureSchedule::generate(&FailureParams::with_n(1));
        assert!(s.is_node_up(0, 10.0));
        assert_eq!(s.concurrent_failures(0, 10.0), 0);
    }
}
