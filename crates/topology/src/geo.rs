//! Minimal spherical geography used by the synthetic latency model.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres.
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// Effective propagation speed of light in fibre, km per millisecond.
/// (~2/3 of c; the standard figure used in Internet latency models.)
pub const FIBRE_KM_PER_MS: f64 = 200.0;

/// A point on the Earth's surface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, −90…90.
    pub lat_deg: f64,
    /// Longitude in degrees, −180…180.
    pub lon_deg: f64,
}

impl GeoPoint {
    /// Construct a point, clamping latitude and wrapping longitude.
    #[must_use]
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        let lat = lat_deg.clamp(-90.0, 90.0);
        let mut lon = (lon_deg + 180.0) % 360.0;
        if lon < 0.0 {
            lon += 360.0;
        }
        GeoPoint {
            lat_deg: lat,
            lon_deg: lon - 180.0,
        }
    }

    /// Great-circle distance to `other` in km (haversine formula).
    #[must_use]
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        let (la1, lo1) = (self.lat_deg.to_radians(), self.lon_deg.to_radians());
        let (la2, lo2) = (other.lat_deg.to_radians(), other.lon_deg.to_radians());
        let dla = la2 - la1;
        let dlo = lo2 - lo1;
        let a = (dla / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlo / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().atan2((1.0 - a).sqrt())
    }

    /// Idealized round-trip propagation delay to `other` in milliseconds:
    /// distance each way at fibre speed.
    #[must_use]
    pub fn propagation_rtt_ms(&self, other: &GeoPoint) -> f64 {
        2.0 * self.distance_km(other) / FIBRE_KM_PER_MS
    }
}

/// A world region hosting overlay nodes, with a weight giving the fraction
/// of nodes placed there. The default set mimics PlanetLab's distribution
/// across North America, Europe, Asia and the southern hemisphere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable name ("eu-central", …).
    pub name: String,
    /// Region center.
    pub center: GeoPoint,
    /// Gaussian jitter of node placement around the center, in degrees.
    pub spread_deg: f64,
    /// Relative share of overlay nodes hosted here.
    pub weight: f64,
}

impl Region {
    /// The default region set: a PlanetLab-flavoured world.
    #[must_use]
    pub fn planetlab_world() -> Vec<Region> {
        let mk = |name: &str, lat: f64, lon: f64, spread: f64, weight: f64| Region {
            name: name.to_string(),
            center: GeoPoint::new(lat, lon),
            spread_deg: spread,
            weight,
        };
        vec![
            mk("na-east", 41.0, -74.0, 4.0, 0.22),
            mk("na-west", 37.4, -122.0, 3.5, 0.16),
            mk("eu-west", 51.5, -0.1, 3.0, 0.14),
            mk("eu-central", 50.1, 8.7, 3.5, 0.16),
            mk("asia-east", 35.7, 139.7, 4.0, 0.13),
            mk("asia-south", 13.0, 77.6, 3.0, 0.06),
            mk("south-america", -23.5, -46.6, 3.0, 0.06),
            mk("oceania", -33.9, 151.2, 2.5, 0.07),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_to_self() {
        let p = GeoPoint::new(42.0, -71.0);
        assert!(p.distance_km(&p) < 1e-9);
        assert!(p.propagation_rtt_ms(&p) < 1e-9);
    }

    #[test]
    fn known_distances_roughly_right() {
        // New York ↔ London ≈ 5 570 km.
        let ny = GeoPoint::new(40.7, -74.0);
        let ldn = GeoPoint::new(51.5, -0.1);
        let d = ny.distance_km(&ldn);
        assert!((5300.0..5800.0).contains(&d), "NY-LDN {d} km");
        // Propagation RTT ≈ 2·5570/200 ≈ 56 ms — the familiar ~56 ms
        // transatlantic light-speed floor.
        let rtt = ny.propagation_rtt_ms(&ldn);
        assert!((53.0..58.0).contains(&rtt), "NY-LDN rtt {rtt} ms");
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(&b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "antipodal {d} vs {half}");
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(35.7, 139.7);
        let b = GeoPoint::new(-33.9, 151.2);
        assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-9);
    }

    #[test]
    fn constructor_clamps_and_wraps() {
        let p = GeoPoint::new(95.0, 270.0);
        assert_eq!(p.lat_deg, 90.0);
        assert!((p.lon_deg - -90.0).abs() < 1e-9);
        let q = GeoPoint::new(-95.0, -270.0);
        assert_eq!(q.lat_deg, -90.0);
        assert!((q.lon_deg - 90.0).abs() < 1e-9);
    }

    #[test]
    fn default_world_weights_sum_to_one() {
        let regions = Region::planetlab_world();
        let total: f64 = regions.iter().map(|r| r.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }
}
