//! All-pairs latency and loss matrices.

use serde::{Deserialize, Serialize};

/// An all-pairs RTT (ms) and loss-rate matrix over `n` nodes.
///
/// This is the "ground truth" the simulator delivers packets with, and the
/// reference that effectiveness experiments compare routing output against.
/// The matrix is stored dense (`n²` entries) — the paper's regime is
/// hundreds to a few thousands of nodes, where dense storage is both faster
/// and simpler than anything sparse.
///
/// RTTs are symmetric unless explicitly set otherwise; the paper assumes
/// bidirectional links with identical cost (section 3) and notes that
/// asymmetric costs only change what round one transmits. Unreachable
/// pairs carry `f64::INFINITY`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyMatrix {
    n: usize,
    /// Row-major RTT in milliseconds; `INFINITY` = unreachable.
    rtt_ms: Vec<f64>,
    /// Row-major packet loss probability in `[0, 1]`.
    loss: Vec<f64>,
}

impl LatencyMatrix {
    /// A matrix with every distinct pair unreachable and zero loss.
    #[must_use]
    pub fn unreachable(n: usize) -> Self {
        let mut m = LatencyMatrix {
            n,
            rtt_ms: vec![f64::INFINITY; n * n],
            loss: vec![0.0; n * n],
        };
        for i in 0..n {
            m.rtt_ms[i * n + i] = 0.0;
        }
        m
    }

    /// A fully connected matrix with a constant RTT on every pair.
    #[must_use]
    pub fn uniform(n: usize, rtt_ms: f64) -> Self {
        let mut m = Self::unreachable(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.rtt_ms[i * n + j] = rtt_ms;
                }
            }
        }
        m
    }

    /// Build from an explicit row-major RTT table (must be `n²` long).
    ///
    /// # Panics
    /// Panics if the table length is not `n²`.
    #[must_use]
    pub fn from_rtt(n: usize, rtt_ms: Vec<f64>) -> Self {
        assert_eq!(rtt_ms.len(), n * n, "rtt table must be n²");
        LatencyMatrix {
            n,
            rtt_ms,
            loss: vec![0.0; n * n],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RTT between `i` and `j` in milliseconds (0 for `i == j`,
    /// `INFINITY` when unreachable).
    #[must_use]
    pub fn rtt(&self, i: usize, j: usize) -> f64 {
        self.rtt_ms[i * self.n + j]
    }

    /// One-way delay `i → j` (half the RTT), used by the simulator.
    #[must_use]
    pub fn one_way(&self, i: usize, j: usize) -> f64 {
        self.rtt(i, j) / 2.0
    }

    /// True when `i` can reach `j` directly.
    #[must_use]
    pub fn reachable(&self, i: usize, j: usize) -> bool {
        self.rtt(i, j).is_finite()
    }

    /// Packet loss probability on `i → j`.
    #[must_use]
    pub fn loss(&self, i: usize, j: usize) -> f64 {
        self.loss[i * self.n + j]
    }

    /// Set the RTT for both directions of a pair.
    pub fn set_rtt(&mut self, i: usize, j: usize, rtt_ms: f64) {
        self.rtt_ms[i * self.n + j] = rtt_ms;
        self.rtt_ms[j * self.n + i] = rtt_ms;
    }

    /// Set an asymmetric one-direction RTT (used by asymmetry ablations).
    pub fn set_rtt_directed(&mut self, i: usize, j: usize, rtt_ms: f64) {
        self.rtt_ms[i * self.n + j] = rtt_ms;
    }

    /// Set the loss probability for both directions of a pair.
    ///
    /// # Panics
    /// Panics unless `loss ∈ [0, 1]`.
    pub fn set_loss(&mut self, i: usize, j: usize, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss[i * self.n + j] = loss;
        self.loss[j * self.n + i] = loss;
    }

    /// Set an asymmetric one-direction loss probability (lossy-WAN and
    /// asymmetry ablations; the reverse direction is untouched).
    ///
    /// # Panics
    /// Panics unless `loss ∈ [0, 1]`.
    pub fn set_loss_directed(&mut self, i: usize, j: usize, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss[i * self.n + j] = loss;
    }

    /// Iterate over all ordered pairs `(i, j, rtt)` with `i != j`.
    pub fn pairs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |i| {
            (0..self.n)
                .filter(move |&j| j != i)
                .map(move |j| (i, j, self.rtt(i, j)))
        })
    }

    /// The best one-hop relay for `i → j` under this matrix: the `k`
    /// minimizing `rtt(i,k) + rtt(k,j)`, `k ∉ {i, j}`.
    ///
    /// Returns `(k, total_rtt)`; `None` when no finite relay path exists.
    /// This is the *reference* optimum the routing protocol must discover
    /// (Theorem 1); the protocol itself never calls this.
    #[must_use]
    pub fn best_one_hop(&self, i: usize, j: usize) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for k in 0..self.n {
            if k == i || k == j {
                continue;
            }
            let total = self.rtt(i, k) + self.rtt(k, j);
            if total.is_finite() && best.is_none_or(|(_, b)| total < b) {
                best = Some((k, total));
            }
        }
        best
    }

    /// The best path cost for `i → j` allowing either the direct link or a
    /// single relay — `min(direct, best one-hop)`.
    #[must_use]
    pub fn best_path_with_one_hop(&self, i: usize, j: usize) -> f64 {
        let direct = self.rtt(i, j);
        match self.best_one_hop(i, j) {
            Some((_, relay)) => direct.min(relay),
            None => direct,
        }
    }

    /// All-pairs shortest paths of unrestricted length (Floyd–Warshall),
    /// the reference for the multi-hop extension of section 3.
    #[must_use]
    pub fn all_pairs_shortest(&self) -> Vec<f64> {
        let n = self.n;
        let mut d = self.rtt_ms.clone();
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                if !dik.is_finite() {
                    continue;
                }
                for j in 0..n {
                    let via = dik + d[k * n + j];
                    if via < d[i * n + j] {
                        d[i * n + j] = via;
                    }
                }
            }
        }
        d
    }

    /// Serialize to a simple CSV: header `src,dst,rtt_ms,loss`, one row
    /// per ordered pair with a finite RTT. A round trip through
    /// [`from_csv`](Self::from_csv) reconstructs the matrix, so real
    /// measurement datasets (e.g. all-pairs-pings dumps) can be fed to
    /// every experiment in place of the synthetic model.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("src,dst,rtt_ms,loss\n");
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j && self.rtt(i, j).is_finite() {
                    use std::fmt::Write as _;
                    let _ = writeln!(out, "{i},{j},{},{}", self.rtt(i, j), self.loss(i, j));
                }
            }
        }
        out
    }

    /// Parse the CSV form produced by [`to_csv`](Self::to_csv) (or by any
    /// external measurement pipeline). `n` is inferred as 1 + the largest
    /// node index mentioned; pairs absent from the file stay unreachable.
    ///
    /// # Errors
    /// Returns a message describing the first malformed line.
    pub fn from_csv(csv: &str) -> Result<LatencyMatrix, String> {
        let mut triples: Vec<(usize, usize, f64, f64)> = Vec::new();
        let mut max_idx = 0usize;
        for (lineno, line) in csv.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || (lineno == 0 && line.starts_with("src")) {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 4 {
                return Err(format!("line {}: expected 4 fields", lineno + 1));
            }
            let parse_idx = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|e| format!("line {}: bad index {s:?}: {e}", lineno + 1))
            };
            let parse_f = |s: &str| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("line {}: bad number {s:?}: {e}", lineno + 1))
            };
            let (src, dst) = (parse_idx(fields[0])?, parse_idx(fields[1])?);
            let (rtt, loss) = (parse_f(fields[2])?, parse_f(fields[3])?);
            if src == dst {
                return Err(format!("line {}: self-pair {src}", lineno + 1));
            }
            if !(0.0..=1.0).contains(&loss) {
                return Err(format!(
                    "line {}: loss {loss} not a probability",
                    lineno + 1
                ));
            }
            if !rtt.is_finite() || rtt < 0.0 {
                return Err(format!("line {}: bad rtt {rtt}", lineno + 1));
            }
            max_idx = max_idx.max(src).max(dst);
            triples.push((src, dst, rtt, loss));
        }
        let n = max_idx + 1;
        let mut m = LatencyMatrix::unreachable(n);
        for (src, dst, rtt, loss) in triples {
            m.set_rtt_directed(src, dst, rtt);
            m.loss[src * n + dst] = loss;
        }
        Ok(m)
    }

    /// Restrict to the submatrix over `keep` (re-indexed in order).
    #[must_use]
    pub fn submatrix(&self, keep: &[usize]) -> LatencyMatrix {
        let m = keep.len();
        let mut out = LatencyMatrix::unreachable(m);
        for (a, &i) in keep.iter().enumerate() {
            for (b, &j) in keep.iter().enumerate() {
                out.rtt_ms[a * m + b] = self.rtt(i, j);
                out.loss[a * m + b] = self.loss(i, j);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LatencyMatrix {
        // 4 nodes: a "triangle-inequality violation" where 0→3 direct is
        // slow (500 ms) but 0→1→3 is 150 ms.
        let mut m = LatencyMatrix::unreachable(4);
        m.set_rtt(0, 1, 50.0);
        m.set_rtt(0, 2, 200.0);
        m.set_rtt(0, 3, 500.0);
        m.set_rtt(1, 2, 80.0);
        m.set_rtt(1, 3, 100.0);
        m.set_rtt(2, 3, 90.0);
        m
    }

    #[test]
    fn directed_loss_leaves_reverse_untouched() {
        let mut m = sample();
        m.set_loss(0, 1, 0.05);
        m.set_loss_directed(0, 1, 0.4);
        assert!((m.loss(0, 1) - 0.4).abs() < 1e-12);
        assert!(
            (m.loss(1, 0) - 0.05).abs() < 1e-12,
            "reverse direction kept"
        );
    }

    #[test]
    #[should_panic(expected = "loss must be a probability")]
    fn directed_loss_rejects_non_probability() {
        let mut m = sample();
        m.set_loss_directed(0, 1, 1.5);
    }

    #[test]
    fn symmetry_and_diagonal() {
        let m = sample();
        for i in 0..4 {
            assert_eq!(m.rtt(i, i), 0.0);
            for j in 0..4 {
                assert_eq!(m.rtt(i, j), m.rtt(j, i));
            }
        }
    }

    #[test]
    fn best_one_hop_finds_detour() {
        let m = sample();
        let (k, total) = m.best_one_hop(0, 3).unwrap();
        assert_eq!(k, 1);
        assert!((total - 150.0).abs() < 1e-9);
        assert!((m.best_path_with_one_hop(0, 3) - 150.0).abs() < 1e-9);
        // Direct is better for a short pair.
        assert_eq!(m.best_path_with_one_hop(0, 1), 50.0);
    }

    #[test]
    fn best_one_hop_none_when_isolated() {
        let m = LatencyMatrix::unreachable(3);
        assert!(m.best_one_hop(0, 1).is_none());
        assert!(!m.reachable(0, 1));
        assert!(m.best_path_with_one_hop(0, 1).is_infinite());
    }

    #[test]
    fn floyd_warshall_matches_one_hop_when_one_hop_optimal() {
        let m = sample();
        let apsp = m.all_pairs_shortest();
        // In this matrix two-hop paths never beat the best one-hop path.
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    continue;
                }
                let one = m.best_path_with_one_hop(i, j);
                assert!(apsp[i * 4 + j] <= one + 1e-9);
            }
        }
        assert!((apsp[3] - 150.0).abs() < 1e-9);
    }

    #[test]
    fn multi_hop_can_beat_one_hop() {
        // Line topology: 0–1–2–3 cheap, everything else expensive.
        let mut m = LatencyMatrix::uniform(4, 1000.0);
        m.set_rtt(0, 1, 10.0);
        m.set_rtt(1, 2, 10.0);
        m.set_rtt(2, 3, 10.0);
        let apsp = m.all_pairs_shortest();
        assert!((apsp[3] - 30.0).abs() < 1e-9); // 0→1→2→3
                                                // One-hop relays (1010 via either relay) lose to the direct link …
        assert_eq!(m.best_one_hop(0, 3), Some((1, 1010.0)));
        assert!((m.best_path_with_one_hop(0, 3) - 1000.0).abs() < 1e-9);
        // … and both lose to the two-hop chain.
    }

    #[test]
    fn uniform_and_unreachable_constructors() {
        let u = LatencyMatrix::uniform(5, 42.0);
        assert_eq!(u.rtt(1, 4), 42.0);
        assert_eq!(u.rtt(2, 2), 0.0);
        assert!(u.reachable(0, 1));
        let x = LatencyMatrix::unreachable(5);
        assert!(!x.reachable(0, 1));
        assert!(x.reachable(2, 2));
    }

    #[test]
    fn loss_set_get() {
        let mut m = LatencyMatrix::uniform(3, 10.0);
        m.set_loss(0, 2, 0.25);
        assert_eq!(m.loss(0, 2), 0.25);
        assert_eq!(m.loss(2, 0), 0.25);
        assert_eq!(m.loss(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn loss_rejects_out_of_range() {
        LatencyMatrix::uniform(2, 1.0).set_loss(0, 1, 1.5);
    }

    #[test]
    fn submatrix_preserves_entries() {
        let m = sample();
        let s = m.submatrix(&[0, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rtt(0, 1), 500.0);
    }

    #[test]
    fn directed_rtt_is_one_sided() {
        let mut m = LatencyMatrix::uniform(3, 100.0);
        m.set_rtt_directed(0, 1, 40.0);
        assert_eq!(m.rtt(0, 1), 40.0);
        assert_eq!(m.rtt(1, 0), 100.0);
    }

    #[test]
    fn csv_roundtrip_preserves_matrix() {
        let mut m = sample();
        m.set_loss(0, 3, 0.125);
        let csv = m.to_csv();
        let back = LatencyMatrix::from_csv(&csv).unwrap();
        assert_eq!(back.len(), 4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(back.rtt(i, j), m.rtt(i, j), "rtt ({i},{j})");
                assert_eq!(back.loss(i, j), m.loss(i, j), "loss ({i},{j})");
            }
        }
    }

    #[test]
    fn csv_preserves_asymmetry_and_unreachable() {
        let mut m = LatencyMatrix::unreachable(3);
        m.set_rtt_directed(0, 1, 40.0);
        let back = LatencyMatrix::from_csv(&m.to_csv()).unwrap();
        assert_eq!(back.rtt(0, 1), 40.0);
        assert!(!back.reachable(1, 0));
        assert!(!back.reachable(0, 2));
    }

    #[test]
    fn csv_rejects_malformed_input() {
        assert!(LatencyMatrix::from_csv("src,dst,rtt_ms,loss\n1,1,5,0\n").is_err());
        assert!(LatencyMatrix::from_csv("0,1,5\n").is_err());
        assert!(LatencyMatrix::from_csv("0,1,abc,0\n").is_err());
        assert!(LatencyMatrix::from_csv("0,1,5,1.5\n").is_err());
        assert!(LatencyMatrix::from_csv("0,1,-3,0\n").is_err());
        // Header-only / empty input yields... the largest index is 0,
        // producing a 1-node matrix.
        let empty = LatencyMatrix::from_csv("src,dst,rtt_ms,loss\n").unwrap();
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn csv_accepts_external_format() {
        // Whitespace-tolerant, any ordering of pairs.
        let csv = "src,dst,rtt_ms,loss\n2,0, 120.5 ,0.01\n0,2,119.5,0.02\n";
        let m = LatencyMatrix::from_csv(csv).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.rtt(2, 0), 120.5);
        assert_eq!(m.rtt(0, 2), 119.5);
        assert_eq!(m.loss(0, 2), 0.02);
        assert!(!m.reachable(0, 1));
    }

    #[test]
    fn pairs_iterates_all_ordered_pairs() {
        let m = LatencyMatrix::uniform(3, 5.0);
        let v: Vec<_> = m.pairs().collect();
        assert_eq!(v.len(), 6);
        assert!(v.iter().all(|&(i, j, r)| i != j && r == 5.0));
    }
}
