//! Synthetic Internet environment models.
//!
//! The paper's evaluation ran on PlanetLab: a 359-host all-pairs-pings
//! dataset for the detour study (figure 1) and a 140-node deployment with
//! real Internet failures (figures 8–14). Neither is available here, so
//! this crate builds the closest synthetic equivalents:
//!
//! * [`LatencyMatrix`] — an all-pairs RTT and loss-rate matrix.
//! * [`planetlab`] — a geography-plus-inflation latency model that
//!   reproduces the *distributional* facts figure 1 depends on: a small
//!   fraction of badly inflated long paths, most of which have a
//!   low-latency one-hop detour through a well-connected intermediary,
//!   while a randomly chosen intermediary almost never helps.
//! * [`failures`] — renewal-process link-failure schedules whose per-node
//!   concurrent-failure distribution is calibrated to figure 8 (most nodes
//!   average < 10 concurrent link failures; a heavy tail reaches the
//!   40–120 range).
//!
//! Everything is seeded and deterministic: the same parameters and seed
//! produce bit-identical environments on every run (we use `rand_chacha`
//! rather than the OS RNG for exactly this reason).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod failures;
pub mod geo;
pub mod matrix;
pub mod planetlab;
pub(crate) mod sampling;

pub use failures::{FailureParams, FailureSchedule, LinkOutage, NodeOutage};
pub use geo::{GeoPoint, Region};
pub use matrix::LatencyMatrix;
pub use planetlab::{PlanetLabParams, Topology};
