//! Small distribution samplers on top of `rand`'s uniform source.
//!
//! The workspace deliberately avoids `rand_distr`; the two shapes we need
//! (normal and log-normal) are four lines of Box–Muller.

use rand::Rng;

/// Standard normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal sample with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// Log-normal sample: `exp(N(mu, sigma))`. `mu` is the log of the median.
pub fn log_normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Exponential sample with the given mean.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn log_normal_median() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 50_001;
        let mut samples: Vec<f64> = (0..n)
            .map(|_| log_normal(&mut rng, 1.0_f64.ln(), 0.8))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 90.0)).sum::<f64>() / n as f64;
        assert!((mean - 90.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn deterministic_across_runs() {
        let a: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            (0..16).map(|_| standard_normal(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
