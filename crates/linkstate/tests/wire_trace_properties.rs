//! Property tests for the probe-batch trace-context extension:
//! encode → decode is the identity on (message, context), untraced
//! frames are bit-identical to the legacy format, and truncating a
//! traced frame at any byte boundary is an error — never a panic,
//! never a silent misparse.

use apor_linkstate::{Message, ProbeBatchMsg, ProbeItem};
use apor_quorum::NodeId;
use apor_telemetry::trace::TRACE_CTX_SIZE;
use apor_telemetry::TraceCtx;
use proptest::prelude::*;

fn arb_item() -> impl Strategy<Value = ProbeItem> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(seq, sent_ms)| ProbeItem::Ping { seq, sent_ms }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(seq, echo_sent_ms)| ProbeItem::Pong { seq, echo_sent_ms }),
        (any::<u16>(), any::<u16>())
            .prop_map(|(rtt_ms, loss_pm)| ProbeItem::Gauge { rtt_ms, loss_pm }),
    ]
}

fn arb_batch() -> impl Strategy<Value = Message> {
    (
        0u16..64,
        0u16..64,
        any::<u32>(),
        prop::collection::vec(arb_item(), 0..10),
    )
        .prop_map(|(f, t, view, items)| {
            Message::ProbeBatch(ProbeBatchMsg {
                from: NodeId(f),
                to: NodeId(t),
                view,
                items,
            })
        })
}

fn arb_ctx() -> impl Strategy<Value = TraceCtx> {
    (any::<u32>(), any::<u16>(), any::<u8>()).prop_map(|(episode, origin, hop)| TraceCtx {
        episode,
        origin,
        hop,
    })
}

proptest! {
    #[test]
    fn traced_batch_roundtrip_and_truncation_safety(msg in arb_batch(), ctx in arb_ctx()) {
        let plain = msg.encode();
        prop_assert_eq!(msg.encode_traced(None).as_ref(), plain.as_ref());
        let (decoded, none) = Message::decode_traced(&plain).expect("legacy frame decodes");
        prop_assert_eq!(&decoded, &msg);
        prop_assert_eq!(none, None);

        let traced = msg.encode_traced(Some(&ctx));
        prop_assert_eq!(traced.len(), plain.len() + TRACE_CTX_SIZE);
        let (roundtripped, got) = Message::decode_traced(&traced).expect("traced frame decodes");
        prop_assert_eq!(roundtripped, msg);
        prop_assert_eq!(got, Some(ctx));
        for cut in 0..traced.len() {
            prop_assert!(
                Message::decode_traced(&traced[..cut]).is_err(),
                "{cut}-byte prefix of a traced batch must be rejected"
            );
        }
    }

    #[test]
    fn traced_decoder_total_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        if let Ok((msg, None)) = Message::decode_traced(&bytes) {
            // Untraced accepts re-encode canonically.
            let canon = msg.encode();
            prop_assert_eq!(Message::decode(&canon).unwrap(), msg);
        }
    }
}
