//! The 3-byte link-state entry: latency, liveness and loss.

use serde::{Deserialize, Serialize};

/// A path cost in the routing metric (milliseconds of RTT).
///
/// `Cost::INFINITE` marks unusable links (dead or unknown). Costs compare
/// as plain floats; ties broken by the routing layer deterministically.
pub type Cost = f64;

/// Sentinel for an unusable link.
pub const INFINITE_COST: Cost = f64::INFINITY;

/// Integer-kernel sentinel for an unusable link (see
/// [`LinkEntry::cost_u32`]). Any real path cost is at most two live
/// `u16` legs (< 2¹⁷), so `u32::MAX` can never be produced by addition
/// and compares strictly greater than every finite cost — mirroring
/// `f64::INFINITY` in the floating-point domain exactly.
pub const INFINITE_COST_U32: u32 = u32::MAX;

/// One entry of a link-state row: what the origin node currently believes
/// about its direct link to one destination.
///
/// On the wire this is exactly the paper's 3 bytes: "two bytes for latency
/// (in milliseconds) and one byte for liveness and loss" (section 5). The
/// liveness byte packs an alive bit (bit 7) and the loss rate in half-percent
/// units (bits 0–6, saturating at 63.5 %).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkEntry {
    /// Smoothed RTT to the destination in milliseconds.
    pub latency_ms: u16,
    /// Is the link currently considered alive (fewer than 5 consecutive
    /// failed probes)?
    pub alive: bool,
    /// Estimated loss rate, in [0, 1]. Quantized on the wire.
    pub loss: f32,
}

impl LinkEntry {
    /// Wire size of one entry.
    pub const WIRE_SIZE: usize = 3;
    /// Latency value used on the wire for dead/unknown links.
    pub const DEAD_LATENCY: u16 = u16::MAX;

    /// An entry for a link that has never been measured / is down.
    #[must_use]
    pub fn dead() -> Self {
        LinkEntry {
            latency_ms: Self::DEAD_LATENCY,
            alive: false,
            loss: 1.0,
        }
    }

    /// A live entry with the given latency and loss.
    #[must_use]
    pub fn live(latency_ms: u16, loss: f32) -> Self {
        LinkEntry {
            latency_ms,
            alive: true,
            loss: loss.clamp(0.0, 1.0),
        }
    }

    /// The routing cost of this link: its latency when alive, infinite
    /// otherwise.
    #[must_use]
    pub fn cost(&self) -> Cost {
        if self.alive {
            f64::from(self.latency_ms)
        } else {
            INFINITE_COST
        }
    }

    /// The routing cost in the integer kernel's domain: the latency in
    /// whole milliseconds when alive, [`INFINITE_COST_U32`] otherwise.
    /// Exactly [`LinkEntry::cost`] — wire latencies are integers, so
    /// nothing is lost leaving `f64`.
    #[must_use]
    pub fn cost_u32(&self) -> u32 {
        if self.alive {
            u32::from(self.latency_ms)
        } else {
            INFINITE_COST_U32
        }
    }

    /// The wire liveness byte: the alive flag in bit 7 and the loss
    /// rate in half-percent units in bits 0–6 (saturating at 63.5 %) —
    /// the third byte [`LinkEntry::encode`] emits, and the byte a
    /// [`LaneRow`](crate::store::LaneRow) liveness lane stores verbatim.
    #[must_use]
    pub fn liveness_byte(&self) -> u8 {
        let loss_half_pct = ((self.loss * 200.0).round() as u32).min(127) as u8;
        (u8::from(self.alive) << 7) | loss_half_pct
    }

    /// Reassemble an entry from its wire lanes: the big-endian latency
    /// field as a `u16` plus the liveness byte. A dead link decodes
    /// with `loss = 1.0` regardless of the quantized field (a dead link
    /// loses everything), keeping encode/decode a semantic round trip.
    #[must_use]
    pub fn from_wire_parts(latency_ms: u16, liveness: u8) -> Self {
        let alive = liveness & 0x80 != 0;
        let loss = if alive {
            f32::from(liveness & 0x7F) / 200.0
        } else {
            1.0
        };
        LinkEntry {
            latency_ms,
            alive,
            loss,
        }
    }

    /// Pack into the 3-byte wire form.
    #[must_use]
    pub fn encode(&self) -> [u8; 3] {
        let lat = if self.alive {
            self.latency_ms.min(Self::DEAD_LATENCY - 1)
        } else {
            Self::DEAD_LATENCY
        };
        let lat_b = lat.to_be_bytes();
        [lat_b[0], lat_b[1], self.liveness_byte()]
    }

    /// Unpack from the 3-byte wire form (see
    /// [`LinkEntry::from_wire_parts`]).
    #[must_use]
    pub fn decode(bytes: [u8; 3]) -> Self {
        Self::from_wire_parts(u16::from_be_bytes([bytes[0], bytes[1]]), bytes[2])
    }

    /// Quantize an RTT measured in (possibly fractional) milliseconds to
    /// the wire's integer resolution, saturating below the dead sentinel.
    #[must_use]
    pub fn quantize_latency(rtt_ms: f64) -> u16 {
        if !rtt_ms.is_finite() || rtt_ms < 0.0 {
            return Self::DEAD_LATENCY;
        }
        (rtt_ms.round() as u64).min(u64::from(Self::DEAD_LATENCY - 1)) as u16
    }
}

impl Default for LinkEntry {
    fn default() -> Self {
        Self::dead()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_live_entry() {
        let e = LinkEntry::live(182, 0.035);
        let d = LinkEntry::decode(e.encode());
        assert_eq!(d.latency_ms, 182);
        assert!(d.alive);
        assert!((d.loss - 0.035).abs() < 0.005, "loss {}", d.loss);
    }

    #[test]
    fn roundtrip_dead_entry() {
        let d = LinkEntry::decode(LinkEntry::dead().encode());
        assert!(!d.alive);
        assert_eq!(d.latency_ms, LinkEntry::DEAD_LATENCY);
        assert!(d.cost().is_infinite());
    }

    #[test]
    fn cost_semantics() {
        assert_eq!(LinkEntry::live(250, 0.0).cost(), 250.0);
        assert!(LinkEntry::dead().cost().is_infinite());
        let mut e = LinkEntry::live(10, 0.0);
        e.alive = false;
        assert!(e.cost().is_infinite());
    }

    #[test]
    fn loss_saturates_at_wire_max() {
        let e = LinkEntry::live(10, 0.9);
        let d = LinkEntry::decode(e.encode());
        assert!((d.loss - 0.635).abs() < 1e-6, "saturated loss {}", d.loss);
    }

    #[test]
    fn live_latency_never_collides_with_dead_sentinel() {
        let e = LinkEntry::live(u16::MAX, 0.0);
        let d = LinkEntry::decode(e.encode());
        assert!(d.alive);
        assert_eq!(d.latency_ms, u16::MAX - 1);
    }

    #[test]
    fn quantize_latency_rounds_and_saturates() {
        assert_eq!(LinkEntry::quantize_latency(12.4), 12);
        assert_eq!(LinkEntry::quantize_latency(12.6), 13);
        assert_eq!(
            LinkEntry::quantize_latency(1e9),
            LinkEntry::DEAD_LATENCY - 1
        );
        assert_eq!(
            LinkEntry::quantize_latency(f64::INFINITY),
            LinkEntry::DEAD_LATENCY
        );
        assert_eq!(LinkEntry::quantize_latency(-1.0), LinkEntry::DEAD_LATENCY);
        assert_eq!(
            LinkEntry::quantize_latency(f64::NAN),
            LinkEntry::DEAD_LATENCY
        );
    }

    #[test]
    fn wire_size_is_three_bytes() {
        assert_eq!(LinkEntry::live(1, 0.0).encode().len(), LinkEntry::WIRE_SIZE);
    }

    #[test]
    fn roundtrip_all_loss_quanta() {
        for q in 0u8..=127 {
            let loss = f32::from(q) / 200.0;
            let d = LinkEntry::decode(LinkEntry::live(55, loss).encode());
            assert!((d.loss - loss).abs() < 1e-6);
        }
    }
}
