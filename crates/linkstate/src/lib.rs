//! Link-state machinery for the RON-like overlay (paper section 5).
//!
//! Three concerns live here, all I/O-free:
//!
//! * [`entry`] / [`table`] — the `n × n` partial link-state table each node
//!   maintains: its own probed row plus the rows received from rendezvous
//!   clients, with per-row receipt timestamps for the freshness rules of
//!   section 6.2.2.
//! * [`estimator`] — per-neighbour latency EWMA, loss window and the
//!   5-consecutive-failed-probes liveness rule of RON.
//! * [`wire`] — the compact binary message formats. The paper's section 6
//!   bandwidth formulas (probing `49.1·n` bps; RON routing
//!   `1.6·n² + 24.5·n` bps; quorum routing
//!   `6.4·n·√n + 17.1·n + ~200·√n` bps) pin down the message sizes
//!   exactly: 18-byte probes, `21 + 3n`-byte link-state messages,
//!   `23 + 4·k`-byte recommendation messages, all riding on 28 bytes of
//!   IP+UDP framing. The codec here reproduces those sizes byte-for-byte
//!   and the tests assert them.

#![forbid(unsafe_code)]
// The numeric kernels index several arrays with one loop counter;
// iterator rewrites obscure them without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod entry;
pub mod estimator;
pub mod table;
pub mod wire;

pub use entry::{Cost, LinkEntry};
pub use estimator::{LinkEstimator, ProbeOutcome};
pub use table::LinkStateTable;
pub use wire::{
    LinkStateMsg, Message, ProbeMsg, ProbeReplyMsg, RecEntry, RecFormat, RecommendationMsg,
    LINKSTATE_HEADER_SIZE, PROBE_WIRE_SIZE, REC_HEADER_SIZE, UDP_IP_OVERHEAD,
};
