//! Link-state machinery for the RON-like overlay (paper section 5).
//!
//! Four concerns live here, all I/O-free:
//!
//! * [`store`] — the [`LinkStateStore`] trait (storage + the round-two
//!   best-hop kernel, written once) and the sparse [`RowStore`]: an
//!   indexed map `origin row → (receipt time, lanes)` holding exactly
//!   the rows a node's role entitles it to — its own row plus its
//!   `~2√n` rendezvous clients' rows — so per-node state is the
//!   paper's `O(n√n)` bound instead of `O(n²)`. Rows are stored
//!   struct-of-arrays ([`LaneRow`]): parallel `dst`/`latency_ms`/
//!   liveness lanes holding the exact wire bytes, ~5 B per live entry,
//!   and the round-two kernel runs integer-only over the latency lanes
//!   (`u32` adds, `u32::MAX` infinite sentinel). This is exact, not an
//!   approximation: the wire format is already fixed-point — latencies
//!   are integer milliseconds in a `u16`, loss is quantized to
//!   half-percent units — so integer cost arithmetic reproduces the
//!   `f64` kernel bit-for-bit (two `u16` legs cannot overflow or round
//!   in either domain). Rows carry receipt timestamps for the
//!   3-routing-interval freshness rule of section 6.2.2; an optional
//!   row entitlement is debug-asserted so a protocol regression back
//!   to `O(n)` rows fails loudly.
//! * [`table`] / [`entry`] — the dense `n × n` table, kept for the
//!   full-mesh baseline (which holds every row by design) and as the
//!   reference store in tests; it implements the same trait, so both
//!   stores run the identical kernel.
//! * [`estimator`] — per-neighbour latency EWMA, loss window and the
//!   5-consecutive-failed-probes liveness rule of RON.
//! * [`wire`] — the compact binary message formats. The paper's section 6
//!   bandwidth formulas (probing `49.1·n` bps; RON routing
//!   `1.6·n² + 24.5·n` bps; quorum routing
//!   `6.4·n·√n + 17.1·n + ~200·√n` bps) pin down the message sizes
//!   exactly: 18-byte probes, `21 + 3n`-byte link-state messages,
//!   `23 + 4·k`-byte recommendation messages, all riding on 28 bytes of
//!   IP+UDP framing. The codec here reproduces those sizes byte-for-byte
//!   and the tests assert them.

#![forbid(unsafe_code)]
// The numeric kernels index several arrays with one loop counter;
// iterator rewrites obscure them without changing the codegen.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod entry;
pub mod estimator;
pub mod store;
pub mod table;
pub mod wire;

pub use entry::{Cost, LinkEntry, INFINITE_COST, INFINITE_COST_U32};
pub use estimator::{LinkEstimator, ProbeOutcome};
pub use store::{
    best_one_hop_rows, seqno_newer, LaneRow, LinkStateStore, LiveEntries, RowCursor, RowRef,
    RowStore,
};
pub use table::LinkStateTable;
pub use wire::{
    ls_trailer_size, LinkStateMsg, Message, ProbeBatchMsg, ProbeItem, ProbeMsg, ProbeReplyMsg,
    RecEntry, RecFormat, RecommendationMsg, SparseLinkStateMsg, LINKSTATE_HEADER_SIZE,
    LS_FLAG_SEQNO, LS_SEQNO_TRAILER_BASE, PROBE_BATCH_HEADER_SIZE, PROBE_FLAG_TRACE,
    PROBE_WIRE_SIZE, REC_HEADER_SIZE, SPARSE_LINKSTATE_HEADER_SIZE, UDP_IP_OVERHEAD,
};
