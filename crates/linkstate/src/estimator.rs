//! Per-neighbour link estimation: latency EWMA, loss window, liveness.
//!
//! Matches RON's link monitoring as described in section 5: each node
//! records "an exponentially weighted moving average of the latency to
//! every other node", marks a neighbour dead "after 5 consecutive failed
//! probes", and temporarily increases the probing rate after a first loss
//! so that failures are detected "within 1 probing period" (the rapid
//! re-probe timing itself lives in the prober; this module only tracks the
//! outcome statistics and liveness state).

use crate::entry::LinkEntry;
use serde::{Deserialize, Serialize};

/// The observable outcome of one probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ProbeOutcome {
    /// A reply arrived with the given RTT in milliseconds.
    Reply {
        /// Measured round-trip time, ms.
        rtt_ms: f64,
    },
    /// The probe timed out.
    Timeout,
}

/// Estimator state for one directed link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkEstimator {
    /// EWMA smoothing factor for latency (weight of the new sample).
    alpha: f64,
    /// Number of consecutive failed probes that marks the link dead.
    death_threshold: u32,
    /// Smoothed RTT, ms. `None` until the first reply.
    ewma_ms: Option<f64>,
    /// Consecutive failed probes so far.
    consecutive_failures: u32,
    /// Sliding window of recent outcomes for the loss estimate
    /// (true = lost), most recent last.
    window: Vec<bool>,
    /// Capacity of the loss window.
    window_cap: usize,
    /// Total probes / losses (diagnostics).
    probes: u64,
    losses: u64,
}

impl LinkEstimator {
    /// RON's liveness threshold: 5 consecutive failed probes.
    pub const DEFAULT_DEATH_THRESHOLD: u32 = 5;
    /// Default EWMA weight for new samples.
    pub const DEFAULT_ALPHA: f64 = 0.3;
    /// Default loss-window length (probes).
    pub const DEFAULT_WINDOW: usize = 20;

    /// A fresh estimator with the paper's parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::with_params(
            Self::DEFAULT_ALPHA,
            Self::DEFAULT_DEATH_THRESHOLD,
            Self::DEFAULT_WINDOW,
        )
    }

    /// A fresh estimator with explicit parameters.
    ///
    /// # Panics
    /// Panics unless `0 < alpha ≤ 1`, `death_threshold ≥ 1`, `window ≥ 1`.
    #[must_use]
    pub fn with_params(alpha: f64, death_threshold: u32, window: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        assert!(death_threshold >= 1, "death threshold must be positive");
        assert!(window >= 1, "window must be positive");
        LinkEstimator {
            alpha,
            death_threshold,
            ewma_ms: None,
            consecutive_failures: 0,
            window: Vec::with_capacity(window),
            window_cap: window,
            probes: 0,
            losses: 0,
        }
    }

    /// Record a probe outcome.
    pub fn record(&mut self, outcome: ProbeOutcome) {
        self.probes += 1;
        match outcome {
            ProbeOutcome::Reply { rtt_ms } => {
                self.consecutive_failures = 0;
                self.ewma_ms = Some(match self.ewma_ms {
                    None => rtt_ms,
                    Some(prev) => prev + self.alpha * (rtt_ms - prev),
                });
                self.push_window(false);
            }
            ProbeOutcome::Timeout => {
                self.consecutive_failures += 1;
                self.losses += 1;
                self.push_window(true);
            }
        }
    }

    fn push_window(&mut self, lost: bool) {
        if self.window.len() == self.window_cap {
            self.window.remove(0);
        }
        self.window.push(lost);
    }

    /// Is the link alive (fewer consecutive failures than the threshold,
    /// and at least one reply ever seen)?
    #[must_use]
    pub fn alive(&self) -> bool {
        self.ewma_ms.is_some() && self.consecutive_failures < self.death_threshold
    }

    /// True the moment the most recent probe failed (used by the prober to
    /// switch to rapid re-probing).
    #[must_use]
    pub fn in_loss_burst(&self) -> bool {
        self.consecutive_failures > 0
    }

    /// Consecutive failures so far.
    #[must_use]
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Smoothed RTT estimate, ms.
    #[must_use]
    pub fn latency_ms(&self) -> Option<f64> {
        self.ewma_ms
    }

    /// Loss rate over the sliding window (0 when no probes yet).
    #[must_use]
    pub fn loss_rate(&self) -> f64 {
        if self.window.is_empty() {
            return 0.0;
        }
        self.window.iter().filter(|&&l| l).count() as f64 / self.window.len() as f64
    }

    /// Lifetime probe and loss counters `(probes, losses)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (self.probes, self.losses)
    }

    /// Render the current estimate as a wire [`LinkEntry`].
    #[must_use]
    pub fn to_entry(&self) -> LinkEntry {
        if self.alive() {
            LinkEntry::live(
                LinkEntry::quantize_latency(self.ewma_ms.unwrap_or(f64::INFINITY)),
                self.loss_rate() as f32,
            )
        } else {
            LinkEntry::dead()
        }
    }
}

impl Default for LinkEstimator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_dead_until_first_reply() {
        let mut e = LinkEstimator::new();
        assert!(!e.alive());
        assert_eq!(e.latency_ms(), None);
        e.record(ProbeOutcome::Reply { rtt_ms: 40.0 });
        assert!(e.alive());
        assert_eq!(e.latency_ms(), Some(40.0));
    }

    #[test]
    fn ewma_converges_towards_samples() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 100.0 });
        for _ in 0..50 {
            e.record(ProbeOutcome::Reply { rtt_ms: 20.0 });
        }
        let l = e.latency_ms().unwrap();
        assert!((l - 20.0).abs() < 0.5, "ewma {l}");
    }

    #[test]
    fn ewma_smooths_outliers() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 50.0 });
        e.record(ProbeOutcome::Reply { rtt_ms: 500.0 });
        let l = e.latency_ms().unwrap();
        // One 10× outlier moves the estimate by α, not to the outlier.
        assert!((l - (50.0 + 0.3 * 450.0)).abs() < 1e-9);
    }

    #[test]
    fn dies_after_five_consecutive_failures() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 30.0 });
        for k in 0..4 {
            e.record(ProbeOutcome::Timeout);
            assert!(e.alive(), "still alive after {} failures", k + 1);
        }
        e.record(ProbeOutcome::Timeout);
        assert!(!e.alive(), "dead after 5 consecutive failures");
        // A reply resurrects the link.
        e.record(ProbeOutcome::Reply { rtt_ms: 35.0 });
        assert!(e.alive());
        assert_eq!(e.consecutive_failures(), 0);
    }

    #[test]
    fn interleaved_failures_do_not_kill() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 30.0 });
        for _ in 0..20 {
            e.record(ProbeOutcome::Timeout);
            e.record(ProbeOutcome::Timeout);
            e.record(ProbeOutcome::Reply { rtt_ms: 30.0 });
        }
        assert!(e.alive());
        assert!(e.loss_rate() > 0.5);
    }

    #[test]
    fn loss_rate_windowed() {
        let mut e = LinkEstimator::with_params(0.3, 5, 10);
        for _ in 0..10 {
            e.record(ProbeOutcome::Timeout);
        }
        assert_eq!(e.loss_rate(), 1.0);
        for _ in 0..10 {
            e.record(ProbeOutcome::Reply { rtt_ms: 10.0 });
        }
        assert_eq!(e.loss_rate(), 0.0, "old losses age out of the window");
    }

    #[test]
    fn loss_burst_flag() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 10.0 });
        assert!(!e.in_loss_burst());
        e.record(ProbeOutcome::Timeout);
        assert!(e.in_loss_burst());
        e.record(ProbeOutcome::Reply { rtt_ms: 10.0 });
        assert!(!e.in_loss_burst());
    }

    #[test]
    fn to_entry_reflects_state() {
        let mut e = LinkEstimator::new();
        assert!(!e.to_entry().alive);
        e.record(ProbeOutcome::Reply { rtt_ms: 77.4 });
        let entry = e.to_entry();
        assert!(entry.alive);
        assert_eq!(entry.latency_ms, 77);
        for _ in 0..5 {
            e.record(ProbeOutcome::Timeout);
        }
        assert!(!e.to_entry().alive);
    }

    #[test]
    fn counters_track_lifetime() {
        let mut e = LinkEstimator::new();
        e.record(ProbeOutcome::Reply { rtt_ms: 1.0 });
        e.record(ProbeOutcome::Timeout);
        e.record(ProbeOutcome::Timeout);
        assert_eq!(e.counters(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let _ = LinkEstimator::with_params(0.0, 5, 10);
    }
}
