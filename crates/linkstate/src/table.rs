//! The dense `n × n` link-state table — the full-mesh baseline's store.
//!
//! Kept for the RON baseline (which genuinely holds every row) and as
//! the reference implementation in tests; quorum nodes use the sparse
//! [`RowStore`](crate::store::RowStore) instead. All route computation
//! lives in the [`LinkStateStore`] trait, written once over both.

use crate::entry::LinkEntry;
use crate::store::{LinkStateStore, RowRef};
use serde::{Deserialize, Serialize};

/// A node's dense view of the full `n × n` link-state matrix.
///
/// Row `i` holds node `i`'s own measurements of its direct links. A node
/// populates its own row from its probers and the other rows from the
/// link-state messages of its rendezvous clients (or, in the full-mesh
/// baseline, of everyone). Rows carry the receipt time so the round-two
/// computation can ignore stale data — the paper accepts measurements
/// "sent to it within the last 3 routing intervals" (section 6.2.2).
///
/// Indices are membership/grid indices, not raw [`NodeId`]s; the overlay
/// layer owns that mapping and remaps stores on membership change.
///
/// [`NodeId`]: apor_quorum::NodeId
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStateTable {
    n: usize,
    entries: Vec<LinkEntry>,
    /// Receipt time (seconds) of each row; `None` = never received.
    row_time: Vec<Option<f64>>,
}

impl LinkStateTable {
    /// An empty table over `n` nodes (all entries dead, all rows unknown).
    #[must_use]
    pub fn new(n: usize) -> Self {
        LinkStateTable {
            n,
            entries: vec![LinkEntry::dead(); n * n],
            row_time: vec![None; n],
        }
    }
}

impl LinkStateStore for LinkStateTable {
    fn len(&self) -> usize {
        self.n
    }

    fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        assert_eq!(entries.len(), self.n, "row must have n entries");
        self.entries[origin * self.n..(origin + 1) * self.n].copy_from_slice(entries);
        self.row_time[origin] = Some(now);
    }

    fn update_row_sparse(&mut self, origin: usize, entries: &[(u16, LinkEntry)], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let row = &mut self.entries[origin * self.n..(origin + 1) * self.n];
        row.fill(LinkEntry::dead());
        for &(dst, e) in entries {
            row[dst as usize] = e;
        }
        self.row_time[origin] = Some(now);
    }

    fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64) {
        assert!(origin < self.n && dst < self.n);
        self.entries[origin * self.n + dst] = entry;
        self.row_time[origin] = Some(now);
    }

    fn clear_row(&mut self, origin: usize) {
        for e in &mut self.entries[origin * self.n..(origin + 1) * self.n] {
            *e = LinkEntry::dead();
        }
        self.row_time[origin] = None;
    }

    fn row_ref(&self, origin: usize) -> Option<RowRef<'_>> {
        self.row_time[origin]?;
        Some(RowRef::Dense(
            &self.entries[origin * self.n..(origin + 1) * self.n],
        ))
    }

    fn row_time(&self, origin: usize) -> Option<f64> {
        self.row_time[origin]
    }

    fn present_rows(&self) -> Vec<usize> {
        (0..self.n)
            .filter(|&i| self.row_time[i].is_some())
            .collect()
    }

    fn row_count(&self) -> usize {
        self.row_time.iter().filter(|t| t.is_some()).count()
    }

    fn entry_count(&self) -> usize {
        // Dense: the full matrix is allocated whether received or not.
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_row(costs: &[u16]) -> Vec<LinkEntry> {
        costs.iter().map(|&c| LinkEntry::live(c, 0.0)).collect()
    }

    /// A 4-node world where 0→3 direct is 500 ms but 0→1→3 is 150 ms.
    fn detour_table() -> LinkStateTable {
        let mut t = LinkStateTable::new(4);
        t.update_row(0, &live_row(&[0, 50, 200, 500]), 10.0);
        t.update_row(1, &live_row(&[50, 0, 80, 100]), 10.0);
        t.update_row(2, &live_row(&[200, 80, 0, 90]), 10.0);
        t.update_row(3, &live_row(&[500, 100, 90, 0]), 10.0);
        t
    }

    #[test]
    fn best_one_hop_finds_detour() {
        let t = detour_table();
        let (hop, cost) = t.best_one_hop(0, 3, 11.0, 45.0).unwrap();
        assert_eq!(hop, 1);
        assert_eq!(cost, 150.0);
    }

    #[test]
    fn best_one_hop_prefers_direct_on_tie() {
        let mut t = LinkStateTable::new(3);
        t.update_row(0, &live_row(&[0, 50, 100]), 0.0);
        t.update_row(1, &live_row(&[50, 0, 50]), 0.0);
        t.update_row(2, &live_row(&[100, 50, 0]), 0.0);
        // 0→2 direct = 100 = 0→1→2; prefer direct (hop == dst).
        let (hop, cost) = t.best_one_hop(0, 2, 1.0, 45.0).unwrap();
        assert_eq!(hop, 2);
        assert_eq!(cost, 100.0);
    }

    #[test]
    fn best_one_hop_requires_fresh_rows() {
        let t = detour_table();
        // Rows stamped at t=10; at now=100 with max_age=45 they're stale.
        assert!(t.best_one_hop(0, 3, 100.0, 45.0).is_none());
        assert!(t.best_one_hop(0, 3, 55.0, 45.0).is_some());
    }

    #[test]
    fn best_one_hop_missing_row_is_none() {
        let mut t = LinkStateTable::new(3);
        t.update_row(0, &live_row(&[0, 10, 10]), 0.0);
        assert!(t.best_one_hop(0, 2, 0.0, 45.0).is_none());
    }

    #[test]
    fn best_one_hop_skips_dead_links() {
        let mut t = detour_table();
        // Kill 0→1 (in 0's row): detour must shift to hop 2 (200+90=290).
        t.update_entry(0, 1, LinkEntry::dead(), 10.0);
        let (hop, cost) = t.best_one_hop(0, 3, 11.0, 45.0).unwrap();
        assert_eq!(hop, 2);
        assert_eq!(cost, 290.0);
    }

    #[test]
    fn best_one_hop_uses_min_direction_for_direct() {
        let mut t = LinkStateTable::new(2);
        t.update_row(0, &live_row(&[0, 300]), 0.0);
        t.update_row(1, &live_row(&[200, 0]), 0.0);
        let (hop, cost) = t.best_one_hop(0, 1, 0.0, 45.0).unwrap();
        assert_eq!(hop, 1);
        assert_eq!(cost, 200.0);
    }

    #[test]
    fn all_dead_returns_none() {
        let mut t = LinkStateTable::new(3);
        t.update_row(
            0,
            &[LinkEntry::dead(), LinkEntry::dead(), LinkEntry::dead()],
            0.0,
        );
        t.update_row(
            2,
            &[LinkEntry::dead(), LinkEntry::dead(), LinkEntry::dead()],
            0.0,
        );
        assert!(t.best_one_hop(0, 2, 0.0, 45.0).is_none());
    }

    #[test]
    fn one_hop_options_sorted() {
        let t = detour_table();
        let opts = t.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0], (1, 150.0));
        assert_eq!(opts[1], (2, 290.0));
    }

    #[test]
    fn one_hop_options_skip_stale_relays() {
        let mut t = detour_table();
        t.clear_row(1);
        let opts = t.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts, vec![(2, 290.0)]);
    }

    #[test]
    fn anyone_reaches_sees_live_entries() {
        let mut t = LinkStateTable::new(3);
        assert!(!t.anyone_reaches(2, 0.0, 45.0));
        t.update_row(1, &live_row(&[10, 0, 10]), 0.0);
        assert!(t.anyone_reaches(2, 1.0, 45.0));
        // Staleness disqualifies.
        assert!(!t.anyone_reaches(2, 100.0, 45.0));
        // A dead entry doesn't count.
        let mut dead_row = live_row(&[10, 0, 10]);
        dead_row[2] = LinkEntry::dead();
        t.update_row(1, &dead_row, 200.0);
        assert!(!t.anyone_reaches(2, 201.0, 45.0));
    }

    #[test]
    fn clear_row_resets() {
        let mut t = detour_table();
        t.clear_row(0);
        assert!(t.row_time(0).is_none());
        assert!(t.cost(0, 1).is_infinite());
        assert_eq!(t.cost(0, 0), 0.0);
    }

    #[test]
    fn path_cost_direct_and_relayed() {
        let t = detour_table();
        assert_eq!(t.path_cost(0, 3, 3), 500.0);
        assert_eq!(t.path_cost(0, 1, 3), 150.0);
    }

    #[test]
    fn row_age_tracking() {
        let mut t = LinkStateTable::new(2);
        assert_eq!(t.row_age(0, 5.0), None);
        t.update_row(0, &live_row(&[0, 5]), 3.0);
        assert_eq!(t.row_age(0, 5.0), Some(2.0));
        assert!(t.row_fresh(0, 5.0, 2.0));
        assert!(!t.row_fresh(0, 5.1, 2.0));
    }

    #[test]
    fn state_accounting_is_dense() {
        let mut t = LinkStateTable::new(5);
        assert_eq!(t.entry_count(), 25, "dense allocates n² regardless");
        assert_eq!(t.row_count(), 0);
        t.update_row(3, &live_row(&[1, 1, 1, 1, 1]), 0.0);
        assert_eq!(t.row_count(), 1);
        assert_eq!(t.present_rows(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_row_bounds_checked() {
        LinkStateTable::new(2).update_row(2, &live_row(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "n entries")]
    fn update_row_length_checked() {
        LinkStateTable::new(3).update_row(0, &live_row(&[0, 1]), 0.0);
    }
}
