//! The partial `n × n` link-state table and the round-two best-hop kernel.

use crate::entry::{Cost, LinkEntry, INFINITE_COST};
use serde::{Deserialize, Serialize};

/// A node's partial view of the full `n × n` link-state matrix.
///
/// Row `i` holds node `i`'s own measurements of its direct links. A node
/// populates its own row from its probers and the other rows from the
/// link-state messages of its rendezvous clients (or, in the full-mesh
/// baseline, of everyone). Rows carry the receipt time so the round-two
/// computation can ignore stale data — the paper accepts measurements
/// "sent to it within the last 3 routing intervals" (section 6.2.2).
///
/// Indices are membership/grid indices, not raw [`NodeId`]s; the overlay
/// layer owns that mapping and rebuilds tables on membership change.
///
/// [`NodeId`]: apor_quorum::NodeId
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkStateTable {
    n: usize,
    entries: Vec<LinkEntry>,
    /// Receipt time (seconds) of each row; `None` = never received.
    row_time: Vec<Option<f64>>,
}

impl LinkStateTable {
    /// An empty table over `n` nodes (all entries dead, all rows unknown).
    #[must_use]
    pub fn new(n: usize) -> Self {
        LinkStateTable {
            n,
            entries: vec![LinkEntry::dead(); n * n],
            row_time: vec![None; n],
        }
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Replace row `origin` with `entries`, stamped at `now` seconds.
    ///
    /// # Panics
    /// Panics if `entries.len() != n` or `origin ≥ n`.
    pub fn update_row(&mut self, origin: usize, entries: &[LinkEntry], now: f64) {
        assert!(origin < self.n, "row {origin} out of range");
        assert_eq!(entries.len(), self.n, "row must have n entries");
        self.entries[origin * self.n..(origin + 1) * self.n].copy_from_slice(entries);
        self.row_time[origin] = Some(now);
    }

    /// Update a single entry of a row (used for the node's own row, which
    /// its probers refresh incrementally).
    pub fn update_entry(&mut self, origin: usize, dst: usize, entry: LinkEntry, now: f64) {
        assert!(origin < self.n && dst < self.n);
        self.entries[origin * self.n + dst] = entry;
        self.row_time[origin] = Some(now);
    }

    /// The entry `origin → dst`.
    #[must_use]
    pub fn entry(&self, origin: usize, dst: usize) -> LinkEntry {
        self.entries[origin * self.n + dst]
    }

    /// Routing cost of `origin → dst` (infinite when dead/unknown).
    #[must_use]
    pub fn cost(&self, origin: usize, dst: usize) -> Cost {
        if origin == dst {
            return 0.0;
        }
        self.entry(origin, dst).cost()
    }

    /// Full row of `origin`.
    #[must_use]
    pub fn row(&self, origin: usize) -> &[LinkEntry] {
        &self.entries[origin * self.n..(origin + 1) * self.n]
    }

    /// Receipt time of row `origin`.
    #[must_use]
    pub fn row_time(&self, origin: usize) -> Option<f64> {
        self.row_time[origin]
    }

    /// Age of row `origin` at time `now`, if ever received.
    #[must_use]
    pub fn row_age(&self, origin: usize, now: f64) -> Option<f64> {
        self.row_time[origin].map(|t| now - t)
    }

    /// Is row `origin` present and no older than `max_age` at `now`?
    #[must_use]
    pub fn row_fresh(&self, origin: usize, now: f64, max_age: f64) -> bool {
        self.row_age(origin, now).is_some_and(|a| a <= max_age)
    }

    /// Forget a row (e.g. on membership change or client loss).
    pub fn clear_row(&mut self, origin: usize) {
        for e in &mut self.entries[origin * self.n..(origin + 1) * self.n] {
            *e = LinkEntry::dead();
        }
        self.row_time[origin] = None;
    }

    /// **The round-two kernel.** Best one-hop path `a → h → b` (or the
    /// direct link, represented as `h == b`) computable from rows `a` and
    /// `b`, both of which must be fresh (≤ `max_age` at `now`).
    ///
    /// Link costs are assumed symmetric (paper section 3), so the path
    /// cost is `row_a[h] + row_b[h]`; the direct cost is the *minimum* of
    /// the two directions' estimates (they may disagree transiently).
    /// Ties prefer the direct link, then the lowest hop index, making the
    /// recommendation deterministic across rendezvous servers with
    /// identical data.
    ///
    /// Returns `None` when either row is missing/stale or no finite path
    /// exists.
    #[must_use]
    pub fn best_one_hop(
        &self,
        a: usize,
        b: usize,
        now: f64,
        max_age: f64,
    ) -> Option<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) || !self.row_fresh(b, now, max_age) {
            return None;
        }
        let row_a = self.row(a);
        let row_b = self.row(b);
        let direct = row_a[b].cost().min(row_b[a].cost());
        let mut best_hop = b;
        let mut best_cost = direct;
        for h in 0..self.n {
            if h == a || h == b {
                continue;
            }
            let c = row_a[h].cost() + row_b[h].cost();
            if c < best_cost {
                best_cost = c;
                best_hop = h;
            }
        }
        best_cost.is_finite().then_some((best_hop, best_cost))
    }

    /// All one-hop options from `a` to `b` with finite cost, sorted by
    /// cost (the §4.2 "redundant link-state information" scavenging uses
    /// this over the rows a node happens to hold).
    #[must_use]
    pub fn one_hop_options(
        &self,
        a: usize,
        b: usize,
        now: f64,
        max_age: f64,
    ) -> Vec<(usize, Cost)> {
        if a == b || !self.row_fresh(a, now, max_age) {
            return Vec::new();
        }
        let row_a = self.row(a);
        let mut out = Vec::new();
        for h in 0..self.n {
            if h == a || h == b {
                continue;
            }
            if !self.row_fresh(h, now, max_age) {
                continue;
            }
            let c = row_a[h].cost() + self.cost(h, b);
            if c.is_finite() {
                out.push((h, c));
            }
        }
        out.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(x.0.cmp(&y.0)));
        out
    }

    /// Does any fresh row report `dst` as alive? (Used to decide whether a
    /// destination has failed outright — section 4.1's "check if any of
    /// its rendezvous clients' link-state tables show that Dst is
    /// reachable".)
    #[must_use]
    pub fn anyone_reaches(&self, dst: usize, now: f64, max_age: f64) -> bool {
        (0..self.n).any(|origin| {
            origin != dst && self.row_fresh(origin, now, max_age) && self.entry(origin, dst).alive
        })
    }

    /// The cost of the path `a → h → b` using current rows; infinite when
    /// anything is missing. `h == b` means the direct link.
    #[must_use]
    pub fn path_cost(&self, a: usize, h: usize, b: usize) -> Cost {
        if h == b {
            return self.cost(a, b);
        }
        let c = self.cost(a, h) + self.cost(h, b);
        if c.is_finite() {
            c
        } else {
            INFINITE_COST
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_row(costs: &[u16]) -> Vec<LinkEntry> {
        costs.iter().map(|&c| LinkEntry::live(c, 0.0)).collect()
    }

    /// A 4-node world where 0→3 direct is 500 ms but 0→1→3 is 150 ms.
    fn detour_table() -> LinkStateTable {
        let mut t = LinkStateTable::new(4);
        t.update_row(0, &live_row(&[0, 50, 200, 500]), 10.0);
        t.update_row(1, &live_row(&[50, 0, 80, 100]), 10.0);
        t.update_row(2, &live_row(&[200, 80, 0, 90]), 10.0);
        t.update_row(3, &live_row(&[500, 100, 90, 0]), 10.0);
        t
    }

    #[test]
    fn best_one_hop_finds_detour() {
        let t = detour_table();
        let (hop, cost) = t.best_one_hop(0, 3, 11.0, 45.0).unwrap();
        assert_eq!(hop, 1);
        assert_eq!(cost, 150.0);
    }

    #[test]
    fn best_one_hop_prefers_direct_on_tie() {
        let mut t = LinkStateTable::new(3);
        t.update_row(0, &live_row(&[0, 50, 100]), 0.0);
        t.update_row(1, &live_row(&[50, 0, 50]), 0.0);
        t.update_row(2, &live_row(&[100, 50, 0]), 0.0);
        // 0→2 direct = 100 = 0→1→2; prefer direct (hop == dst).
        let (hop, cost) = t.best_one_hop(0, 2, 1.0, 45.0).unwrap();
        assert_eq!(hop, 2);
        assert_eq!(cost, 100.0);
    }

    #[test]
    fn best_one_hop_requires_fresh_rows() {
        let t = detour_table();
        // Rows stamped at t=10; at now=100 with max_age=45 they're stale.
        assert!(t.best_one_hop(0, 3, 100.0, 45.0).is_none());
        assert!(t.best_one_hop(0, 3, 55.0, 45.0).is_some());
    }

    #[test]
    fn best_one_hop_missing_row_is_none() {
        let mut t = LinkStateTable::new(3);
        t.update_row(0, &live_row(&[0, 10, 10]), 0.0);
        assert!(t.best_one_hop(0, 2, 0.0, 45.0).is_none());
    }

    #[test]
    fn best_one_hop_skips_dead_links() {
        let mut t = detour_table();
        // Kill 0→1 (in 0's row): detour must shift to hop 2 (200+90=290).
        t.update_entry(0, 1, LinkEntry::dead(), 10.0);
        let (hop, cost) = t.best_one_hop(0, 3, 11.0, 45.0).unwrap();
        assert_eq!(hop, 2);
        assert_eq!(cost, 290.0);
    }

    #[test]
    fn best_one_hop_uses_min_direction_for_direct() {
        let mut t = LinkStateTable::new(2);
        t.update_row(0, &live_row(&[0, 300]), 0.0);
        t.update_row(1, &live_row(&[200, 0]), 0.0);
        let (hop, cost) = t.best_one_hop(0, 1, 0.0, 45.0).unwrap();
        assert_eq!(hop, 1);
        assert_eq!(cost, 200.0);
    }

    #[test]
    fn all_dead_returns_none() {
        let mut t = LinkStateTable::new(3);
        t.update_row(
            0,
            &[LinkEntry::dead(), LinkEntry::dead(), LinkEntry::dead()],
            0.0,
        );
        t.update_row(
            2,
            &[LinkEntry::dead(), LinkEntry::dead(), LinkEntry::dead()],
            0.0,
        );
        assert!(t.best_one_hop(0, 2, 0.0, 45.0).is_none());
    }

    #[test]
    fn one_hop_options_sorted() {
        let t = detour_table();
        let opts = t.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts.len(), 2);
        assert_eq!(opts[0], (1, 150.0));
        assert_eq!(opts[1], (2, 290.0));
    }

    #[test]
    fn one_hop_options_skip_stale_relays() {
        let mut t = detour_table();
        t.clear_row(1);
        let opts = t.one_hop_options(0, 3, 11.0, 45.0);
        assert_eq!(opts, vec![(2, 290.0)]);
    }

    #[test]
    fn anyone_reaches_sees_live_entries() {
        let mut t = LinkStateTable::new(3);
        assert!(!t.anyone_reaches(2, 0.0, 45.0));
        t.update_row(1, &live_row(&[10, 0, 10]), 0.0);
        assert!(t.anyone_reaches(2, 1.0, 45.0));
        // Staleness disqualifies.
        assert!(!t.anyone_reaches(2, 100.0, 45.0));
        // A dead entry doesn't count.
        let mut dead_row = live_row(&[10, 0, 10]);
        dead_row[2] = LinkEntry::dead();
        t.update_row(1, &dead_row, 200.0);
        assert!(!t.anyone_reaches(2, 201.0, 45.0));
    }

    #[test]
    fn clear_row_resets() {
        let mut t = detour_table();
        t.clear_row(0);
        assert!(t.row_time(0).is_none());
        assert!(t.cost(0, 1).is_infinite());
        assert_eq!(t.cost(0, 0), 0.0);
    }

    #[test]
    fn path_cost_direct_and_relayed() {
        let t = detour_table();
        assert_eq!(t.path_cost(0, 3, 3), 500.0);
        assert_eq!(t.path_cost(0, 1, 3), 150.0);
    }

    #[test]
    fn row_age_tracking() {
        let mut t = LinkStateTable::new(2);
        assert_eq!(t.row_age(0, 5.0), None);
        t.update_row(0, &live_row(&[0, 5]), 3.0);
        assert_eq!(t.row_age(0, 5.0), Some(2.0));
        assert!(t.row_fresh(0, 5.0, 2.0));
        assert!(!t.row_fresh(0, 5.1, 2.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn update_row_bounds_checked() {
        LinkStateTable::new(2).update_row(2, &live_row(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "n entries")]
    fn update_row_length_checked() {
        LinkStateTable::new(3).update_row(0, &live_row(&[0, 1]), 0.0);
    }
}
